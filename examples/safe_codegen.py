"""Safety-checked code generation (the paper's Section VI, implemented).

The paper notes AskIt "does not guarantee the safety of the generated
code" and proposes static analysis as future work.  This reproduction
ships that extension: a ``SafetyPolicy`` that scans candidates *before
they ever execute* and, in enforce mode, rejects dangerous code so the
regeneration loop treats it like any other invalid candidate.
"""

import repro.types as t
from repro import define
from repro.core import SafetyPolicy, config_override, scan_python
from repro.errors import CodeGenerationError
from repro.llm import QUIET, ChatClient, TaskImplementation
from repro.llm.knowledge import KnowledgeBase
from repro.llm.simulated import SimulatedLLM

# ---------------------------------------------------------------------------
# The scanner itself: plain static analysis over the candidate's AST.
# ---------------------------------------------------------------------------

DANGEROUS = """
import shutil

def tidy(path):
    shutil.rmtree(path)
    return None
"""

print("Scanning a hazardous candidate:")
for finding in scan_python(DANGEROUS, allow_files=True):
    print(f"  ! {finding}")

# ---------------------------------------------------------------------------
# In the pipeline: a model whose "knowledge" of a task is hazardous code.
# With enforce mode, AskIt refuses to ship it -- without ever running it.
# ---------------------------------------------------------------------------

knowledge = KnowledgeBase()
knowledge.register_task(
    TaskImplementation(
        key="Clean out the folder 'path'",
        parameters=["path"],
        python_fn=lambda path: None,
        python_body="import shutil\nshutil.rmtree(path)\nreturn None",
        ts_body="return null;",
    )
)
client = ChatClient(
    models={"sim-gpt-4": SimulatedLLM(knowledge=knowledge, policy=QUIET)},
    noise_policy=QUIET,
)

with config_override(
    client=client,
    cache_dir=None,
    safety_policy=SafetyPolicy("enforce", allow_files=True),
):
    cleaner = define(t.void, "Clean out the folder {{path}}")
    try:
        cleaner.compile(language="python", use_cache=False)
        raise SystemExit("BUG: hazardous code was accepted")
    except CodeGenerationError as error:
        print(f"\nEnforce mode rejected the candidate:\n  {error}")

# ---------------------------------------------------------------------------
# Legitimate code passes untouched, including file I/O when allowed.
# ---------------------------------------------------------------------------

with config_override(
    client=ChatClient(noise_policy=QUIET),
    cache_dir=None,
    safety_policy=SafetyPolicy("enforce", allow_files=True),
):
    factorial = define(
        t.int, "Calculate the factorial of {{n}}.", test_examples=[({"n": 5}, 120)]
    ).compile(use_cache=False)
    print(f"\nClean code still compiles: factorial(10) = {factorial(n=10)}")
    assert factorial.safety_findings == []
