"""Quickstart: the paper's sentiment example, both AskIt modes.

Run with::

    python examples/quickstart.py

Everything below runs against the bundled simulated LLM -- no network, no
API key -- but the code is exactly what you would write against a hosted
model.

Sections 1-3 use the classic module-level API (unchanged from the paper's
implementation); sections 4-6 show the Session front door: isolated
state, batched ``map()`` execution, and async calls.
"""

import asyncio

import repro.types as t
from repro import Session, ask, define

# ---------------------------------------------------------------------------
# 1. One-shot ask: type-guided output control.
#
# The union of string literals tells AskIt (and through it, the LLM) that
# the answer must be exactly 'positive' or 'negative'.  No format
# instructions appear in the prompt; no response parsing appears here.
# ---------------------------------------------------------------------------

Sentiment = t.union(t.literal("positive"), t.literal("negative"))

sentiment = ask(
    Sentiment,
    "What is the sentiment of {{review}}?",
    review="The product is fantastic. It exceeds all my expectations.",
)
print(f"ask() -> {sentiment!r}")
assert sentiment == "positive"

# ---------------------------------------------------------------------------
# 2. Template-based function definition: the same task, reusable.
# ---------------------------------------------------------------------------

get_sentiment = define(Sentiment, "What is the sentiment of {{review}}?")

for review in (
    "Absolutely love it. Best purchase of the year!",
    "Broke after one use. Total waste of money.",
):
    print(f"  {review[:40]!r:45} -> {get_sentiment(review=review)}")

# ---------------------------------------------------------------------------
# 3. Typed structured output: a list of records (Listing 2 of the paper).
# ---------------------------------------------------------------------------

Book = t.dict({"title": t.str, "author": t.str, "year": t.int})
get_books = define(t.list(Book), "List {{n}} classic books on {{subject}}.")

books = get_books(n=3, subject="compilers")
print("\nThree classic books on compilers:")
for book in books:
    print(f"  {book['year']}: {book['title']} ({book['author']})")
assert len(books) == 3

# ---------------------------------------------------------------------------
# 4. Sessions: per-workload config, client, and accounting.
#
# A Session takes a snapshot of the configuration and owns a private
# client, so its stats and virtual clock never mix with other sessions'
# (the module-level API above runs on a default session that tracks the
# global configuration -- old code keeps working unchanged).
# ---------------------------------------------------------------------------

session = Session(model="sim-gpt-4", cache_dir=None)

answer = session.ask(t.int, "Calculate the factorial of {{n}}.", n=6)
print(f"\nsession.ask() -> {answer}")
assert answer == 720
print(f"session accounting: {session.stats}, {session.clock.elapsed_s:.1f}s simulated")

# ---------------------------------------------------------------------------
# 5. Batched execution: fan a dataset out over a worker pool.
#
# map() returns outcomes in input order, captures per-item failures
# instead of aborting the batch, deduplicates identical bindings, and
# charges the virtual clock with the *parallel* wall-clock.
# ---------------------------------------------------------------------------

factorial = session.define(t.int, "Calculate the factorial of {{n}}.")
batch = factorial.map([{"n": n} for n in range(1, 9)], max_concurrency=8)

print(f"\nfactorial.map(1..8) -> {list(batch)}")
print(
    f"virtual wall-clock {batch.wall_s:.1f}s vs sequential "
    f"{batch.sequential_s:.1f}s ({batch.speedup:.1f}x speedup)"
)
assert list(batch) == [1, 2, 6, 24, 120, 720, 5040, 40320]
assert batch.wall_s < batch.sequential_s

# ---------------------------------------------------------------------------
# 6. Async execution: the same calls, awaitable.
# ---------------------------------------------------------------------------


async def concurrent_asks() -> list[int]:
    return await asyncio.gather(
        factorial.acall(n=5),
        session.ask_async(t.int, "What is 7 times 8?"),
    )


five_bang, seven_by_eight = asyncio.run(concurrent_asks())
print(f"\nasync results -> factorial(5) = {five_bang}, 7*8 = {seven_by_eight}")
assert (five_bang, seven_by_eight) == (120, 56)
