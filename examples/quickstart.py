"""Quickstart: the paper's sentiment example, both AskIt modes.

Run with::

    python examples/quickstart.py

Everything below runs against the bundled simulated LLM -- no network, no
API key -- but the code is exactly what you would write against a hosted
model.
"""

import repro.types as t
from repro import ask, define

# ---------------------------------------------------------------------------
# 1. One-shot ask: type-guided output control.
#
# The union of string literals tells AskIt (and through it, the LLM) that
# the answer must be exactly 'positive' or 'negative'.  No format
# instructions appear in the prompt; no response parsing appears here.
# ---------------------------------------------------------------------------

Sentiment = t.union(t.literal("positive"), t.literal("negative"))

sentiment = ask(
    Sentiment,
    "What is the sentiment of {{review}}?",
    review="The product is fantastic. It exceeds all my expectations.",
)
print(f"ask() -> {sentiment!r}")
assert sentiment == "positive"

# ---------------------------------------------------------------------------
# 2. Template-based function definition: the same task, reusable.
# ---------------------------------------------------------------------------

get_sentiment = define(Sentiment, "What is the sentiment of {{review}}?")

for review in (
    "Absolutely love it. Best purchase of the year!",
    "Broke after one use. Total waste of money.",
):
    print(f"  {review[:40]!r:45} -> {get_sentiment(review=review)}")

# ---------------------------------------------------------------------------
# 3. Typed structured output: a list of records (Listing 2 of the paper).
# ---------------------------------------------------------------------------

Book = t.dict({"title": t.str, "author": t.str, "year": t.int})
get_books = define(t.list(Book), "List {{n}} classic books on {{subject}}.")

books = get_books(n=3, subject="compilers")
print("\nThree classic books on compilers:")
for book in books:
    print(f"  {book['year']}: {book['title']} ({book['author']})")
assert len(books) == 3
