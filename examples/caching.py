"""Caching demo: cold vs. warm runs of one workload, plus cache inspection.

Run with::

    PYTHONPATH=src python examples/caching.py

Everything runs against the bundled simulated LLM.  The demo executes a
24-call workload three times against one cache directory:

1. **cold** -- every unique prompt pays a provider round-trip; duplicate
   in-flight prompts coalesce onto one call;
2. **warm, same process** -- a fresh session replays everything from the
   on-disk cache at zero simulated latency;
3. **inspection** -- what the cache directory actually holds.
"""

import tempfile
from pathlib import Path

import repro.types as t
from repro import Session
from repro.llm import ChatClient, QUIET

TEMPLATE = "Calculate the factorial of {{n}}."
WORKLOAD = [{"n": 1 + (i % 12)} for i in range(24)]  # 12 unique, 12 repeats


def fresh_session(cache_dir: Path) -> Session:
    """An isolated session wired to the shared response-cache directory."""
    return Session(
        model="sim-gpt-4",
        cache_dir=cache_dir,
        cache="read-write",
        client=ChatClient(noise_policy=QUIET),
    )


def run_once(label: str, cache_dir: Path) -> None:
    session = fresh_session(cache_dir)
    fn = session.define(t.int, TEMPLATE)
    batch = fn.map(WORKLOAD, max_concurrency=8, dedup=False)
    stats = session.stats
    print(f"{label:6} answers[:6]={batch.values[:6]}")
    print(
        f"       provider calls={stats.calls:2d}  hits={stats.cache_hits:2d}  "
        f"coalesced={stats.coalesced:2d}  misses={stats.cache_misses:2d}"
    )
    print(f"       simulated wall-clock: {session.clock.elapsed_s:8.2f} s\n")


def inspect(cache_dir: Path) -> None:
    session = fresh_session(cache_dir)
    cache = session.response_cache
    entries = list(cache)
    print(f"cache at {cache.directory} holds {len(entries)} entries:")
    for entry in entries[:5]:
        print(
            f"  {entry.key[:12]}...  model={entry.model}  "
            f"saved {entry.provider_latency_s:5.2f}s  "
            f"prompt tail: {entry.prompt_preview[-48:]!r}"
        )
    if len(entries) > 5:
        print(f"  ... and {len(entries) - 5} more")


def main() -> None:
    cache_dir = Path(tempfile.mkdtemp(prefix="askit-cache-demo-"))

    run_once("cold", cache_dir)    # 12 provider calls, 12 shared
    run_once("warm", cache_dir)    # 0 provider calls, ~0 s wall-clock
    inspect(cache_dir)


if __name__ == "__main__":
    main()
