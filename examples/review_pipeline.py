"""The paper's motivating example (Section II), end to end.

A product-review pipeline that mixes both kinds of LLM tasks:

* sentiment analysis -- *non-codable but directly answerable*: the LLM
  runs inside the application;
* appending results to a CSV file -- *codable but not directly
  answerable*: the LLM writes the code once, and the generated function
  runs locally (the LLM has no file system).

The point of AskIt's unified interface is that both use the same
``define`` call shape.
"""

import pathlib
import tempfile

import repro.types as t
from repro import define

REVIEWS = [
    "The product is fantastic. It exceeds all my expectations.",
    "Terrible quality. It broke after two days and support never replied.",
    "Wonderful value, I recommend it to everyone.",
    "Useless and disappointing. I want a refund.",
]

# Directly answerable task: executed by the LLM at runtime.
get_sentiment = define(
    t.union(t.literal("positive"), t.literal("negative")),
    "What is the sentiment of {{review}}?",
)

# Codable task: compiled once into a real function (cached on disk).
append_review_to_csv = define(
    t.void,
    "Append {{review}} and {{sentiment}} as a new row in the CSV file "
    "named {{filename}}",
).compile()

print("Generated CSV writer:")
print("\n".join("    " + line for line in append_review_to_csv.source.splitlines()))

with tempfile.TemporaryDirectory() as workdir:
    csv_path = pathlib.Path(workdir) / "reviews.csv"
    csv_path.touch()

    for review in REVIEWS:
        sentiment = get_sentiment(review=review)
        append_review_to_csv(
            review=review, sentiment=sentiment, filename=str(csv_path)
        )
        print(f"  [{sentiment:8}] {review[:50]}")

    print("\nreviews.csv contents:")
    print(csv_path.read_text())
    assert len(csv_path.read_text().strip().splitlines()) == len(REVIEWS)
