"""Programming by example: few-shot prompts and validated code generation.

``define`` takes two example sets (Listing 1 of the paper): the first
drives few-shot prompting for direct answers; the second validates
generated code -- the paper's RQ2 shows this validation is what catches
buggy first tries (their Fibonacci came back off-by-one and needed seven
regenerations).
"""

import repro.types as t
from repro import define
from repro.core import config_override
from repro.llm import ChatClient, NoisePolicy

# ---------------------------------------------------------------------------
# Few-shot examples shape the direct-answer prompt.
# ---------------------------------------------------------------------------

is_even = define(
    t.bool,
    "Is {{n}} even?",
    examples=[({"n": 2}, True), ({"n": 7}, False)],
)
print("few-shot prompt contains the demonstrations:")
from repro.prompts import build_direct_prompt  # noqa: E402
from repro.prompts.direct import FewShotExample  # noqa: E402

prompt = build_direct_prompt(
    is_even.template,
    is_even.return_type,
    {"n": 10},
    [FewShotExample(e.inputs, e.output) for e in is_even.few_shot_examples],
)
print("\n".join("    " + line for line in prompt.splitlines()[-6:]))

# ---------------------------------------------------------------------------
# Test examples validate generated code.  Force the simulated model to
# plant its off-by-one Fibonacci bug on every first try: the validation
# catches it and the retry converges.
# ---------------------------------------------------------------------------

buggy_model = ChatClient(noise_policy=NoisePolicy(buggy_code_rate=1.0, seed=7))

with config_override(client=buggy_model, cache_dir=None):
    fibonacci = define(
        t.list(t.int),
        "Generate the Fibonacci sequence up to {{n}}.",
        test_examples=[({"n": 5}, [0, 1, 1, 2, 3])],
    ).compile()

print(f"\nFibonacci compiled after {fibonacci.attempts} attempt(s) "
      f"({fibonacci.retries} retr{'y' if fibonacci.retries == 1 else 'ies'} "
      "caught by example validation)")
print(f"fibonacci(10) = {fibonacci(n=10)}")
assert fibonacci(n=10) == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]

# Without test examples the same planted bug would ship silently:
with config_override(client=ChatClient(noise_policy=NoisePolicy(buggy_code_rate=1.0, seed=7)), cache_dir=None):
    unchecked = define(t.list(t.int), "Generate the Fibonacci sequence up to {{n}}.").compile()

result = unchecked(n=5)
print(f"\nwithout examples, the shipped function returns {result} for n=5 "
      f"({'correct' if result == [0, 1, 1, 2, 3] else 'WRONG -- off by one'})")
