"""Intersecting tasks: from direct answering to compiled code (Table III).

A grade-school word problem can be answered by the LLM directly *or*
compiled into a function.  With AskIt the switch is one ``.compile()``
call on the same definition -- the prompt template never changes -- and
the compiled version answers in microseconds instead of seconds.
"""

import time

import repro.types as t
from repro import define
from repro.core import get_config
from repro.datasets.gsm8k import register_families

# Teach the simulated model grade-school math (the stand-in for GPT-4's
# pretraining; see DESIGN.md).  A hosted model needs no such call.
register_families()

PROBLEM = (
    "Tina works {{a}} hours a day for {{b}} days and is paid {{c}} dollars "
    "per hour. How much does she earn in total?"
)

earnings = define(
    t.float,
    PROBLEM,
    param_types={"a": t.int, "b": t.int, "c": t.int},
    test_examples=[({"a": 8, "b": 5, "c": 20}, 800)],
)

# -- mode 1: the LLM answers at runtime -------------------------------------

value = earnings(a=8, b=5, c=20)
latency = earnings.last_result.latency_s
print(f"direct answer : {value} (simulated LLM latency {latency:.2f}s)")
print(f"  model reason: {earnings.last_result.reason[:90]}...")

# -- mode 2: the LLM writes the code once ------------------------------------

compiled = earnings.compile()
print(f"\ncompiled in {compiled.compile_time_s:.2f}s "
      f"({compiled.attempts} attempt(s)); generated source:")
print("\n".join("    " + line for line in compiled.source.splitlines()))

started = time.perf_counter()
repeats = 10_000
for _ in range(repeats):
    compiled(a=8, b=5, c=20)
per_call_us = (time.perf_counter() - started) / repeats * 1e6

print(f"\ncompiled answer: {compiled(a=8, b=5, c=20)}")
print(f"execution time : {per_call_us:.2f} us per call")
print(f"speedup vs LLM : {latency / (per_call_us / 1e6):,.0f}x "
      f"(paper reports 6,969,904x for Python on GSM8K)")

# The same definition also compiles to TypeScript, executed on the
# bundled TS-subset interpreter:
ts = earnings.compile(language="typescript")
print(f"\nTypeScript variant returns {ts(a=8, b=5, c=20)}:")
print("\n".join("    " + line for line in ts.source.splitlines()))

assert compiled(a=8, b=5, c=20) == 800
assert ts(a=8, b=5, c=20) == 800
print(f"\n(model: {get_config().model}; all answers agree)")
