"""High-throughput demo: a rate-limited ``map()`` sweep, scheduled vs naive.

Run with::

    PYTHONPATH=src python examples/high_throughput.py

Everything runs against the bundled simulated LLM on the virtual clock
-- waits are charged, never slept, so the demo finishes in milliseconds
of real time while reporting realistic virtual timings.

The provider tolerates 60 requests/min with a 2-deep burst and answers
violations with 429 + a punitive 30s Retry-After, like a hosted
endpoint under load.  The same 24-task factorial sweep runs twice:

1. **naive** -- no admission control: all 8 workers fire at once, draw
   refusals, and pay exponentially backed-off Retry-After penalties;
2. **scheduled** -- the request scheduler paces admission through a
   same-shaped token bucket, so every request conforms by construction
   and the only cost is the exact pacing wait.
"""

import repro.types as t
from repro import Session
from repro.core import SchedulerPolicy
from repro.llm import ChatClient, QUIET, SimulatedRateLimit

TEMPLATE = "Calculate the factorial of {{n}}."
WORKLOAD = [{"n": 1 + (i % 12)} for i in range(24)]

REQUESTS_PER_MINUTE = 60.0
BURST = 2


def limited_client() -> ChatClient:
    """A quiet client whose simulated provider enforces the rate limit."""
    return ChatClient(
        noise_policy=QUIET,
        rate_limit=SimulatedRateLimit(
            REQUESTS_PER_MINUTE, burst=BURST, min_retry_after_s=30.0
        ),
    )


def sweep(label: str, session: Session) -> float:
    """Run the workload on ``session``; print its accounting; return wall."""
    fn = session.define(t.int, TEMPLATE)
    batch = fn.map(WORKLOAD, max_concurrency=8, dedup=False)
    stats = session.stats
    print(f"{label:10} completed={sum(o.ok for o in batch.outcomes)}/{len(batch)}")
    print(
        f"           provider calls={stats.calls:2d}  "
        f"429s={stats.rate_limited:2d}  requeued={stats.requeued:2d}  "
        f"paced={stats.throttled:2d}"
    )
    print(
        f"           virtual wall-clock {batch.wall_s:7.2f} s   "
        f"(waited {stats.throttle_wait_s:7.2f} s across all lanes)\n"
    )
    return batch.wall_s


def main() -> None:
    naive = Session(model="sim-gpt-4", cache_dir=None, client=limited_client())
    naive_wall = sweep("naive", naive)

    scheduled = Session(
        model="sim-gpt-4",
        cache_dir=None,
        scheduler="adaptive",
        scheduler_policy=SchedulerPolicy(
            requests_per_minute=REQUESTS_PER_MINUTE, burst=BURST
        ),
        client=limited_client(),
    )
    scheduled_wall = sweep("scheduled", scheduled)

    print(f"admission control bought a {naive_wall / scheduled_wall:.1f}x speedup")


if __name__ == "__main__":
    main()
