"""Property-based tests for weighted-fair admission (hypothesis).

The central invariants, each checked against randomly generated weight
and arrival sequences:

* the :class:`~repro.core.scheduler.DeficitRoundRobin` admission order
  equals an independently written textbook DRR reference, exactly;
* no starvation: every enqueued token is eventually admitted, and a
  backlogged tenant's admissions track its weight share;
* work conservation: the structure never withholds a token while any
  queue is non-empty;
* per-tenant quotas are never exceeded, whatever the charge sequence,
  and quota charging is all-or-nothing across resources.
"""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import DeficitRoundRobin, TenantBudget, WeightedFairTurnstile
from repro.errors import ConfigError, QuotaExceededError

EPS = DeficitRoundRobin.EPSILON

# Weights stay on a coarse grid so reference and implementation agree
# bit-for-bit (both admit at 1.0 - EPSILON; see DeficitRoundRobin.EPSILON).
_weights = st.sampled_from([0.1, 0.2, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 8.0])

_backlogs = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d", "e", "f"]),
    st.tuples(_weights, st.integers(min_value=0, max_value=40)),
    min_size=1,
    max_size=6,
)


def reference_drr(spec: dict[str, tuple[float, int]]) -> list[str]:
    """Textbook Shreedhar-Varghese DRR with unit-cost tokens.

    Written independently of the implementation: visit queues in
    rotation, top the visited queue's deficit up by its weight once per
    visit, serve while the deficit covers a token, drop emptied queues
    from the rotation (forfeiting leftover deficit).
    """
    remaining = {name: count for name, (_, count) in spec.items() if count > 0}
    weights = {name: weight for name, (weight, _) in spec.items()}
    deficit = {name: 0.0 for name in remaining}
    active = deque(remaining)
    order: list[str] = []
    while active:
        head = active[0]
        deficit[head] += weights[head]
        while deficit[head] >= 1.0 - EPS and remaining[head] > 0:
            order.append(head)
            remaining[head] -= 1
            deficit[head] -= 1.0
        if remaining[head] == 0:
            active.popleft()
            deficit[head] = 0.0
        else:
            active.rotate(-1)
    return order


def drain(drr: DeficitRoundRobin) -> list:
    tokens = []
    while len(drr):
        tokens.append(drr.pop())
    return tokens


class TestAgainstReferenceModel:
    @given(_backlogs)
    @settings(max_examples=200)
    def test_static_backlog_order_equals_reference(self, spec):
        drr = DeficitRoundRobin()
        for name, (weight, count) in spec.items():
            drr.set_weight(name, weight)
            for index in range(count):
                drr.enqueue(name, (name, index))
        assert [token[0] for token in drain(drr)] == reference_drr(spec)

    @given(_backlogs)
    @settings(max_examples=100)
    def test_work_conservation(self, spec):
        # Every enqueued token is admitted; pop never returns None while
        # anything is queued (the structure cannot idle over backlog).
        drr = DeficitRoundRobin()
        total = 0
        for name, (weight, count) in spec.items():
            drr.set_weight(name, weight)
            for index in range(count):
                drr.enqueue(name, (name, index))
                total += 1
        admitted = drain(drr)
        assert len(admitted) == total
        assert drr.pop() is None and drr.peek() is None

    @given(_backlogs)
    @settings(max_examples=100)
    def test_no_starvation_and_weighted_shares(self, spec):
        # While every tenant stays backlogged, tenant i's admissions per
        # unit weight may trail tenant j's by at most a constant (the
        # classic DRR fairness bound with unit cost and quantum w_i).
        spec = {n: (w, c) for n, (w, c) in spec.items() if c > 0}
        if len(spec) < 2:
            return
        drr = DeficitRoundRobin()
        for name, (weight, count) in spec.items():
            drr.set_weight(name, weight)
            for index in range(count):
                drr.enqueue(name, (name, index))
        order = [token[0] for token in drain(drr)]
        # Contended prefix: stop once any tenant's queue is exhausted.
        served = {name: 0 for name in spec}
        for name in order:
            served[name] += 1
            if served[name] == spec[name][1]:
                break
        for a in served:
            for b in served:
                wa, wb = spec[a][0], spec[b][0]
                # Normalized service lag bound: one unit plus one visit's
                # worth of quantum on each side.
                assert served[a] / wa - served[b] / wb >= -(1.0 / wa + 1.0 / wb + 2.0)

    @given(_backlogs, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100)
    def test_interleaved_arrivals_never_lose_tokens(self, spec, seed):
        # Tokens arriving while the rotation is mid-flight (the dynamic
        # case the static reference cannot model) are all still admitted
        # exactly once, and peek always agrees with the next pop.
        import random

        rng = random.Random(seed)
        arrivals = []
        drr = DeficitRoundRobin()
        for name, (weight, count) in spec.items():
            drr.set_weight(name, weight)
            arrivals.extend((name, index) for index in range(count))
        rng.shuffle(arrivals)
        admitted = []
        queued = 0
        for token in arrivals:
            drr.enqueue(token[0], token)
            queued += 1
            if rng.random() < 0.5 and queued:
                head = drr.peek()
                assert drr.pop() is head
                admitted.append(head)
                queued -= 1
        while len(drr):
            head = drr.peek()
            assert drr.pop() is head
            admitted.append(head)
        assert sorted(admitted) == sorted(arrivals)


class TestPriorityWithinTenant:
    def test_priorities_order_within_a_tenant_queue(self):
        drr = DeficitRoundRobin()
        drr.enqueue("t", "bulk", priority=5)
        drr.enqueue("t", "urgent", priority=-5)
        drr.enqueue("t", "normal", priority=0)
        assert drain(drr) == ["urgent", "normal", "bulk"]


class TestQuotaNeverExceeded:
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=5000),
        st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=80),
    )
    @settings(max_examples=100)
    def test_cumulative_quota_is_a_hard_ceiling(self, max_requests, max_tokens, charges):
        budget = TenantBudget(
            "t", max_requests=max_requests, max_tokens=max_tokens
        )
        for tokens in charges:
            try:
                budget.charge_quota(tokens=tokens)
            except QuotaExceededError as exc:
                assert exc.resource in ("requests", "tokens")
            # The invariant: never exceeded, whatever the sequence did.
            assert budget.used_requests <= max_requests
            assert budget.used_tokens <= max_tokens

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=30)
    def test_charging_is_all_or_nothing(self, max_requests):
        # A token-quota refusal must not burn a request slot.
        budget = TenantBudget("t", max_requests=max_requests, max_tokens=10)
        with pytest.raises(QuotaExceededError) as excinfo:
            budget.charge_quota(tokens=11)
        assert excinfo.value.resource == "tokens"
        assert budget.used_requests == 0 and budget.used_tokens == 0
        budget.charge_quota(tokens=10)
        assert budget.used_requests == 1 and budget.used_tokens == 10

    def test_turnstile_surfaces_quota_and_snapshot(self):
        turnstile = WeightedFairTurnstile()
        turnstile.configure_tenant("t", weight=2.0, max_requests=1)
        turnstile.charge_quota("t")
        with pytest.raises(QuotaExceededError):
            turnstile.charge_quota("t")
        snapshot = turnstile.quota_snapshot()
        assert snapshot["t"]["used_requests"] == 1
        with pytest.raises(ConfigError):
            turnstile.configure_tenant("bad", weight=0.0)
