"""End-to-end tests for the ASGI serving gateway.

Everything runs in-process through the stdlib ASGI test client -- no
sockets, no server -- so the suite stays hermetic.  Covers routing and
content negotiation, API-key authentication, typed ask/map round trips,
NDJSON streaming, per-tenant quota enforcement (429), tenant isolation,
and the acceptance-criteria property that ``/metrics`` per-tenant
counters match each tenant's ``ClientStats`` by construction.
"""

import threading

import pytest

from repro.errors import ConfigError
from repro.llm import QUIET
from repro.serve import (
    ASGITestClient,
    GatewayApp,
    TenantRegistry,
    TenantSpec,
    estimate_request_tokens,
    resolve_wire_type,
    run_lifespan,
)
import repro.types as t


@pytest.fixture()
def registry() -> TenantRegistry:
    # QUIET noise: every gateway request is exactly one provider call, so
    # stats assertions are exact instead of retry-dependent.
    registry = TenantRegistry(noise_policy=QUIET)
    registry.add(TenantSpec("acme", api_key="sk-acme", weight=3.0))
    registry.add(TenantSpec("beta", api_key="sk-beta", weight=1.0))
    return registry


@pytest.fixture()
def client(registry) -> ASGITestClient:
    return ASGITestClient(GatewayApp(registry))


def ask_body(n=5, **extra):
    return {
        "type": "int",
        "template": "Calculate the factorial of {{n}}.",
        "args": {"n": n},
        **extra,
    }


class TestRoutingAndAuth:
    def test_healthz_needs_no_auth(self, client):
        response = client.get("/healthz")
        assert response.status == 200
        payload = response.json()
        assert payload["status"] == "ok"
        assert {entry["tenant"] for entry in payload["tenants"]} == {"acme", "beta"}

    def test_unknown_route_404(self, client):
        assert client.get("/nope").status == 404

    def test_wrong_method_405(self, client):
        response = client.get("/v1/ask", headers={"x-api-key": "sk-acme"})
        assert response.status == 405

    def test_missing_and_unknown_api_key_401(self, client):
        assert client.post("/v1/ask", json=ask_body()).status == 401
        response = client.post(
            "/v1/ask", json=ask_body(), headers={"x-api-key": "sk-wrong"}
        )
        assert response.status == 401
        assert "x-api-key" in response.json()["error"]

    def test_malformed_bodies_400(self, client):
        headers = {"x-api-key": "sk-acme"}
        assert client.post("/v1/ask", body=b"", headers=headers).status == 400
        assert client.post("/v1/ask", body=b"not json", headers=headers).status == 400
        assert client.post("/v1/ask", json=[1, 2], headers=headers).status == 400
        assert client.post("/v1/ask", json={"template": ""}, headers=headers).status == 400
        assert (
            client.post(
                "/v1/ask",
                json={"template": "x", "args": "nope"},
                headers=headers,
            ).status
            == 400
        )
        bad_type = {"template": "x", "type": "no-such-type!!"}
        assert client.post("/v1/ask", json=bad_type, headers=headers).status == 400

    def test_lifespan_protocol(self, registry):
        run_lifespan(GatewayApp(registry))


class TestAskAndMap:
    def test_typed_ask_round_trip(self, client):
        response = client.post(
            "/v1/ask", json=ask_body(n=5), headers={"x-api-key": "sk-acme"}
        )
        assert response.status == 200
        payload = response.json()
        assert payload == {
            "tenant": "acme",
            "value": 120,
            "wait_s": payload["wait_s"],
            "virtual_s": payload["virtual_s"],
        }
        assert payload["virtual_s"] > 0.0

    def test_typescript_type_syntax_accepted(self, client):
        body = ask_body(n=4)
        body["type"] = "number"
        response = client.post("/v1/ask", json=body, headers={"x-api-key": "sk-beta"})
        assert response.status == 200
        assert response.json()["value"] == 24

    def test_streaming_ask_emits_accept_then_result(self, client):
        response = client.post(
            "/v1/ask", json=ask_body(n=6, stream=True), headers={"x-api-key": "sk-acme"}
        )
        assert response.status == 200
        assert response.header("content-type").startswith("application/x-ndjson")
        events = response.ndjson()
        assert [event["event"] for event in events] == ["accepted", "result"]
        assert events[1]["value"] == 720
        # The accept frame arrived as its own chunk, before the result.
        assert len(response.chunks) >= 2

    def test_map_streams_one_line_per_item_in_order(self, client):
        body = {
            "type": "int",
            "template": "Calculate the factorial of {{n}}.",
            "items": [{"n": n} for n in (0, 1, 2, 3)],
        }
        response = client.post("/v1/map", json=body, headers={"x-api-key": "sk-acme"})
        assert response.status == 200
        *lines, summary = response.ndjson()
        assert [line["index"] for line in lines] == [0, 1, 2, 3]
        assert [line["value"] for line in lines] == [1, 1, 2, 6]
        assert summary["event"] == "summary"
        assert summary["items"] == 4 and summary["failures"] == 0

    def test_map_validates_items(self, client):
        headers = {"x-api-key": "sk-acme"}
        body = {"type": "int", "template": "x", "items": "nope"}
        assert client.post("/v1/map", json=body, headers=headers).status == 400
        body = {"type": "int", "template": "x", "items": [{}], "max_concurrency": 0}
        assert client.post("/v1/map", json=body, headers=headers).status == 400


class TestQuotasAndBudgets:
    def test_request_quota_exhaustion_is_429(self):
        registry = TenantRegistry()
        registry.add(TenantSpec("capped", api_key="sk-c", max_requests=2))
        client = ASGITestClient(GatewayApp(registry))
        headers = {"x-api-key": "sk-c"}
        assert client.post("/v1/ask", json=ask_body(1), headers=headers).status == 200
        assert client.post("/v1/ask", json=ask_body(2), headers=headers).status == 200
        refusal = client.post("/v1/ask", json=ask_body(3), headers=headers)
        assert refusal.status == 429
        payload = refusal.json()
        assert payload["resource"] == "requests"
        assert payload["used"] == payload["limit"] == 2

    def test_token_quota_counts_estimated_tokens(self):
        registry = TenantRegistry()
        registry.add(TenantSpec("tiny", api_key="sk-t", max_tokens=1))
        client = ASGITestClient(GatewayApp(registry))
        refusal = client.post(
            "/v1/ask", json=ask_body(1), headers={"x-api-key": "sk-t"}
        )
        assert refusal.status == 429
        assert refusal.json()["resource"] == "tokens"

    def test_rate_budget_wait_lands_on_the_tenant_clock(self):
        registry = TenantRegistry()
        registry.add(
            TenantSpec("paced", api_key="sk-p", requests_per_minute=2.0)
        )
        client = ASGITestClient(GatewayApp(registry))
        headers = {"x-api-key": "sk-p"}
        waits = []
        for n in (1, 2, 3, 4, 5, 6):
            response = client.post("/v1/ask", json=ask_body(n), headers=headers)
            assert response.status == 200
            waits.append(response.json()["wait_s"])
        # Burst depth 4 admits the first requests without waiting; past
        # it, pacing at 2 rpm (30s spacing) outruns the virtual clock's
        # few seconds of simulated latency per request, so waits accrue.
        assert waits[0] == 0.0
        assert waits[-1] > 0.0
        runtime = registry.get("paced")
        assert runtime.session.stats.throttled >= 1
        assert runtime.session.stats.throttle_wait_s == pytest.approx(
            sum(waits), rel=1e-6
        )

    def test_estimate_scales_with_prompt_size(self):
        small = estimate_request_tokens("Short {{x}}.", {"x": "hi"})
        large = estimate_request_tokens("Short {{x}}.", {"x": "hi " * 500})
        assert large > small


class TestTenantIsolation:
    def test_stats_and_clocks_never_interleave(self, registry, client):
        headers_a = {"x-api-key": "sk-acme"}
        headers_b = {"x-api-key": "sk-beta"}
        for n in (1, 2, 3):
            assert client.post("/v1/ask", json=ask_body(n), headers=headers_a).status == 200
        assert client.post("/v1/ask", json=ask_body(4), headers=headers_b).status == 200
        acme, beta = registry.get("acme"), registry.get("beta")
        assert acme.session.stats.calls == 3
        assert beta.session.stats.calls == 1
        assert acme.session.clock.now() != beta.session.clock.now()

    def test_shared_turnstile_counts_admissions_per_lane(self, registry, client):
        client.post("/v1/ask", json=ask_body(2), headers={"x-api-key": "sk-acme"})
        client.post("/v1/ask", json=ask_body(2), headers={"x-api-key": "sk-beta"})
        admitted = registry.turnstile.admitted
        assert admitted["acme"] >= 1 and admitted["beta"] >= 1

    def test_concurrent_mixed_tenant_traffic_stays_attributed(self, registry, client):
        errors = []

        def hit(key, n):
            try:
                response = client.post(
                    "/v1/ask", json=ask_body(n), headers={"x-api-key": key}
                )
                assert response.status == 200, response.text
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hit, args=("sk-acme" if i % 2 else "sk-beta", 3))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert registry.get("acme").session.stats.calls == 4
        assert registry.get("beta").session.stats.calls == 4

    def test_duplicate_tenants_and_keys_rejected(self, registry):
        with pytest.raises(ConfigError):
            registry.add(TenantSpec("acme", api_key="sk-new"))
        with pytest.raises(ConfigError):
            registry.add(TenantSpec("fresh", api_key="sk-acme"))


class TestMetricsEndpoint:
    def test_per_tenant_series_match_client_stats_by_construction(
        self, registry, client
    ):
        headers = {"x-api-key": "sk-acme"}
        for n in (1, 2):
            client.post("/v1/ask", json=ask_body(n), headers=headers)
        response = client.get("/metrics")
        assert response.status == 200
        assert response.header("content-type").startswith("text/plain")
        text = response.text
        calls = registry.get("acme").session.stats.calls
        expected = (
            f'askit_provider_calls_total{{model="sim-gpt-4",tenant="acme"}} {calls}'
        )
        assert expected in text
        # The other tenant served nothing: no series under its label.
        assert 'askit_provider_calls_total{model="sim-gpt-4",tenant="beta"}' not in text

    def test_gateway_counters_and_headers_deduplicated(self, client):
        client.get("/healthz")
        client.post("/v1/ask", json=ask_body(), headers={"x-api-key": "sk-acme"})
        text = client.get("/metrics").text
        assert 'askit_gateway_requests_total{route="/v1/ask",status="200",tenant="acme"} 1' in text
        lines = text.splitlines()
        headers = [line for line in lines if line.startswith("# TYPE")]
        assert len(headers) == len(set(headers)), "duplicate # TYPE headers"


class TestWireTypes:
    def test_aliases_and_typescript_both_resolve(self):
        assert resolve_wire_type("int") is t.int
        assert resolve_wire_type("bool") is t.bool
        parsed = resolve_wire_type("{name: string}[]")
        assert parsed is not None
