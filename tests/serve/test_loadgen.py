"""The 10k-request skewed-load fairness harness (ISSUE 10 acceptance).

Drives >= 10,000 concurrent requests -- one hot tenant offering 90% of
the load against several light tenants -- through the *real*
:class:`~repro.core.scheduler.DeficitRoundRobin` admission structure on
a virtual clock.  Asserts the fairness guarantees the gateway sells:
per-tenant goodput within +/-10% of weight shares while everyone is
backlogged, a p99 admission-wait bound for light tenants, zero
starvation, and bit-for-bit determinism run to run.
"""

import pytest

from repro.errors import ConfigError
from repro.serve import DISCIPLINES, FairnessReport, LoadGenerator, TenantLoad, skewed_mix

CAPACITY = 8
SERVICE_S = 1.0


@pytest.fixture(scope="module")
def skewed_report() -> FairnessReport:
    """One 10k-request weighted-fair run, shared across assertions."""
    loads = skewed_mix(hot_fraction=0.9, total_requests=10_000, light_tenants=4,
                       service_s=SERVICE_S)
    assert sum(load.requests for load in loads) >= 10_000
    return LoadGenerator(loads, capacity=CAPACITY).run()


class TestSkewedMixFairness:
    def test_every_request_is_admitted_and_completed(self, skewed_report):
        assert len(skewed_report.records) >= 10_000
        assert all(r.admitted_s >= 0.0 for r in skewed_report.records)
        assert all(r.completed_s > r.admitted_s - 1e-9 for r in skewed_report.records)

    def test_goodput_shares_match_weights_within_10_percent(self, skewed_report):
        # 5 equal-weight tenants -> each is owed 20% of admissions while
        # every tenant still has backlog, hot 90% offered load or not.
        for name in skewed_report.weights:
            share = skewed_report.admitted_share(name)
            owed = skewed_report.weight_share(name)
            assert share == pytest.approx(owed, rel=0.10), (
                f"{name}: admitted {share:.4f} vs owed {owed:.4f}"
            )

    def test_light_tenant_p99_wait_is_bounded_by_fair_share(self, skewed_report):
        # A light tenant's worst wait under DRR is set by its own queue
        # draining at its fair-share rate (capacity * weight share), not
        # by the hot tenant's 9000-deep backlog.
        for name in skewed_report.weights:
            if name == "hot":
                continue
            requests = len([r for r in skewed_report.records if r.tenant == name])
            fair_rate = CAPACITY * skewed_report.weight_share(name) / SERVICE_S
            drain_bound = requests / fair_rate
            p99 = skewed_report.wait_percentile(name, 0.99)
            assert p99 <= 1.10 * drain_bound, (
                f"{name}: p99 wait {p99:.1f}s exceeds fair-share bound "
                f"{drain_bound:.1f}s"
            )

    def test_zero_starvation(self, skewed_report):
        # Work conservation (slots never idle over backlog) plus every
        # tenant's first admission landing within the first DRR cycle.
        assert skewed_report.idle_while_backlogged_s == 0.0
        first_admission = {}
        for record in sorted(skewed_report.records, key=lambda r: r.admitted_s):
            first_admission.setdefault(record.tenant, record.admitted_s)
        # All five tenants are admitted before a single service time has
        # elapsed: nobody waits behind another tenant's whole backlog.
        assert len(first_admission) == len(skewed_report.weights)
        assert max(first_admission.values()) <= SERVICE_S

    def test_hot_tenant_still_gets_full_capacity_after_contention(self, skewed_report):
        # Fairness is not a cap: once the light tenants drain, the hot
        # tenant's remaining backlog gets every slot (work conservation),
        # so total makespan stays the ideal requests/capacity.
        total = len(skewed_report.records)
        ideal = total * SERVICE_S / CAPACITY
        assert skewed_report.makespan_s == pytest.approx(ideal, rel=0.01)

    def test_deterministic_run_to_run(self):
        loads = skewed_mix(total_requests=10_000, service_s=SERVICE_S)
        first = LoadGenerator(loads, capacity=CAPACITY, seed=7).run()
        second = LoadGenerator(loads, capacity=CAPACITY, seed=7).run()
        assert first.summary() == second.summary()
        assert [
            (r.tenant, r.arrival_s, r.admitted_s, r.completed_s)
            for r in first.records
        ] == [
            (r.tenant, r.arrival_s, r.admitted_s, r.completed_s)
            for r in second.records
        ]


class TestWeightedShares:
    def test_unequal_weights_split_admissions_proportionally(self):
        loads = [
            TenantLoad("gold", weight=6.0, requests=3000),
            TenantLoad("silver", weight=3.0, requests=3000),
            TenantLoad("bronze", weight=1.0, requests=3000),
        ]
        report = LoadGenerator(loads, capacity=4).run()
        for name in ("gold", "silver", "bronze"):
            assert report.admitted_share(name) == pytest.approx(
                report.weight_share(name), rel=0.10
            )
        # 6:3:1 means gold drains ~6x faster than bronze.
        assert report.exhausted_at["gold"] < report.exhausted_at["bronze"]

    def test_fractional_weights_terminate_and_stay_fair(self):
        loads = [
            TenantLoad("slow", weight=0.2, requests=200),
            TenantLoad("slower", weight=0.3, requests=200),
        ]
        report = LoadGenerator(loads, capacity=1).run()
        assert report.admitted_share("slow") == pytest.approx(0.4, abs=0.05)
        assert report.admitted_share("slower") == pytest.approx(0.6, abs=0.05)


class TestFifoBaseline:
    def test_fifo_starves_light_tenants_behind_the_hot_backlog(self):
        loads = skewed_mix(hot_fraction=0.9, total_requests=10_000, light_tenants=4)
        fair = LoadGenerator(loads, capacity=CAPACITY, seed=3).run()
        fifo = LoadGenerator(loads, capacity=CAPACITY, discipline="fifo", seed=3).run()
        # Same work, same capacity: FIFO loses nothing in throughput...
        assert fifo.makespan_s == pytest.approx(fair.makespan_s, rel=0.01)
        # ...but a light tenant's p99 wait scales with the *total* queue
        # under FIFO instead of its own backlog under DRR.
        assert fifo.wait_percentile("light0", 0.99) > 3.0 * fair.wait_percentile(
            "light0", 0.99
        )

    def test_disciplines_are_validated(self):
        with pytest.raises(ConfigError):
            LoadGenerator([TenantLoad("a")], discipline="priority")
        assert set(DISCIPLINES) == {"weighted-fair", "fifo"}


class TestLoadSpecValidation:
    def test_bad_specs_raise(self):
        with pytest.raises(ConfigError):
            TenantLoad("a", weight=0.0)
        with pytest.raises(ConfigError):
            TenantLoad("a", requests=-1)
        with pytest.raises(ConfigError):
            TenantLoad("a", service_s=0.0)
        with pytest.raises(ConfigError):
            LoadGenerator([])
        with pytest.raises(ConfigError):
            LoadGenerator([TenantLoad("a"), TenantLoad("a")])
        with pytest.raises(ConfigError):
            LoadGenerator([TenantLoad("a")], capacity=0)

    def test_paced_arrivals_wait_less_than_backlogged_ones(self):
        paced = LoadGenerator(
            [TenantLoad("t", requests=64, rate_rps=4.0)], capacity=8
        ).run()
        # Offered rate (4 rps) below capacity (8 slots / 1s service):
        # nothing ever queues.
        assert paced.max_wait("t") == 0.0
