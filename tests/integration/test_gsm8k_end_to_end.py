"""Integration: the GSM8K pipeline through the public API, end to end.

Covers the full Table III path for a handful of problems: direct answer
(typed, with chain-of-thought), compile to Python and TypeScript, run the
generated code, and confirm all three agree with the reference answer.
"""

import pytest

import repro.types as t
from repro import define
from repro.datasets.gsm8k import answers_match, generate_dataset
from repro.errors import CodeGenerationError
from repro.llm.knowledge import KnowledgeBase
from repro.llm.solvers.mathword import is_hard_instance, is_uncodable_family
from repro.llm.knowledge import mask_numbers


@pytest.fixture(scope="module")
def problems():
    # Registration happens into the *global* knowledge base the default
    # client consults, mirroring "the model knows grade-school math".
    return generate_dataset(count=36, seed=77)


def _easy(problems):
    for problem in problems:
        skeleton, _ = mask_numbers(problem.text)
        if not is_hard_instance(problem.text) and not is_uncodable_family(skeleton):
            yield problem


class TestEndToEnd:
    def test_direct_compile_and_agree(self, problems, quiet_config):
        checked = 0
        for problem in _easy(problems):
            definition = define(
                t.float,
                problem.template,
                param_types={name: t.int for name in problem.args},
                test_examples=[(problem.args, problem.answer)],
            )
            direct = definition(**problem.args)
            assert answers_match(problem.answer, direct), problem.text

            python_fn = definition.compile(language="python", use_cache=False)
            assert answers_match(problem.answer, python_fn.call_with(problem.args))

            ts_fn = definition.compile(language="typescript", use_cache=False)
            assert answers_match(problem.answer, ts_fn.call_with(problem.args))

            checked += 1
            if checked >= 6:
                break
        assert checked == 6

    def test_generated_code_generalizes_to_new_values(self, problems, quiet_config):
        """The paper's motivation for numbers->variables: generated programs
        are reused with different values."""
        problem = next(iter(_easy(problems)))
        definition = define(
            t.float,
            problem.template,
            param_types={name: t.int for name in problem.args},
            test_examples=[(problem.args, problem.answer)],
        )
        generated = definition.compile(language="python", use_cache=False)
        fresh_args = {name: value + 1 for name, value in problem.args.items()}
        expected = problem.family.expression.evaluate(
            {name: float(value) for name, value in fresh_args.items()}
        )
        assert answers_match(expected, generated.call_with(fresh_args))

    def test_chain_of_thought_present(self, problems, quiet_config):
        problem = next(iter(_easy(problems)))
        definition = define(t.float, problem.template)
        definition(**problem.args)
        assert "step by step" in definition.last_result.reason

    def test_hard_instances_answer_wrong_not_crash(self, problems, quiet_config):
        hard = [p for p in problems if is_hard_instance(p.text)]
        if not hard:
            pytest.skip("no hard instance in this sample")
        problem = hard[0]
        definition = define(t.float, problem.template)
        value = definition(**problem.args)
        assert not answers_match(problem.answer, value)

    def test_uncodable_family_fails_compile_but_answers_directly(self, quiet_config):
        problems = generate_dataset(count=1319, seed=77)
        uncodable = None
        for problem in problems:
            skeleton, _ = mask_numbers(problem.text)
            if is_uncodable_family(skeleton) and not is_hard_instance(problem.text):
                uncodable = problem
                break
        assert uncodable is not None, "expected one uncodable family in the corpus"
        definition = define(
            t.float,
            uncodable.template,
            param_types={name: t.int for name in uncodable.args},
            test_examples=[(uncodable.args, uncodable.answer)],
        )
        assert answers_match(uncodable.answer, definition(**uncodable.args))
        with pytest.raises(CodeGenerationError):
            definition.compile(language="python", use_cache=False)
