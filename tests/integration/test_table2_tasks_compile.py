"""Integration: every Table II task compiles and validates in both languages.

This is the backbone of the Table II experiment: with a quiet model each
task (minus the documented Python failures) must generate code that passes
its examples, in Python and on the TypeScript interpreter.
"""

import pytest

from repro import define
from repro.datasets.common_tasks import PYTHON_FAILING_TASKS, all_tasks
from repro.errors import CodeGenerationError
from repro.ioexample import outputs_equal

_TASKS = all_tasks()


def _define_for(task):
    return define(
        task.return_type,
        task.template,
        param_types=task.param_types,
        test_examples=task.examples,
    )


@pytest.mark.parametrize(
    "task",
    [task for task in _TASKS if task.number not in PYTHON_FAILING_TASKS],
    ids=lambda t: f"task{t.number}",
)
def test_python_generation(task, quiet_config):
    generated = _define_for(task).compile(language="python", use_cache=False)
    for example in task.examples:
        assert outputs_equal(generated.call_with(example.inputs), example.output)


@pytest.mark.parametrize(
    "task",
    [task for task in _TASKS if task.number in PYTHON_FAILING_TASKS],
    ids=lambda t: f"task{t.number}",
)
def test_python_failing_tasks_fail(task, quiet_config):
    with pytest.raises(CodeGenerationError):
        _define_for(task).compile(language="python", use_cache=False)


@pytest.mark.parametrize("task", _TASKS, ids=lambda t: f"task{t.number}")
def test_typescript_generation(task, quiet_config):
    generated = _define_for(task).compile(language="typescript", use_cache=False)
    for example in task.examples:
        assert outputs_equal(generated.call_with(example.inputs), example.output)
