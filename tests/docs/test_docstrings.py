"""The public surface must stay documented.

CI additionally runs ruff's pydocstyle (``D``) rules over these modules
(see ``.github/workflows/ci.yml``); this test enforces the same core
contract locally, without requiring ruff in the environment: every
public module, class, method, and function on the public surface
carries a docstring, and multi-line docstrings close on their own line
(pydocstyle D100-D106, D209).
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The modules the documentation satellite covers: the package front
#: door and the ``Session`` / ``AskItFunction`` / ``Config`` surface,
#: plus the response cache, the request scheduler, the simulated rate
#: limit, and the observability layer.
PUBLIC_SURFACE = [
    "src/repro/__init__.py",
    "src/repro/core/config.py",
    "src/repro/core/session.py",
    "src/repro/core/function.py",
    "src/repro/core/response_cache.py",
    "src/repro/core/scheduler.py",
    "src/repro/llm/ratelimit.py",
    "src/repro/obs/__init__.py",
    "src/repro/obs/metrics.py",
    "src/repro/obs/trace.py",
    "src/repro/obs/export.py",
    "src/repro/obs/telemetry.py",
]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
    problems = []
    if not ast.get_docstring(tree):
        problems.append("module (D100)")
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and _is_public(node.name):
            if not ast.get_docstring(node):
                problems.append(f"class {node.name} (D101)")
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and _is_public(item.name)
                    and not ast.get_docstring(item)
                ):
                    problems.append(f"method {node.name}.{item.name} (D102)")
        elif (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and _is_public(node.name)
            and node.col_offset == 0
            and not ast.get_docstring(node)
        ):
            problems.append(f"function {node.name} (D103)")
    return problems


def _bad_closings(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
    problems = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            docstring = ast.get_docstring(node, clean=False)
            if docstring and "\n" in docstring and not docstring.rstrip(" ").endswith("\n"):
                problems.append(getattr(node, "name", "module"))
    return problems


@pytest.mark.parametrize("relative", PUBLIC_SURFACE)
def test_public_surface_is_fully_documented(relative):
    path = REPO_ROOT / relative
    missing = _missing_docstrings(path)
    assert not missing, f"{relative} is missing docstrings: {missing}"


@pytest.mark.parametrize("relative", PUBLIC_SURFACE)
def test_multiline_docstrings_close_on_their_own_line(relative):
    path = REPO_ROOT / relative
    bad = _bad_closings(path)
    assert not bad, f"{relative} has docstrings closing mid-line (D209): {bad}"
