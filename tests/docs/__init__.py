"""Documentation smoke tests."""
