"""Documentation must stay true: code blocks run, links resolve.

Doctest-style smoke for the documentation surface:

* every ```` ```python ```` fenced block in ``README.md`` and
  ``docs/*.md`` is executed, per document, in one shared namespace (so
  a document reads top-to-bottom like a script) with the working
  directory moved to a temp dir (so ``askit`` cache writes never land
  in the repo);
* every script under ``examples/`` runs to completion in a subprocess
  (again from a temp working directory);
* every relative markdown link must point at a file or directory that
  exists (anchors are stripped; external ``http(s)``/``mailto`` links
  are not fetched);
* ``docs/architecture.md`` must reference every public module of
  ``repro.core`` and ``repro.llm``, so the module reference cannot
  silently rot as the runtime grows.

Blocks that are deliberately non-runnable use a different info string
(```` ```text ````, ```` ```bash ````) and are skipped by construction.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The documentation surface under test.
DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_FENCE_RE = re.compile(
    r"^```(?P<info>[^\n`]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
# Inline markdown links [text](target); images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO_ROOT))


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """All ``python`` fenced blocks as ``(line_number, source)`` pairs."""
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE_RE.finditer(text):
        if match.group("info").strip() == "python":
            line = text.count("\n", 0, match.start()) + 1
            blocks.append((line, match.group("body")))
    return blocks


def relative_links(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    links = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target)
    return links


def test_the_documentation_surface_exists():
    assert (REPO_ROOT / "README.md").is_file()
    names = {path.name for path in DOCUMENTS}
    assert {"README.md", "architecture.md", "caching.md"} <= names


@pytest.mark.parametrize("doc", DOCUMENTS, ids=_doc_id)
def test_code_blocks_import_and_run(doc, tmp_path, monkeypatch, capsys):
    """Each document's python blocks execute top-to-bottom without error."""
    blocks = python_blocks(doc)
    monkeypatch.chdir(tmp_path)  # cache writes (askit/) land in the temp dir
    namespace: dict = {"__name__": f"docs_smoke_{doc.stem}"}
    for line, source in blocks:
        code = compile(source, f"{_doc_id(doc)}:{line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{_doc_id(doc)} code block at line {line} failed: "
                f"{type(error).__name__}: {error}"
            )


@pytest.mark.parametrize("doc", DOCUMENTS, ids=_doc_id)
def test_relative_links_resolve(doc):
    broken = []
    for target in relative_links(doc):
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{_doc_id(doc)} has broken relative links: {broken}"


def test_readme_documents_the_paper_section_map():
    """The README's paper-section table references real modules."""
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for path in re.findall(r"`(src/repro/[\w/]+(?:\.py)?)`", text):
        assert (REPO_ROOT / path).exists(), f"README references missing {path}"


EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"), key=lambda p: p.name)


def test_the_example_scripts_exist():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "caching.py", "high_throughput.py"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_scripts_run(script, tmp_path):
    """Every script under ``examples/`` executes cleanly, start to finish.

    Each runs in its own interpreter (they are documentation for the
    command line, not a library) from a temp working directory, with
    ``src/`` prepended to ``PYTHONPATH`` exactly as the README says.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, (
        f"examples/{script.name} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )


def public_runtime_modules() -> list[str]:
    """Every public module/subpackage of ``repro.core``, ``repro.llm``,
    ``repro.obs``, and ``repro.serve``.

    Rendered as the repo-relative shorthand the architecture doc uses:
    ``core/session.py`` for modules, ``llm/providers/`` for packages.
    """
    references = []
    for package in ("core", "llm", "obs", "serve"):
        package_dir = REPO_ROOT / "src" / "repro" / package
        for path in sorted(package_dir.iterdir(), key=lambda p: p.name):
            if path.name.startswith(("_", ".")):
                continue
            if path.is_dir():
                references.append(f"{package}/{path.name}/")
            elif path.suffix == ".py":
                references.append(f"{package}/{path.name}")
    return references


def test_architecture_references_every_public_runtime_module():
    """The architecture doc's module reference keeps pace with the code."""
    text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    missing = [ref for ref in public_runtime_modules() if ref not in text]
    assert not missing, (
        "docs/architecture.md does not mention these public modules: "
        f"{missing} -- add them to its module reference"
    )
