"""Documentation must stay true: code blocks run, links resolve.

Doctest-style smoke for the documentation surface:

* every ```` ```python ```` fenced block in ``README.md`` and
  ``docs/*.md`` is executed, per document, in one shared namespace (so
  a document reads top-to-bottom like a script) with the working
  directory moved to a temp dir (so ``askit`` cache writes never land
  in the repo);
* every relative markdown link must point at a file or directory that
  exists (anchors are stripped; external ``http(s)``/``mailto`` links
  are not fetched).

Blocks that are deliberately non-runnable use a different info string
(```` ```text ````, ```` ```bash ````) and are skipped by construction.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The documentation surface under test.
DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_FENCE_RE = re.compile(
    r"^```(?P<info>[^\n`]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
# Inline markdown links [text](target); images share the syntax.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO_ROOT))


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """All ``python`` fenced blocks as ``(line_number, source)`` pairs."""
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE_RE.finditer(text):
        if match.group("info").strip() == "python":
            line = text.count("\n", 0, match.start()) + 1
            blocks.append((line, match.group("body")))
    return blocks


def relative_links(path: Path) -> list[str]:
    text = path.read_text(encoding="utf-8")
    links = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target)
    return links


def test_the_documentation_surface_exists():
    assert (REPO_ROOT / "README.md").is_file()
    names = {path.name for path in DOCUMENTS}
    assert {"README.md", "architecture.md", "caching.md"} <= names


@pytest.mark.parametrize("doc", DOCUMENTS, ids=_doc_id)
def test_code_blocks_import_and_run(doc, tmp_path, monkeypatch, capsys):
    """Each document's python blocks execute top-to-bottom without error."""
    blocks = python_blocks(doc)
    monkeypatch.chdir(tmp_path)  # cache writes (askit/) land in the temp dir
    namespace: dict = {"__name__": f"docs_smoke_{doc.stem}"}
    for line, source in blocks:
        code = compile(source, f"{_doc_id(doc)}:{line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{_doc_id(doc)} code block at line {line} failed: "
                f"{type(error).__name__}: {error}"
            )


@pytest.mark.parametrize("doc", DOCUMENTS, ids=_doc_id)
def test_relative_links_resolve(doc):
    broken = []
    for target in relative_links(doc):
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (doc.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{_doc_id(doc)} has broken relative links: {broken}"


def test_readme_documents_the_paper_section_map():
    """The README's paper-section table references real modules."""
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for path in re.findall(r"`(src/repro/[\w/]+(?:\.py)?)`", text):
        assert (REPO_ROOT / path).exists(), f"README references missing {path}"
