"""Behavioural tests pinning JavaScript semantics the synthesizer relies on."""

import pytest

from repro.errors import TsRuntimeError
from repro.tslang import load_module


def run_expr(source: str):
    module = load_module(f"export function main(): any {{ return {source}; }}")
    return module.call("main", {})


class TestNumbers:
    def test_nan_comparisons_false(self):
        assert run_expr("NaN < 1") is False
        assert run_expr("NaN === NaN") is False

    def test_infinity_arithmetic(self):
        assert run_expr("Infinity + 1 === Infinity")
        assert run_expr("-1 / 0 === -Infinity")

    def test_zero_over_zero_is_nan(self):
        assert run_expr("isNaN(0 / 0)") is True

    def test_to_fixed(self):
        assert run_expr("(2.345).toFixed(2)") == "2.35" or run_expr("(2.345).toFixed(2)") == "2.34"
        assert run_expr("(5).toFixed(0)") == "5"

    def test_number_tostring(self):
        assert run_expr("(255).toString()") == "255"


class TestStringsAndArrays:
    def test_split_empty_string_separator(self):
        assert run_expr("'abc'.split('')") == ["a", "b", "c"]

    def test_split_no_separator(self):
        assert run_expr("'a b'.split()") == ["a b"]

    def test_join_renders_null_undefined_empty(self):
        assert run_expr("[1, null, 2].join('-')") == "1--2"

    def test_negative_modulo_in_rotation_idiom(self):
        # The catalog's rotate uses `k % xs.length` -- JS keeps the sign.
        assert run_expr("-1 % 3") == -1

    def test_array_tostring_via_concat(self):
        assert run_expr("'' + [1, 2]") == "1,2"

    def test_sort_stability_with_comparator(self):
        assert run_expr(
            "[{k: 'a', v: 2}, {k: 'b', v: 1}, {k: 'c', v: 2}]"
            ".sort((x, y) => x.v - y.v).map(e => e.k).join('')"
        ) == "bac"

    def test_shift_unshift(self):
        module = load_module(
            "function f() { const xs = [2, 3]; xs.unshift(1); const first = xs.shift(); return [first, xs]; }"
        )
        assert module.call("f", {}) == [1, [2, 3]]

    def test_includes_uses_strict_equality(self):
        assert run_expr("[1, 2].includes('1')") is False


class TestScoping:
    def test_block_scoping(self):
        module = load_module(
            "function f() { let x = 1; { let x = 2; } return x; }"
        )
        assert module.call("f", {}) == 1

    def test_assignment_crosses_blocks(self):
        module = load_module(
            "function f() { let x = 1; { x = 2; } return x; }"
        )
        assert module.call("f", {}) == 2

    def test_undeclared_assignment_rejected(self):
        module = load_module("function f() { ghost = 1; return ghost; }")
        with pytest.raises(TsRuntimeError):
            module.call("f", {})

    def test_undefined_variable_read_rejected(self):
        module = load_module("function f() { return missing; }")
        with pytest.raises(TsRuntimeError):
            module.call("f", {})

    def test_loop_variable_captured_per_iteration_for_of(self):
        module = load_module(
            "function f() { const fns = [];\n"
            "  for (const x of [1, 2, 3]) { fns.push(() => x); }\n"
            "  return fns.map(g => g()); }"
        )
        assert module.call("f", {}) == [1, 2, 3]


class TestErrors:
    def test_calling_non_function(self):
        module = load_module("function f() { const x = 5; return x(); }")
        with pytest.raises(TsRuntimeError):
            module.call("f", {})

    def test_property_of_null(self):
        module = load_module("function f() { const x = null; return x.y; }")
        with pytest.raises(TsRuntimeError):
            module.call("f", {})

    def test_unknown_string_method(self):
        module = load_module("function f() { return 'x'.frobnicate(); }")
        with pytest.raises(TsRuntimeError):
            module.call("f", {})

    def test_unknown_constructor(self):
        module = load_module("function f() { return new Widget(); }")
        with pytest.raises(TsRuntimeError):
            module.call("f", {})

    def test_console_output_not_an_error(self):
        module = load_module("function f() { console.log('dbg'); return 1; }")
        assert module.call("f", {}) == 1
        assert module.interpreter.console_log == ["dbg"]
