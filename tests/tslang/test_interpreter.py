"""Unit tests for the TypeScript-subset interpreter."""

import pytest

from repro.errors import TsRuntimeError
from repro.tslang import Interpreter, load_module
from repro.tslang.interpreter import ThrownValue


def run_expr(source: str):
    """Evaluate an expression through a tiny module wrapper."""
    module = load_module(f"export function main(): any {{ return {source}; }}")
    return module.call("main", {})


class TestArithmetic:
    def test_basic_math(self):
        assert run_expr("1 + 2 * 3") == 7

    def test_division_is_float(self):
        assert run_expr("1 / 2") == 0.5

    def test_division_by_zero_is_infinity(self):
        assert run_expr("1 / 0 === Infinity")

    def test_modulo_follows_js_sign(self):
        assert run_expr("-7 % 3") == -1
        assert run_expr("7 % -3") == 1

    def test_power(self):
        assert run_expr("2 ** 10") == 1024

    def test_unary_minus(self):
        assert run_expr("-(3 + 4)") == -7

    def test_string_concatenation(self):
        assert run_expr("'a' + 'b'") == "ab"

    def test_number_string_concatenation(self):
        assert run_expr("'n=' + 5") == "n=5"

    def test_integral_numbers_render_without_decimal(self):
        assert run_expr("'' + 10") == "10"


class TestComparisonsAndLogic:
    def test_strict_equality(self):
        assert run_expr("1 === 1") is True
        assert run_expr("'1' === 1") is False

    def test_loose_equality(self):
        assert run_expr("'1' == 1") is True
        assert run_expr("null == undefined") is True

    def test_comparisons(self):
        assert run_expr("2 < 3") is True
        assert run_expr("'abc' < 'abd'") is True

    def test_logical_short_circuit(self):
        assert run_expr("false && crash()") is False
        assert run_expr("true || crash()") is True

    def test_nullish_coalescing(self):
        assert run_expr("null ?? 'fallback'") == "fallback"
        assert run_expr("0 ?? 'fallback'") == 0

    def test_ternary(self):
        assert run_expr("1 < 2 ? 'yes' : 'no'") == "yes"

    def test_typeof(self):
        assert run_expr("typeof 1") == "number"
        assert run_expr("typeof 'x'") == "string"
        assert run_expr("typeof undefined") == "undefined"
        assert run_expr("typeof true") == "boolean"

    def test_truthiness(self):
        assert run_expr("!''") is True
        assert run_expr("!0") is True
        assert run_expr("![]") is False


class TestFunctions:
    def test_simple_function(self):
        module = load_module(
            "export function add({x, y}: {x: number, y: number}): number {\n"
            "  return x + y;\n"
            "}"
        )
        assert module.call("add", {"x": 2, "y": 3}) == 5

    def test_plain_parameter_function(self):
        module = load_module("function double(n) { return n * 2; }")
        assert module.call("double", {"n": 21}) == 42

    def test_recursion(self):
        module = load_module(
            "export function fact({n}: {n: number}): number {\n"
            "  if (n <= 1) { return 1; }\n"
            "  return n * fact({n: n - 1});\n"
            "}"
        )
        assert module.call("fact", {"n": 10}) == 3628800

    def test_mutual_recursion_via_hoisting(self):
        module = load_module(
            "function isEven(n) { if (n === 0) { return true; } return isOdd(n - 1); }\n"
            "function isOdd(n) { if (n === 0) { return false; } return isEven(n - 1); }"
        )
        assert module.call("isEven", {"n": 10}) is True

    def test_closure_capture(self):
        module = load_module(
            "function makeAdder(k) { return x => x + k; }\n"
            "function apply(n) { const add5 = makeAdder(5); return add5(n); }"
        )
        assert module.call("apply", {"n": 10}) == 15

    def test_missing_return_is_undefined(self):
        module = load_module("function noop(x) { x + 1; }")
        assert module.call("noop", {"x": 1}) is None

    def test_missing_named_argument_raises(self):
        module = load_module("function f(a, b) { return a + b; }")
        with pytest.raises(TsRuntimeError):
            module.call("f", {"a": 1})

    def test_unknown_function_raises(self):
        module = load_module("function f() { return 1; }")
        with pytest.raises(TsRuntimeError):
            module.call("g", {})


class TestControlFlow:
    def test_while_loop(self):
        module = load_module(
            "function sumTo(n) { let total = 0; let i = 1;\n"
            "  while (i <= n) { total += i; i++; }\n"
            "  return total; }"
        )
        assert module.call("sumTo", {"n": 100}) == 5050

    def test_classic_for(self):
        module = load_module(
            "function squares(n) { const out = [];\n"
            "  for (let i = 1; i <= n; i++) { out.push(i * i); }\n"
            "  return out; }"
        )
        assert module.call("squares", {"n": 4}) == [1, 4, 9, 16]

    def test_for_of(self):
        module = load_module(
            "function total(xs) { let sum = 0; for (const x of xs) { sum += x; } return sum; }"
        )
        assert module.call("total", {"xs": [1, 2, 3, 4]}) == 10

    def test_break(self):
        module = load_module(
            "function firstOver(xs, limit) {\n"
            "  let found = -1;\n"
            "  for (const x of xs) { if (x > limit) { found = x; break; } }\n"
            "  return found; }"
        )
        assert module.call("firstOver", {"xs": [1, 5, 9], "limit": 4}) == 5

    def test_continue(self):
        module = load_module(
            "function evens(xs) { const out = [];\n"
            "  for (const x of xs) { if (x % 2 !== 0) { continue; } out.push(x); }\n"
            "  return out; }"
        )
        assert module.call("evens", {"xs": [1, 2, 3, 4]}) == [2, 4]

    def test_do_while(self):
        module = load_module(
            "function atLeastOnce(n) { let count = 0; do { count++; } while (count < n); return count; }"
        )
        assert module.call("atLeastOnce", {"n": 0}) == 1

    def test_throw_becomes_runtime_error(self):
        module = load_module("function boom() { throw new Error('bad input'); }")
        with pytest.raises(ThrownValue):
            module.call("boom", {})

    def test_infinite_loop_hits_step_budget(self):
        module = load_module("function spin() { while (true) { } }", step_budget=10_000)
        with pytest.raises(TsRuntimeError) as excinfo:
            module.call("spin", {})
        assert "step budget" in str(excinfo.value)


class TestStrings:
    def test_split_join_reverse(self):
        module = load_module(
            "function rev(s) { return s.split('').reverse().join(''); }"
        )
        assert module.call("rev", {"s": "hello"}) == "olleh"

    def test_case_methods(self):
        assert run_expr("'MiXeD'.toLowerCase()") == "mixed"
        assert run_expr("'MiXeD'.toUpperCase()") == "MIXED"

    def test_includes_indexof(self):
        assert run_expr("'hello'.includes('ell')") is True
        assert run_expr("'hello'.indexOf('l')") == 2
        assert run_expr("'hello'.indexOf('z')") == -1

    def test_slice_negative(self):
        assert run_expr("'hello'.slice(-3)") == "llo"

    def test_substring_swaps(self):
        assert run_expr("'hello'.substring(3, 1)") == "el"

    def test_trim_replace_repeat(self):
        assert run_expr("'  x  '.trim()") == "x"
        assert run_expr("'aaa'.replace('a', 'b')") == "baa"
        assert run_expr("'aaa'.replaceAll('a', 'b')") == "bbb"
        assert run_expr("'ab'.repeat(3)") == "ababab"

    def test_pad(self):
        assert run_expr("'7'.padStart(3, '0')") == "007"

    def test_char_access(self):
        assert run_expr("'abc'.charAt(1)") == "b"
        assert run_expr("'abc'.charCodeAt(0)") == 97
        assert run_expr("'abc'[2]") == "c"

    def test_length(self):
        assert run_expr("'hello'.length") == 5

    def test_template_literal(self):
        module = load_module("function greet(name) { return `hi ${name}!`; }")
        assert module.call("greet", {"name": "sam"}) == "hi sam!"


class TestArrays:
    def test_map_filter_reduce(self):
        assert run_expr("[1, 2, 3, 4].map(x => x * 2)") == [2, 4, 6, 8]
        assert run_expr("[1, 2, 3, 4].filter(x => x % 2 === 0)") == [2, 4]
        assert run_expr("[1, 2, 3, 4].reduce((a, b) => a + b, 0)") == 10

    def test_reduce_without_seed(self):
        assert run_expr("[5, 6].reduce((a, b) => a + b)") == 11

    def test_reduce_empty_without_seed_raises(self):
        with pytest.raises(TsRuntimeError):
            run_expr("[].reduce((a, b) => a + b)")

    def test_sort_numeric_with_comparator(self):
        assert run_expr("[3, 1, 10, 2].sort((a, b) => a - b)") == [1, 2, 3, 10]

    def test_sort_default_is_lexicographic(self):
        assert run_expr("[10, 9, 1].sort()") == [1, 10, 9]

    def test_push_pop(self):
        module = load_module(
            "function f() { const xs = [1]; xs.push(2, 3); xs.pop(); return xs; }"
        )
        assert module.call("f", {}) == [1, 2]

    def test_indexof_includes(self):
        assert run_expr("[1, 2, 3].indexOf(2)") == 1
        assert run_expr("[1, 2, 3].includes(4)") is False

    def test_slice_concat(self):
        assert run_expr("[1, 2, 3, 4].slice(1, 3)") == [2, 3]
        assert run_expr("[1].concat([2, 3], 4)") == [1, 2, 3, 4]

    def test_join(self):
        assert run_expr("[1, 2, 3].join('-')") == "1-2-3"

    def test_some_every_find(self):
        assert run_expr("[1, 2, 3].some(x => x > 2)") is True
        assert run_expr("[1, 2, 3].every(x => x > 0)") is True
        assert run_expr("[1, 2, 3].find(x => x > 1)") == 2
        assert run_expr("[1, 2, 3].findIndex(x => x > 5)") == -1

    def test_flat(self):
        assert run_expr("[[1, 2], [3], 4].flat()") == [1, 2, 3, 4]

    def test_spread(self):
        assert run_expr("[...[1, 2], 3]") == [1, 2, 3]

    def test_index_assignment_extends(self):
        module = load_module(
            "function f() { const xs = []; xs[2] = 9; return xs.length; }"
        )
        assert module.call("f", {}) == 3

    def test_array_length(self):
        assert run_expr("[1, 2, 3].length") == 3

    def test_splice(self):
        module = load_module(
            "function f() { const xs = [1, 2, 3, 4]; xs.splice(1, 2); return xs; }"
        )
        assert module.call("f", {}) == [1, 4]


class TestObjectsAndBuiltins:
    def test_object_literal_access(self):
        assert run_expr("({a: 1, b: 2}).a") == 1

    def test_object_keys_values(self):
        assert run_expr("Object.keys({a: 1, b: 2})") == ["a", "b"]
        assert run_expr("Object.values({a: 1, b: 2})") == [1, 2]

    def test_missing_property_is_undefined(self):
        assert run_expr("({a: 1}).b === undefined")

    def test_math(self):
        assert run_expr("Math.floor(2.7)") == 2
        assert run_expr("Math.max(1, 9, 4)") == 9
        assert run_expr("Math.abs(-3)") == 3
        assert run_expr("Math.sqrt(16)") == 4
        assert run_expr("Math.pow(2, 8)") == 256

    def test_number_conversions(self):
        assert run_expr("Number('42')") == 42
        assert run_expr("parseInt('101', 2)") == 5
        assert run_expr("parseFloat('2.5abc')") == 2.5
        assert run_expr("Number.isInteger(4)") is True

    def test_string_conversion(self):
        assert run_expr("String(42)") == "42"
        assert run_expr("String.fromCharCode(97, 98)") == "ab"

    def test_json_round_trip(self):
        assert run_expr("JSON.parse(JSON.stringify({a: [1, 2]}))") == {"a": [1, 2]}

    def test_set_semantics(self):
        assert run_expr("Array.from(new Set([1, 2, 2, 3, 1]))") == [1, 2, 3]
        assert run_expr("new Set([1, 2, 2]).size") == 2

    def test_array_from_string(self):
        assert run_expr("Array.from('abc')") == ["a", "b", "c"]

    def test_console_log_captured(self):
        interp = Interpreter()
        interp.run("console.log('hello', 42)")
        assert interp.console_log == ["hello 42"]

    def test_date_difference(self):
        module = load_module(
            "function days(d1, d2) {\n"
            "  return Math.abs(new Date(d2).getTime() - new Date(d1).getTime()) / 86400000;\n"
            "}"
        )
        assert module.call("days", {"d1": "2024-01-01", "d2": "2024-01-11"}) == 10


class TestModule:
    def test_function_names(self):
        module = load_module("function a() {}\nfunction b() {}")
        assert module.function_names() == ["a", "b"]

    def test_top_level_statements_execute(self):
        module = load_module("let shared = 10;\nfunction get() { return shared; }")
        assert module.call("get", {}) == 10

    def test_signature_annotation_recovered(self):
        module = load_module(
            "export function f({xs}: {xs: number[]}): number { return xs.length; }"
        )
        declaration = module.declaration("f")
        assert declaration.params[0].annotation == "{ xs: number[] }"
        assert declaration.return_annotation == "number"
