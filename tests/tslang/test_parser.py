"""Unit tests for the TypeScript-subset parser."""

import pytest

from repro.errors import TsSyntaxError
from repro.tslang import nodes
from repro.tslang.parser import parse_expression, parse_program


class TestExpressions:
    def test_precedence_mul_over_add(self):
        tree = parse_expression("1 + 2 * 3")
        assert isinstance(tree, nodes.Binary)
        assert tree.op == "+"
        assert isinstance(tree.right, nodes.Binary)
        assert tree.right.op == "*"

    def test_power_right_associative(self):
        tree = parse_expression("2 ** 3 ** 2")
        assert tree.op == "**"
        assert isinstance(tree.right, nodes.Binary)
        assert tree.right.op == "**"

    def test_comparison_chain(self):
        tree = parse_expression("a < b === c")
        assert tree.op == "==="

    def test_logical_operators(self):
        tree = parse_expression("a && b || c")
        assert isinstance(tree, nodes.Logical)
        assert tree.op == "||"

    def test_nullish(self):
        tree = parse_expression("a ?? b")
        assert tree.op == "??"

    def test_ternary(self):
        tree = parse_expression("a ? b : c")
        assert isinstance(tree, nodes.Conditional)

    def test_unary(self):
        tree = parse_expression("!-x")
        assert isinstance(tree, nodes.Unary)
        assert tree.op == "!"
        assert isinstance(tree.operand, nodes.Unary)

    def test_member_chain(self):
        tree = parse_expression("a.b.c")
        assert isinstance(tree, nodes.Member)
        assert tree.name == "c"

    def test_index(self):
        tree = parse_expression("xs[i + 1]")
        assert isinstance(tree, nodes.Index)

    def test_call_with_arguments(self):
        tree = parse_expression("f(1, 'two', g())")
        assert isinstance(tree, nodes.Call)
        assert len(tree.arguments) == 3

    def test_method_call(self):
        tree = parse_expression("xs.map(f)")
        assert isinstance(tree, nodes.Call)
        assert isinstance(tree.callee, nodes.Member)

    def test_array_literal(self):
        tree = parse_expression("[1, 2, 3]")
        assert isinstance(tree, nodes.ArrayLit)
        assert len(tree.elements) == 3

    def test_spread_in_array(self):
        tree = parse_expression("[...xs, 1]")
        assert isinstance(tree.elements[0], nodes.SpreadElement)

    def test_object_literal(self):
        tree = parse_expression("{a: 1, 'b c': 2}")
        assert isinstance(tree, nodes.ObjectLit)
        assert [key for key, _ in tree.entries] == ["a", "b c"]

    def test_object_shorthand(self):
        tree = parse_expression("{a}")
        key, value = tree.entries[0]
        assert key == "a"
        assert isinstance(value, nodes.Identifier)

    def test_arrow_single_param(self):
        tree = parse_expression("x => x + 1")
        assert isinstance(tree, nodes.Arrow)
        assert tree.params == ["x"]
        assert tree.is_expression

    def test_arrow_multi_param(self):
        tree = parse_expression("(a, b) => a - b")
        assert tree.params == ["a", "b"]

    def test_arrow_with_block_body(self):
        tree = parse_expression("(a) => { return a; }")
        assert not tree.is_expression

    def test_arrow_with_annotations(self):
        tree = parse_expression("(a: number, b: number) => a + b")
        assert tree.params == ["a", "b"]

    def test_parenthesized_expression_not_arrow(self):
        tree = parse_expression("(1 + 2) * 3")
        assert isinstance(tree, nodes.Binary)
        assert tree.op == "*"

    def test_new_set(self):
        tree = parse_expression("new Set(xs)")
        assert isinstance(tree, nodes.New)

    def test_assignment(self):
        tree = parse_expression("x = y = 1")
        assert isinstance(tree, nodes.Assign)
        assert isinstance(tree.value, nodes.Assign)

    def test_compound_assignment(self):
        tree = parse_expression("x += 2")
        assert tree.op == "+="

    def test_invalid_assignment_target(self):
        with pytest.raises(TsSyntaxError):
            parse_expression("1 = 2")

    def test_postfix_update(self):
        tree = parse_expression("i++")
        assert isinstance(tree, nodes.Update)
        assert not tree.prefix

    def test_template_literal_expression(self):
        tree = parse_expression("`n = ${n}`")
        assert isinstance(tree, nodes.TemplateLit)
        assert isinstance(tree.parts[1], nodes.Identifier)


class TestStatements:
    def test_function_declaration(self):
        program = parse_program(
            "export function add({x, y}: {x: number, y: number}): number {\n"
            "  return x + y;\n"
            "}"
        )
        fn = program.functions()["add"]
        assert fn.exported
        assert fn.params[0].destructured
        assert fn.params[0].names == ["x", "y"]
        assert fn.return_annotation == "number"

    def test_destructured_param_annotation_captured(self):
        program = parse_program(
            "function f({a}: {a: string[]}): string { return a[0]; }"
        )
        fn = program.functions()["f"]
        assert "string[]" in fn.params[0].annotation

    def test_plain_params(self):
        program = parse_program("function f(a, b) { return a; }")
        fn = program.functions()["f"]
        assert [param.names[0] for param in fn.params] == ["a", "b"]
        assert not fn.params[0].destructured

    def test_var_declarations(self):
        program = parse_program("let a = 1, b;\nconst c = 'x';")
        decl = program.statements[0]
        assert isinstance(decl, nodes.VarDecl)
        assert decl.kind == "let"
        assert len(decl.declarations) == 2

    def test_var_with_type_annotation(self):
        program = parse_program("let total: number = 0;")
        assert isinstance(program.statements[0], nodes.VarDecl)

    def test_if_else(self):
        program = parse_program("if (a) { b; } else { c; }")
        statement = program.statements[0]
        assert isinstance(statement, nodes.If)
        assert statement.alternate is not None

    def test_else_if_chain(self):
        program = parse_program("if (a) x; else if (b) y; else z;")
        statement = program.statements[0]
        assert isinstance(statement.alternate, nodes.If)

    def test_classic_for(self):
        program = parse_program("for (let i = 0; i < 10; i++) { total += i; }")
        statement = program.statements[0]
        assert isinstance(statement, nodes.For)

    def test_for_of(self):
        program = parse_program("for (const x of xs) { total += x; }")
        statement = program.statements[0]
        assert isinstance(statement, nodes.ForOf)
        assert statement.name == "x"

    def test_while(self):
        program = parse_program("while (n > 1) { n -= 1; }")
        assert isinstance(program.statements[0], nodes.While)

    def test_do_while(self):
        program = parse_program("do { n += 1; } while (n < 3);")
        assert isinstance(program.statements[0], nodes.DoWhile)

    def test_break_continue(self):
        program = parse_program("while (true) { break; }\nwhile (true) { continue; }")
        assert isinstance(program.statements[0].body.statements[0], nodes.Break)
        assert isinstance(program.statements[1].body.statements[0], nodes.Continue)

    def test_throw(self):
        program = parse_program("throw new Error('bad');")
        assert isinstance(program.statements[0], nodes.Throw)

    def test_semicolons_optional(self):
        program = parse_program("let a = 1\nlet b = 2\nreturn_like(a)\n")
        assert len(program.statements) == 3

    def test_return_without_value(self):
        program = parse_program("function f() { return; }")
        body = program.functions()["f"].body
        assert body.statements[0].value is None

    def test_stray_semicolons_tolerated(self):
        program = parse_program(";;let a = 1;;")
        assert len(program.statements) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "function () {}",
            "function f( { return 1; }",
            "let = 5;",
            "if a) {}",
            "for (;;",
            "x ===",
            "{ unterminated",
            "f(1,",
        ],
    )
    def test_rejects_malformed(self, source):
        with pytest.raises(TsSyntaxError):
            parse_program(source)

    def test_error_carries_location(self):
        with pytest.raises(TsSyntaxError) as excinfo:
            parse_program("let x = ;")
        assert excinfo.value.line >= 1
