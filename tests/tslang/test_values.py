"""Unit tests for the interpreter's value model (JS semantics corners)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TsRuntimeError
from repro.tslang.values import (
    UNDEFINED,
    JSMap,
    JSSet,
    from_python,
    loose_equals,
    strict_equals,
    to_display_string,
    to_number,
    to_python,
    truthy,
    type_of,
)


class TestTruthiness:
    @pytest.mark.parametrize("value", [0, 0.0, "", None, UNDEFINED, float("nan"), False])
    def test_falsy(self, value):
        assert not truthy(value)

    @pytest.mark.parametrize("value", [1, -1, "0", " ", [], {}, True, [0]])
    def test_truthy(self, value):
        assert truthy(value)


class TestDisplayString:
    def test_integral_float(self):
        assert to_display_string(5.0) == "5"

    def test_fractional(self):
        assert to_display_string(2.5) == "2.5"

    def test_specials(self):
        assert to_display_string(float("nan")) == "NaN"
        assert to_display_string(float("inf")) == "Infinity"
        assert to_display_string(None) == "null"
        assert to_display_string(UNDEFINED) == "undefined"
        assert to_display_string(True) == "true"

    def test_array_joins_with_commas(self):
        assert to_display_string([1.0, 2.0]) == "1,2"

    def test_object(self):
        assert to_display_string({"a": 1}) == "[object Object]"


class TestToNumber:
    def test_bool(self):
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0

    def test_null_and_undefined(self):
        assert to_number(None) == 0.0
        assert math.isnan(to_number(UNDEFINED))

    def test_numeric_strings(self):
        assert to_number("42") == 42.0
        assert to_number("  2.5  ") == 2.5
        assert to_number("") == 0.0
        assert math.isnan(to_number("abc"))


class TestEquality:
    def test_strict_numbers(self):
        assert strict_equals(1, 1.0)
        assert not strict_equals(1, "1")
        assert not strict_equals(True, 1)

    def test_strict_objects_by_identity(self):
        xs = [1]
        assert strict_equals(xs, xs)
        assert not strict_equals([1], [1])

    def test_loose_coercions(self):
        assert loose_equals("1", 1)
        assert loose_equals(None, UNDEFINED)
        assert loose_equals(True, 1)
        assert not loose_equals("x", 1)


class TestTypeOf:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (UNDEFINED, "undefined"),
            (True, "boolean"),
            (1.5, "number"),
            ("x", "string"),
            ([1], "object"),
            ({"a": 1}, "object"),
            (None, "object"),
        ],
    )
    def test_type_of(self, value, expected):
        assert type_of(value) == expected


class TestJSSet:
    def test_insertion_order_dedupe(self):
        s = JSSet([3.0, 1.0, 3.0, 2.0, 1.0])
        assert s.items == [3.0, 1.0, 2.0]
        assert s.size == 3

    def test_bool_and_number_distinct(self):
        s = JSSet([True, 1.0])
        assert s.size == 2

    def test_delete(self):
        s = JSSet([1.0, 2.0])
        assert s.delete(1.0)
        assert not s.delete(9.0)
        assert s.items == [2.0]


class TestJSMap:
    def test_set_get_update(self):
        m = JSMap()
        m.set("a", 1.0)
        m.set("a", 2.0)
        assert m.get("a") == 2.0
        assert m.size == 1

    def test_missing_is_undefined(self):
        assert JSMap().get("missing") is UNDEFINED

    def test_delete(self):
        m = JSMap()
        m.set("a", 1.0)
        assert m.delete("a")
        assert not m.has("a")


class TestConversions:
    def test_round_trip_simple(self):
        for value in (1, 2.5, "x", True, None, [1, "a"], {"k": [1]}):
            assert to_python(from_python(value)) == value

    def test_to_python_integralizes(self):
        assert to_python(5.0) == 5
        assert isinstance(to_python(5.0), int)
        assert to_python(5.5) == 5.5

    def test_undefined_becomes_none(self):
        assert to_python(UNDEFINED) is None

    def test_set_becomes_list(self):
        assert to_python(JSSet([1.0, 2.0])) == [1, 2]

    def test_from_python_rejects_exotics(self):
        with pytest.raises(TsRuntimeError):
            from_python(object())

    @given(
        st.recursive(
            st.one_of(
                st.integers(min_value=-(2**40), max_value=2**40),
                st.booleans(),
                st.text(max_size=8),
                st.none(),
            ),
            lambda children: st.lists(children, max_size=3),
            max_leaves=10,
        )
    )
    def test_round_trip_property(self, value):
        assert to_python(from_python(value)) == value
