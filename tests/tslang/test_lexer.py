"""Unit tests for the TypeScript-subset lexer."""

import pytest

from repro.errors import TsSyntaxError
from repro.tslang.lexer import tokenize
from repro.tslang.tokens import EOF, IDENT, KEYWORD, NUMBER, PUNCT, STRING, TEMPLATE


def kinds(source):
    return [token.kind for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_numbers(self):
        assert values("1 2.5 0.125 1e3 2E-2") == [1.0, 2.5, 0.125, 1000.0, 0.02]

    def test_hex_number(self):
        assert values("0xff") == [255.0]

    def test_identifiers_and_keywords(self):
        tokens = tokenize("let answer = compute")
        assert tokens[0].kind == KEYWORD
        assert tokens[1].kind == IDENT
        assert tokens[1].value == "answer"
        assert tokens[3].value == "compute"

    def test_dollar_and_underscore_identifiers(self):
        assert values("$x _private") == ["$x", "_private"]

    def test_strings_both_quotes(self):
        assert values("'abc' \"def\"") == ["abc", "def"]

    def test_string_escapes(self):
        assert values(r"'a\nb\t\\'") == ["a\nb\t\\"]

    def test_unicode_escape(self):
        assert values(r"'A'") == ["A"]

    def test_punctuator_maximal_munch(self):
        assert values("=== == = => >= >") == ["===", "==", "=", "=>", ">=", ">"]

    def test_increment_vs_plus(self):
        assert values("++ + +=") == ["++", "+", "+="]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestComments:
    def test_line_comment(self):
        assert values("1 // comment\n2") == [1.0, 2.0]

    def test_block_comment(self):
        assert values("1 /* hi */ 2") == [1.0, 2.0]

    def test_multiline_block_comment(self):
        assert values("1 /* a\nb\nc */ 2") == [1.0, 2.0]

    def test_unterminated_block_comment(self):
        with pytest.raises(TsSyntaxError):
            tokenize("/* never closed")


class TestTemplates:
    def test_plain_template(self):
        tokens = tokenize("`hello`")
        assert tokens[0].kind == TEMPLATE
        assert tokens[0].value == ["hello"]

    def test_interpolation(self):
        tokens = tokenize("`a${x + 1}b`")
        parts = tokens[0].value
        assert parts[0] == "a"
        assert parts[1] == ("expr", "x + 1")
        assert parts[2] == "b"

    def test_nested_braces_in_interpolation(self):
        tokens = tokenize("`${ {a: 1}.a }`")
        assert tokens[0].value[0][0] == "expr"

    def test_unterminated_template(self):
        with pytest.raises(TsSyntaxError):
            tokenize("`never closed")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(TsSyntaxError):
            tokenize("'oops")

    def test_newline_in_string(self):
        with pytest.raises(TsSyntaxError):
            tokenize("'line\nbreak'")

    def test_unexpected_character(self):
        with pytest.raises(TsSyntaxError):
            tokenize("let x = #")

    def test_error_has_position(self):
        with pytest.raises(TsSyntaxError) as excinfo:
            tokenize("a\nb #")
        assert excinfo.value.line == 2
