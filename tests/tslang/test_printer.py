"""Tests for the TypeScript-subset pretty-printer.

The core guarantee is *semantic round-trip*: printing a parsed program
and re-parsing the output yields a program with identical behaviour.
"""

import pytest

from repro.tslang import load_module
from repro.tslang.parser import parse_expression, parse_program
from repro.tslang.printer import print_expression, print_program


def round_trip_call(source: str, name: str, args: dict):
    """Run a function before and after a print/parse round trip."""
    before = load_module(source).call(name, args)
    printed = print_program(parse_program(source))
    after = load_module(printed).call(name, args)
    return before, after, printed


class TestExpressions:
    @pytest.mark.parametrize(
        "source",
        [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a - (b - c)",
            "2 ** 3 ** 2",
            "-x + 1",
            "!done",
            "a === b || c < d && e",
            "x ?? 'fallback'",
            "flag ? 'yes' : 'no'",
            "xs.map(x => x * 2)",
            "xs[i + 1].name",
            "new Set([1, 2])",
            "'it\\'s'",
            "[1, ...rest, 2]",
            "typeof x",
            "i++",
            "--j",
        ],
    )
    def test_reprint_is_stable(self, source):
        once = print_expression(parse_expression(source))
        twice = print_expression(parse_expression(once))
        assert once == twice

    def test_template_literal(self):
        printed = print_expression(parse_expression("`a${x + 1}b`"))
        assert printed == "`a${x + 1}b`"

    def test_object_literal_parenthesized(self):
        printed = print_expression(parse_expression("({a: 1, b: 2})"))
        assert printed == "({a: 1, b: 2})"


class TestSemanticRoundTrip:
    def test_factorial(self):
        source = (
            "export function fact({n}: {n: number}): number {\n"
            "    let result = 1;\n"
            "    for (let i = 2; i <= n; i++) {\n"
            "        result *= i;\n"
            "    }\n"
            "    return result;\n"
            "}\n"
        )
        before, after, printed = round_trip_call(source, "fact", {"n": 6})
        assert before == after == 720
        assert "export function fact" in printed

    def test_control_flow_variety(self):
        source = (
            "function classify(n) {\n"
            "    if (n < 0) { return 'negative'; }\n"
            "    else if (n === 0) { return 'zero'; }\n"
            "    let kind = '';\n"
            "    while (n > 1) { n = Math.floor(n / 2); kind += 'h'; }\n"
            "    do { kind += '!'; break; } while (true);\n"
            "    for (const ch of 'ab') { kind += ch; }\n"
            "    return kind;\n"
            "}\n"
        )
        before, after, _ = round_trip_call(source, "classify", {"n": 9})
        assert before == after

    def test_arrays_and_closures(self):
        source = (
            "function pipeline(xs) {\n"
            "    const evens = xs.filter(x => x % 2 === 0);\n"
            "    const doubled = evens.map(x => x * 2);\n"
            "    return doubled.reduce((a, b) => a + b, 0);\n"
            "}\n"
        )
        before, after, _ = round_trip_call(source, "pipeline", {"xs": [1, 2, 3, 4, 5, 6]})
        assert before == after == 24

    def test_objects_and_strings(self):
        source = (
            "function describe(user) {\n"
            "    const label = `${user.name} (${user.age})`;\n"
            "    return {label: label, shout: label.toUpperCase()};\n"
            "}\n"
        )
        before, after, _ = round_trip_call(
            source, "describe", {"user": {"name": "ada", "age": 36}}
        )
        assert before == after

    def test_throw_statement_prints(self):
        source = "function boom() { throw new Error('x'); }"
        printed = print_program(parse_program(source))
        assert "throw new Error('x');" in printed

    def test_every_catalog_ts_implementation_round_trips(self):
        """All fifty Table II TypeScript bodies survive print/parse."""
        import repro.types as t
        from repro.datasets.common_tasks import all_tasks
        from repro.llm.knowledge import KnowledgeBase
        from repro.llm.synthesis.catalog import register_builtin_tasks
        from repro.prompts import build_codegen_prompt, typescript_signature
        from repro.llm.synthesis.emitters import complete_typescript_stub
        from repro.ioexample import outputs_equal

        knowledge = KnowledgeBase()
        register_builtin_tasks(knowledge)
        from repro.templates import PromptTemplate

        for task in all_tasks():
            template = PromptTemplate(task.template)
            implementation = knowledge.find_task(template.quoted())
            signature = typescript_signature(
                f"task{task.number}", list(template.parameters), task.param_types, task.return_type
            )
            stub = f"{signature} {{\n    // {template.quoted()}\n}}"
            source = complete_typescript_stub(stub, implementation.ts_body)
            printed = print_program(parse_program(source))
            module = load_module(printed)
            for example in task.examples:
                actual = module.call(f"task{task.number}", example.inputs)
                assert outputs_equal(actual, example.output), (task.number, printed)
