"""Unit tests for fenced code block extraction."""

import pytest

from repro.errors import CodeExtractionError
from repro.parsing import extract_block, extract_json_block, find_blocks


class TestFindBlocks:
    def test_single_block(self):
        text = "Here you go:\n```json\n{\"a\": 1}\n```\nEnjoy!"
        blocks = find_blocks(text)
        assert len(blocks) == 1
        assert blocks[0].language == "json"
        assert blocks[0].body == '{"a": 1}\n'

    def test_multiple_blocks_in_order(self):
        text = "```python\nx = 1\n```\nand\n```typescript\nlet x = 1;\n```\n"
        blocks = find_blocks(text)
        assert [b.language for b in blocks] == ["python", "typescript"]

    def test_untagged_block(self):
        text = "```\nplain\n```"
        blocks = find_blocks(text)
        assert blocks[0].language == ""

    def test_no_blocks(self):
        assert find_blocks("no fences here") == []

    def test_case_insensitive_tag(self):
        text = "```JSON\n{}\n```"
        assert find_blocks(text)[0].language == "json"


class TestExtractBlock:
    def test_finds_tagged(self):
        text = "```typescript\ncode\n```"
        assert extract_block(text, "typescript") == "code\n"

    def test_alias_ts(self):
        text = "```ts\ncode\n```"
        assert extract_block(text, "typescript") == "code\n"

    def test_alias_py(self):
        text = "```py\ncode\n```"
        assert extract_block(text, "python") == "code\n"

    def test_skips_other_languages(self):
        text = "```json\n{}\n```\n```python\npass\n```"
        assert extract_block(text, "python") == "pass\n"

    def test_untagged_fallback(self):
        text = "```\ncode\n```"
        assert extract_block(text, "python", allow_untagged=True) == "code\n"

    def test_untagged_not_used_without_flag(self):
        text = "```\ncode\n```"
        with pytest.raises(CodeExtractionError):
            extract_block(text, "python")

    def test_missing_block_raises(self):
        with pytest.raises(CodeExtractionError):
            extract_block("nothing", "python")


class TestExtractJsonBlock:
    def test_tagged_json(self):
        text = 'Sure!\n```json\n{"answer": 42}\n```'
        assert extract_json_block(text) == '{"answer": 42}\n'

    def test_untagged_fence(self):
        text = '```\n{"answer": 42}\n```'
        assert extract_json_block(text) == '{"answer": 42}\n'

    def test_bare_object_fallback(self):
        text = 'The answer is {"reason": "because", "answer": 42} as requested.'
        assert extract_json_block(text) == '{"reason": "because", "answer": 42}'

    def test_bare_nested_object(self):
        text = 'Result: {"a": {"b": [1, 2]}} done'
        assert extract_json_block(text) == '{"a": {"b": [1, 2]}}'

    def test_braces_inside_strings_ignored(self):
        text = '{"s": "curly } inside"} trailing'
        assert extract_json_block(text) == '{"s": "curly } inside"}'

    def test_no_json_raises(self):
        with pytest.raises(CodeExtractionError):
            extract_json_block("there is nothing here")

    def test_unbalanced_raises(self):
        with pytest.raises(CodeExtractionError):
            extract_json_block('{"never": "closed"')
