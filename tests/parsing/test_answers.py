"""Unit tests for {reason, answer} extraction (Section III-E criteria)."""

import pytest

import repro.types as t
from repro.errors import ResponseFormatError
from repro.parsing import extract_answer


def _wrap(payload: str) -> str:
    return f"Here is my answer.\n```json\n{payload}\n```\nHope that helps!"


class TestHappyPath:
    def test_scalar_answer(self):
        parsed = extract_answer(_wrap('{"reason": "r", "answer": 42}'), t.INT)
        assert parsed.value == 42
        assert parsed.reason == "r"

    def test_answer_is_coerced(self):
        parsed = extract_answer(_wrap('{"reason": "r", "answer": 42.0}'), t.INT)
        assert parsed.value == 42
        assert isinstance(parsed.value, int)

    def test_record_answer_drops_extras(self):
        point = t.dict({"x": t.int, "y": t.int})
        payload = '{"reason": "r", "answer": {"x": 1, "y": 2, "note": "extra"}}'
        parsed = extract_answer(_wrap(payload), point)
        assert parsed.value == {"x": 1, "y": 2}

    def test_union_literal_answer(self):
        sentiment = t.union(t.literal("positive"), t.literal("negative"))
        parsed = extract_answer(_wrap('{"reason": "r", "answer": "positive"}'), sentiment)
        assert parsed.value == "positive"

    def test_missing_reason_tolerated(self):
        parsed = extract_answer(_wrap('{"answer": true}'), t.BOOL)
        assert parsed.value is True
        assert parsed.reason == ""

    def test_relaxed_json_accepted(self):
        parsed = extract_answer(_wrap("{reason: 'r', answer: [1, 2,]}"), t.list(t.int))
        assert parsed.value == [1, 2]

    def test_bare_json_without_fence(self):
        response = 'Sure: {"reason": "r", "answer": "ok"}'
        parsed = extract_answer(response, t.STR)
        assert parsed.value == "ok"


class TestCriterion1NoJson:
    def test_plain_text_response(self):
        with pytest.raises(ResponseFormatError) as excinfo:
            extract_answer("The answer is positive.", t.STR)
        assert excinfo.value.criterion == ResponseFormatError.CRITERION_NO_JSON

    def test_unparseable_json(self):
        with pytest.raises(ResponseFormatError) as excinfo:
            extract_answer("```json\n{{{\n```", t.STR)
        assert excinfo.value.criterion == ResponseFormatError.CRITERION_NO_JSON


class TestCriterion2NoAnswerField:
    def test_missing_answer_field(self):
        with pytest.raises(ResponseFormatError) as excinfo:
            extract_answer(_wrap('{"reason": "r", "result": 1}'), t.INT)
        assert excinfo.value.criterion == ResponseFormatError.CRITERION_NO_ANSWER_FIELD

    def test_non_object_payload(self):
        with pytest.raises(ResponseFormatError) as excinfo:
            extract_answer(_wrap("[1, 2, 3]"), t.list(t.int))
        assert excinfo.value.criterion == ResponseFormatError.CRITERION_NO_ANSWER_FIELD


class TestCriterion3BadType:
    def test_wrong_scalar_type(self):
        with pytest.raises(ResponseFormatError) as excinfo:
            extract_answer(_wrap('{"reason": "r", "answer": "five"}'), t.INT)
        assert excinfo.value.criterion == ResponseFormatError.CRITERION_BAD_TYPE

    def test_wrong_enum_member(self):
        sentiment = t.union(t.literal("positive"), t.literal("negative"))
        with pytest.raises(ResponseFormatError) as excinfo:
            extract_answer(_wrap('{"reason": "r", "answer": "neutral"}'), sentiment)
        assert excinfo.value.criterion == ResponseFormatError.CRITERION_BAD_TYPE

    def test_error_mentions_expected_type(self):
        with pytest.raises(ResponseFormatError) as excinfo:
            extract_answer(_wrap('{"reason": "r", "answer": 1}'), t.STR)
        assert "string" in str(excinfo.value)

    def test_error_carries_response_for_feedback(self):
        response = _wrap('{"reason": "r", "answer": 1}')
        with pytest.raises(ResponseFormatError) as excinfo:
            extract_answer(response, t.STR)
        assert excinfo.value.response == response
