"""Unit tests for the relaxed JSON parser."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parsing import JsonParseError, loads_relaxed


class TestStrictCompatibility:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("{}", {}),
            ("[]", []),
            ("42", 42),
            ("-1.5", -1.5),
            ('"hi"', "hi"),
            ("true", True),
            ("false", False),
            ("null", None),
            ('{"a": [1, 2, {"b": null}]}', {"a": [1, 2, {"b": None}]}),
        ],
    )
    def test_valid_json(self, text, expected):
        assert loads_relaxed(text) == expected


class TestRelaxations:
    def test_single_quoted_strings(self):
        assert loads_relaxed("{'a': 'b'}") == {"a": "b"}

    def test_trailing_comma_object(self):
        assert loads_relaxed('{"a": 1,}') == {"a": 1}

    def test_trailing_comma_array(self):
        assert loads_relaxed("[1, 2,]") == [1, 2]

    def test_unquoted_keys(self):
        assert loads_relaxed("{answer: 42}") == {"answer": 42}

    def test_line_comments(self):
        text = '{\n  // the answer\n  "answer": 42\n}'
        assert loads_relaxed(text) == {"answer": 42}

    def test_block_comments(self):
        text = '{"a": /* inline */ 1}'
        assert loads_relaxed(text) == {"a": 1}

    def test_python_spellings(self):
        assert loads_relaxed("{'ok': True, 'missing': None}") == {
            "ok": True,
            "missing": None,
        }

    def test_nan(self):
        assert math.isnan(loads_relaxed("NaN"))

    def test_unicode_escape(self):
        assert loads_relaxed('"\\u0041"') == "A"

    def test_escapes(self):
        assert loads_relaxed(r'"\n\t\\"') == "\n\t\\"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "{",
            "[1, 2",
            "{'a':}",
            "{'a' 1}",
            "[1 2]",
            "{'a': 1} extra",
            "/* unterminated",
            "'unterminated",
            "@bad",
        ],
    )
    def test_malformed(self, text):
        with pytest.raises((JsonParseError, ValueError)):
            value = loads_relaxed(text)
            # "{'a': 1} extra" style inputs must not silently succeed.
            raise AssertionError(f"parsed {text!r} to {value!r}")

    def test_error_position(self):
        with pytest.raises(JsonParseError) as excinfo:
            loads_relaxed("{'a': @}")
        assert excinfo.value.position > 0


json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**9), max_value=10**9),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


@given(json_values)
def test_round_trips_everything_json_dumps_produces(value):
    import json

    assert loads_relaxed(json.dumps(value)) == value


@given(st.text(alphabet="abcdefghij XYZ012_-", max_size=20))
def test_relaxed_single_quote_rendering(value):
    """Single-quoted strings (Python repr-ish) parse to the same value."""
    assert loads_relaxed(f"'{value}'") == value
