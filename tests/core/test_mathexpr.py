"""Tests for the shared arithmetic expression trees.

The cross-language property at the bottom is the load-bearing one: the
same emitted expression text must evaluate identically as Python and as
TypeScript, because the GSM8K experiment validates TS code against
Python-computed reference answers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.mathexpr import BinOp, Num, Var, add, div, mul, num, perturb, sub, var


class TestEvaluation:
    def test_constants_and_vars(self):
        assert num(5).evaluate({}) == 5.0
        assert var("a").evaluate({"a": 3}) == 3.0

    def test_arithmetic(self):
        expr = add(mul(var("a"), num(2)), sub(var("b"), num(1)))
        assert expr.evaluate({"a": 3, "b": 5}) == 10.0

    def test_division(self):
        assert div(var("a"), num(4)).evaluate({"a": 10}) == 2.5

    def test_division_by_zero(self):
        with pytest.raises(SolverError):
            div(num(1), num(0)).evaluate({})

    def test_unbound_variable(self):
        with pytest.raises(SolverError):
            var("missing").evaluate({})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("^", num(1), num(2))


class TestEmission:
    def test_simple(self):
        assert add(var("a"), var("b")).emit() == "a + b"

    def test_precedence_parens(self):
        assert mul(add(var("a"), var("b")), var("c")).emit() == "(a + b) * c"

    def test_no_redundant_parens(self):
        assert add(mul(var("a"), var("b")), var("c")).emit() == "a * b + c"

    def test_right_associative_subtraction(self):
        assert sub(var("a"), sub(var("b"), var("c"))).emit() == "a - (b - c)"

    def test_integral_constants_emit_without_decimal(self):
        assert mul(var("a"), num(104)).emit() == "a * 104"

    def test_variables_in_order(self):
        expr = add(mul(var("b"), var("a")), var("c"))
        assert expr.variables() == ["b", "a", "c"]


class TestPerturb:
    @pytest.mark.parametrize(
        "expr",
        [
            add(var("a"), var("b")),
            sub(var("a"), var("b")),
            mul(var("a"), var("b")),
            div(var("a"), var("b")),
            var("a"),
        ],
    )
    def test_perturbed_differs_on_generic_inputs(self, expr):
        env = {"a": 7.0, "b": 3.0}
        assert perturb(expr).evaluate(env) != expr.evaluate(env)


# -- cross-language property --------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "d"])
_exprs = st.recursive(
    st.one_of(
        _names.map(var),
        st.integers(min_value=1, max_value=50).map(num),
    ),
    lambda children: st.builds(
        BinOp, st.sampled_from(["+", "-", "*"]), children, children
    ),
    max_leaves=10,
)


@given(_exprs)
@settings(max_examples=60, deadline=None)
def test_emitted_text_means_the_same_in_python_and_typescript(expr):
    env = {"a": 3.0, "b": 5.0, "c": 7.0, "d": 11.0}
    expected = expr.evaluate(env)

    python_value = eval(expr.emit(), {}, dict(env))  # noqa: S307 - emitted arithmetic only
    assert python_value == pytest.approx(expected)

    from repro.tslang import Interpreter, parse_expression

    interpreter = Interpreter()
    interpreter.globals.bindings.update(env)
    ts_value = interpreter._evaluate(parse_expression(expr.emit()), interpreter.globals)
    assert ts_value == pytest.approx(expected)
