"""Tests for the code-generation pipeline (define(...).compile())."""

import pytest

import repro.types as t
from repro import define
from repro.core import CodeCache, generate_function, load_host, validate_candidate
from repro.core.codegen import GeneratedFunction
from repro.errors import CodeGenerationError, CodeValidationError
from repro.ioexample import Example
from repro.templates import PromptTemplate


class TestCompilePython:
    def test_factorial_compiles_and_runs(self, quiet_config):
        factorial = define(
            t.int,
            "Calculate the factorial of {{n}}.",
            test_examples=[({"n": 5}, 120)],
        ).compile()
        assert factorial(n=6) == 720
        assert factorial.language == "python"
        assert factorial.attempts == 1

    def test_compiled_function_runs_without_llm(self, quiet_config):
        reverse = define(
            t.str, "Reverse the string {{s}}.", test_examples=[({"s": "ab"}, "ba")]
        ).compile()
        calls_before = quiet_config.client.stats.calls
        for _ in range(100):
            assert reverse(s="hello") == "olleh"
        assert quiet_config.client.stats.calls == calls_before

    def test_source_is_reviewable(self, quiet_config):
        fib = define(
            t.list(t.int),
            "Generate the Fibonacci sequence up to {{n}}.",
            test_examples=[({"n": 5}, [0, 1, 1, 2, 3])],
        ).compile()
        assert "def " in fib.source

    def test_signature_mismatch_task_exhausts_retries(self, quiet_config):
        """Paper Table II: task #11 never compiles in Python."""
        unique = define(
            t.list(t.int),
            "Return the unique elements in {{xs}}.",
            test_examples=[({"xs": [1, 2, 2]}, [1, 2])],
        )
        with pytest.raises(CodeGenerationError) as excinfo:
            unique.compile()
        assert excinfo.value.attempts == 10  # 1 + 9 retries

    def test_unknown_task_fails(self, quiet_config):
        mystery = define(
            t.int, "Divine the answer from {{x}}.", test_examples=[({"x": 1}, 42)]
        )
        with pytest.raises(CodeGenerationError):
            mystery.compile()


class TestCompileTypeScript:
    def test_factorial_typescript(self, quiet_config):
        factorial = define(
            t.int,
            "Calculate the factorial of {{n}}.",
            param_types={"n": t.int},
            test_examples=[({"n": 5}, 120)],
        ).compile(language="typescript")
        assert factorial(n=6) == 720
        assert factorial.language == "typescript"
        assert "export function" in factorial.source

    def test_unique_elements_succeeds_in_typescript(self, quiet_config):
        """The same task that fails in Python works in TS (paper Table II)."""
        unique = define(
            t.list(t.int),
            "Return the unique elements in {{xs}}.",
            param_types={"xs": t.list(t.int)},
            test_examples=[({"xs": [1, 2, 2]}, [1, 2])],
        ).compile(language="typescript")
        assert unique(xs=[3, 3, 1]) == [3, 1]


class TestRetriesAndValidation:
    def test_buggy_code_is_caught_and_regenerated(self, noisy_config):
        """With aggressive noise the first attempts carry planted bugs; the
        example test catches them and retries converge."""
        fib = define(
            t.list(t.int),
            "Generate the Fibonacci sequence up to {{n}}.",
            test_examples=[({"n": 5}, [0, 1, 1, 2, 3])],
        ).compile()
        assert fib(n=7) == [0, 1, 1, 2, 3, 5, 8]

    def test_without_examples_bugs_slip_through(self, tmp_path):
        """RQ2's point: test examples are vital.  With noise and no examples
        the buggy first try is accepted."""
        from repro.core import config_override
        from repro.llm import ChatClient, NoisePolicy

        client = ChatClient(noise_policy=NoisePolicy(buggy_code_rate=1.0, seed=13))
        with config_override(client=client, cache_dir=None):
            fib = define(
                t.list(t.int), "Generate the Fibonacci sequence up to {{n}}."
            ).compile()
            # No validation examples: the off-by-one ships.
            assert fib(n=5) != [0, 1, 1, 2, 3]

    def test_validate_candidate_reports_mismatches(self, quiet_config):
        host = load_host("python", "def f(x):\n    return x + 1\n", "f")
        with pytest.raises(CodeValidationError) as excinfo:
            validate_candidate(host, [Example({"x": 1}, 3)])
        assert "expected 3" in excinfo.value.failures[0]

    def test_validate_candidate_reports_exceptions(self, quiet_config):
        host = load_host("python", "def f(x):\n    return x / 0\n", "f")
        with pytest.raises(CodeValidationError) as excinfo:
            validate_candidate(host, [Example({"x": 1}, 1)])
        assert "ZeroDivisionError" in excinfo.value.failures[0]

    def test_numeric_tolerance_between_languages(self, quiet_config):
        """TS returns floats where Python returns ints; validation accepts."""
        host = load_host("python", "def f(x):\n    return float(x)\n", "f")
        validate_candidate(host, [Example({"x": 3}, 3)])  # no raise


class TestCache:
    def test_second_compile_hits_cache(self, quiet_config):
        definition = define(
            t.int, "Calculate the factorial of {{n}}.", test_examples=[({"n": 4}, 24)]
        )
        first = definition.compile()
        calls_after_first = quiet_config.client.stats.calls
        second = definition.compile()
        assert quiet_config.client.stats.calls == calls_after_first
        assert second.from_cache
        assert not first.from_cache
        assert second(n=5) == 120

    def test_cache_file_named_after_template(self, quiet_config):
        define(
            t.int, "Calculate the factorial of {{n}}.", test_examples=[({"n": 4}, 24)]
        ).compile()
        files = list((quiet_config.cache_dir).glob("*.py"))
        assert len(files) == 1
        assert "calculate_the_factorial_of_n" in files[0].name

    def test_cache_file_has_provenance_header(self, quiet_config):
        define(
            t.int, "Calculate the factorial of {{n}}.", test_examples=[({"n": 4}, 24)]
        ).compile()
        content = next(quiet_config.cache_dir.glob("*.py")).read_text()
        assert content.startswith("# Generated by AskIt")

    def test_use_cache_false_regenerates(self, quiet_config):
        definition = define(
            t.int, "Calculate the factorial of {{n}}.", test_examples=[({"n": 4}, 24)]
        )
        definition.compile()
        calls_before = quiet_config.client.stats.calls
        fresh = definition.compile(use_cache=False)
        assert quiet_config.client.stats.calls > calls_before
        assert not fresh.from_cache

    def test_languages_cached_separately(self, quiet_config):
        definition = define(
            t.int,
            "Calculate the factorial of {{n}}.",
            param_types={"n": t.int},
            test_examples=[({"n": 4}, 24)],
        )
        definition.compile(language="python")
        definition.compile(language="typescript")
        assert len(list(quiet_config.cache_dir.glob("*.py"))) == 1
        assert len(list(quiet_config.cache_dir.glob("*.ts"))) == 1

    def test_cache_round_trip_preserves_behaviour(self, quiet_config):
        definition = define(
            t.str, "Reverse the string {{s}}.", test_examples=[({"s": "ab"}, "ba")]
        )
        definition.compile()
        reloaded = definition.compile()
        assert reloaded.from_cache
        assert reloaded(s="xyz") == "zyx"


class TestGenerateFunctionDirectly:
    def test_generate_function_api(self, quiet_config):
        generated = generate_function(
            PromptTemplate("Compute the absolute difference between {{a}} and {{b}}."),
            t.INT,
            test_examples=[Example({"a": 3, "b": 9}, 6)],
        )
        assert isinstance(generated, GeneratedFunction)
        assert generated(a=10, b=4) == 6
        assert generated.compile_time_s > 0
        assert generated.retries == 0
