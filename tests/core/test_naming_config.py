"""Unit tests for naming, config, cache, and hosts."""

import pytest

from repro.core import (
    CodeCache,
    Config,
    cache_stem,
    camel_case_name,
    config_override,
    configure,
    function_name,
    get_config,
    load_host,
    snake_case_name,
    strip_provenance_header,
)
from repro.errors import CodeValidationError, ConfigError


class TestNaming:
    def test_snake_case(self):
        name = snake_case_name("Calculate the factorial of {{n}}")
        assert name.startswith("calculate_the_factorial_of_n_")
        assert name.isidentifier()

    def test_camel_case(self):
        name = camel_case_name("Calculate the factorial of {{n}}")
        assert name.startswith("calculateTheFactorialOfN")
        assert name.isidentifier()

    def test_different_templates_different_names(self):
        assert snake_case_name("Task A") != snake_case_name("Task B")

    def test_same_template_stable_name(self):
        assert snake_case_name("Task A") == snake_case_name("Task A")

    def test_leading_digit_handled(self):
        assert snake_case_name("42 things about {{x}}").isidentifier()
        assert camel_case_name("42 things about {{x}}").isidentifier()

    def test_long_template_truncated(self):
        name = snake_case_name("word " * 100)
        assert len(name) < 80

    def test_function_name_dispatch(self):
        assert function_name("Do it", "python") == snake_case_name("Do it")
        assert function_name("Do it", "typescript") == camel_case_name("Do it")

    def test_cache_stem_shared(self):
        assert cache_stem("Task {{x}}") == cache_stem("Task {{x}}")


class TestConfig:
    def test_defaults_match_paper(self):
        config = Config()
        assert config.max_retries == 9
        assert config.temperature == 1.0
        assert config.cache_dir is not None and config.cache_dir.name == "askit"

    def test_codegen_model_defaults_to_model(self):
        config = Config(model="sim-gpt-4")
        assert config.codegen_model == "sim-gpt-4"

    def test_invalid_temperature(self):
        with pytest.raises(ConfigError):
            Config(temperature=3.0)

    def test_invalid_retries(self):
        with pytest.raises(ConfigError):
            Config(max_retries=-1)

    def test_invalid_language(self):
        with pytest.raises(ConfigError):
            Config(target_language="cobol")

    def test_replace_does_not_mutate(self):
        config = Config()
        other = config.replace(model="sim-gpt-3.5-turbo-16k")
        assert config.model == "sim-gpt-4"
        assert other.model == "sim-gpt-3.5-turbo-16k"

    def test_config_override_restores(self):
        before = get_config()
        with config_override(max_retries=1):
            assert get_config().max_retries == 1
        assert get_config() is before

    def test_configure_sets_global(self):
        before = get_config()
        try:
            configure(max_retries=3)
            assert get_config().max_retries == 3
        finally:
            configure(max_retries=before.max_retries)


class TestCache:
    def test_miss_returns_none(self, tmp_path):
        cache = CodeCache(tmp_path)
        assert cache.load("nothing here", "python") is None

    def test_store_load_round_trip(self, tmp_path):
        cache = CodeCache(tmp_path)
        cache.store("My task {{x}}", "python", "def f(x):\n    return x\n")
        loaded = cache.load("My task {{x}}", "python")
        assert "def f(x):" in loaded
        assert strip_provenance_header(loaded) == "def f(x):\n    return x\n"

    def test_invalidate(self, tmp_path):
        cache = CodeCache(tmp_path)
        cache.store("task", "python", "pass\n")
        assert cache.invalidate("task", "python")
        assert not cache.invalidate("task", "python")
        assert cache.load("task", "python") is None

    def test_typescript_extension(self, tmp_path):
        cache = CodeCache(tmp_path)
        path = cache.store("task", "typescript", "export function f() {}\n")
        assert path.suffix == ".ts"


class TestHosts:
    def test_python_host_rejects_syntax_errors(self):
        with pytest.raises(CodeValidationError):
            load_host("python", "def broken(:\n", "broken")

    def test_python_host_requires_named_function(self):
        with pytest.raises(CodeValidationError):
            load_host("python", "x = 5\n", "f")

    def test_typescript_host_rejects_syntax_errors(self):
        with pytest.raises(CodeValidationError):
            load_host("typescript", "function broken( {", "broken")

    def test_typescript_host_requires_named_function(self):
        with pytest.raises(CodeValidationError):
            load_host("typescript", "function g() { return 1; }", "f")

    def test_unknown_language(self):
        with pytest.raises(ValueError):
            load_host("cobol", "", "f")

    def test_python_host_call(self):
        host = load_host("python", "def add(a, b):\n    return a + b\n", "add")
        assert host.call({"a": 1, "b": 2}) == 3

    def test_typescript_host_call(self):
        host = load_host(
            "typescript",
            "export function add({a, b}: {a: number, b: number}): number { return a + b; }",
            "add",
        )
        assert host.call({"a": 1, "b": 2}) == 3
