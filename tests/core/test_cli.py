"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_help(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table2", "fig5", "fig6", "fig7", "table3"):
            assert name in out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_missing_argument(self):
        assert main(["run"]) == 2

    def test_run_fig7(self, capsys):
        """fig7 is pure counting, so it is cheap enough to run for real."""
        assert main(["run", "fig7"]) == 0
        assert "Figure 7" in capsys.readouterr().out
