"""Concurrency suite for the Session-centric API.

Covers the redesign's contracts: session isolation, no config leakage,
``map()`` ordering / per-item failure isolation / deduplication,
async-sync parity, and the thread-safety of the shared accounting
(ClientStats, VirtualClock).
"""

import asyncio
import json
import threading

import pytest

import repro.types as t
from repro import Session, ask, default_session
from repro.core import Config, config_override, configure, get_config
from repro.errors import MaxRetriesExceededError, TemplateError
from repro.llm import (
    ChatClient,
    CompletionResult,
    LanguageModel,
    QUIET,
    Usage,
)
from repro.llm.latency import VirtualClock


def quiet_session(**overrides) -> Session:
    return Session(
        client=ChatClient(noise_policy=QUIET), cache_dir=None, **overrides
    )


class ParityModel(LanguageModel):
    """Answers ``factorial-style`` prompts for even ``n``; garbage for odd.

    Gives ``map()`` a data-dependent failure mode: odd items exhaust their
    retries while even items succeed.
    """

    def __init__(self, name: str = "parity-model") -> None:
        self.name = name

    def complete(self, messages, temperature: float = 1.0) -> CompletionResult:
        prompt = messages[-1].content
        # The direct prompt carries `where 'n' = <value>`.
        marker = "'n' = "
        n = int(prompt.split(marker, 1)[1].split(",")[0].split("\n")[0])
        if n % 2 == 0:
            text = f"```json\n{json.dumps({'reason': 'even', 'answer': n * 10})}\n```"
        else:
            text = "I would rather not answer with JSON today."
        return CompletionResult(text, Usage(10, 5), 2.0, self.name)


class TestSessionIsolation:
    def test_two_sessions_do_not_interleave_state(self):
        s1 = quiet_session(model="sim-gpt-4")
        s2 = quiet_session(model="sim-gpt-3.5-turbo-16k")
        assert s1.client is not s2.client

        s1.ask(t.int, "What is 7 times 8?")
        s1.ask(t.int, "What is 7 times 8?")
        s2.ask(t.int, "What is 7 times 8?")

        assert s1.stats.calls == 2
        assert s2.stats.calls == 1
        assert set(s1.stats.per_model) == {"sim-gpt-4"}
        assert set(s2.stats.per_model) == {"sim-gpt-3.5-turbo-16k"}
        assert s1.clock.elapsed_s > 0
        assert s1.clock.elapsed_s != pytest.approx(s2.clock.elapsed_s)

    def test_isolated_session_gets_private_client(self):
        s = Session(model="sim-gpt-4")
        assert s.client is not get_config().client
        assert not s.tracks_global_config

    def test_config_override_does_not_leak_into_session(self, quiet_config):
        session = quiet_session(model="sim-gpt-4")
        with config_override(model="sim-other-model"):
            assert session.config.model == "sim-gpt-4"
            fn = session.define(t.int, "What is 7 times 8?")
            assert fn.config.model == "sim-gpt-4"
            assert fn() == 56
            assert set(session.stats.per_model) == {"sim-gpt-4"}

    def test_configure_does_not_leak_into_session(self):
        session = quiet_session(model="sim-gpt-4")
        saved = get_config()
        try:
            configure(model="sim-elsewhere")
            assert session.config.model == "sim-gpt-4"
        finally:
            configure(model=saved.model)

    def test_default_session_tracks_global_config(self, quiet_config):
        assert default_session().tracks_global_config
        assert default_session().config is get_config()
        with config_override(model="sim-gpt-3.5-turbo-16k"):
            assert default_session().config.model == "sim-gpt-3.5-turbo-16k"

    def test_module_api_is_a_facade_over_default_session(self, quiet_config):
        before = default_session().stats.calls
        assert ask(t.int, "What is 7 times 8?") == 56
        assert default_session().stats.calls == before + 1

    def test_replace_derives_isolated_session(self):
        base = quiet_session(model="sim-gpt-4")
        derived = base.replace(model="sim-gpt-3.5-turbo-16k")
        assert base.config.model == "sim-gpt-4"
        assert derived.config.model == "sim-gpt-3.5-turbo-16k"

    def test_session_reset_zeroes_stats_and_clock(self):
        session = quiet_session()
        session.ask(t.int, "What is 7 times 8?")
        assert session.stats.calls == 1 and session.clock.elapsed_s > 0
        session.reset()
        assert session.stats.calls == 0
        assert session.clock.elapsed_s == 0.0
        assert session.stats.per_model == {}


class TestBindValidation:
    def test_unknown_kwarg_raises_template_error_naming_it(self):
        fn = quiet_session().define(t.str, "Summarize {{subject}}.")
        with pytest.raises(TemplateError, match=r"sbject"):
            fn(sbject="typo")

    def test_missing_kwarg_raises_template_error_naming_it(self):
        fn = quiet_session().define(t.int, "Add {{a}} and {{b}}.")
        with pytest.raises(TemplateError, match=r"missing parameter\(s\) \['b'\]"):
            fn(a=1)

    def test_mapping_call_style_is_validated_too(self):
        fn = quiet_session().define(t.str, "Summarize {{subject}}.")
        with pytest.raises(TemplateError, match=r"unknown parameter\(s\)"):
            fn({"subject": "ok", "stray": 1})


class TestMap:
    def test_results_preserve_input_order(self):
        session = quiet_session()
        factorial = session.define(t.int, "Calculate the factorial of {{n}}.")
        batch = factorial.map([{"n": n} for n in (6, 3, 5, 1, 4)], max_concurrency=4)
        assert list(batch) == [720, 6, 120, 1, 24]
        assert batch.ok

    def test_bare_values_bind_single_parameter_templates(self):
        session = quiet_session()
        factorial = session.define(t.int, "Calculate the factorial of {{n}}.")
        assert factorial.map([3, 4]).values == [6, 24]

    def test_per_item_failures_are_isolated(self):
        session = quiet_session(model="parity-model", max_retries=0)
        session.client.register(ParityModel())
        fn = session.define(t.int, "Scale {{n}} by ten.")
        batch = fn.map([{"n": n} for n in range(6)], max_concurrency=3)

        assert [o.ok for o in batch.outcomes] == [True, False, True, False, True, False]
        assert [batch[i] for i in (0, 2, 4)] == [0, 20, 40]
        for failure in batch.failures:
            assert isinstance(failure.error, MaxRetriesExceededError)
        with pytest.raises(MaxRetriesExceededError):
            batch[1]
        with pytest.raises(MaxRetriesExceededError):
            batch.values  # noqa: B018 - property access raises

    def test_identical_bindings_deduplicate(self):
        session = quiet_session()
        factorial = session.define(t.int, "Calculate the factorial of {{n}}.")
        before = session.stats.calls
        batch = factorial.map([{"n": 5}] * 4 + [{"n": 6}], max_concurrency=4)
        assert list(batch) == [120, 120, 120, 120, 720]
        assert session.stats.calls - before == 2
        assert [o.deduped for o in batch.outcomes] == [False, True, True, True, False]

    def test_dedup_can_be_disabled(self):
        session = quiet_session()
        factorial = session.define(t.int, "Calculate the factorial of {{n}}.")
        before = session.stats.calls
        factorial.map([{"n": 5}] * 3, dedup=False)
        assert session.stats.calls - before == 3

    def test_batch_wall_clock_beats_sequential(self):
        session = quiet_session()
        factorial = session.define(t.int, "Calculate the factorial of {{n}}.")
        batch = factorial.map([{"n": n} for n in range(1, 9)], max_concurrency=8)
        assert batch.wall_s > 0
        assert batch.sequential_s > batch.wall_s
        assert session.clock.elapsed_s == pytest.approx(batch.wall_s)

    def test_invalid_map_item_raises_before_any_call(self):
        session = quiet_session()
        fn = session.define(t.int, "Add {{a}} and {{b}}.")
        before = session.stats.calls
        with pytest.raises(TemplateError):
            fn.map([7])
        assert session.stats.calls == before


class TestAsyncParity:
    def test_acall_matches_sync_call(self):
        session = quiet_session()
        factorial = session.define(t.int, "Calculate the factorial of {{n}}.")
        sync_value = factorial(n=6)
        async_value = asyncio.run(factorial.acall(n=6))
        assert async_value == sync_value == 720

    def test_ask_async_matches_ask(self):
        session = quiet_session()
        sync_value = session.ask(t.int, "What is 7 times 8?")
        async_value = asyncio.run(session.ask_async(t.int, "What is 7 times 8?"))
        assert async_value == sync_value == 56

    def test_concurrent_acalls_on_one_loop(self):
        session = quiet_session()
        factorial = session.define(t.int, "Calculate the factorial of {{n}}.")

        async def fan_out():
            return await asyncio.gather(
                *(factorial.acall(n=n) for n in (3, 4, 5))
            )

        assert asyncio.run(fan_out()) == [6, 24, 120]

    def test_acall_validates_bindings(self):
        session = quiet_session()
        fn = session.define(t.int, "Add {{a}} and {{b}}.")
        with pytest.raises(TemplateError):
            asyncio.run(fn.acall(a=1, c=2))


class TestAccountingThreadSafety:
    def test_client_stats_accumulate_atomically(self):
        stats = ChatClient().stats
        result = CompletionResult("x", Usage(3, 2), 0.5, "m")

        def hammer():
            for _ in range(500):
                stats.record(result)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.calls == 4000
        assert stats.prompt_tokens == 12000
        assert stats.completion_tokens == 8000
        assert stats.for_model("m").calls == 4000
        assert stats.for_model("never-called").calls == 0

    def test_virtual_clock_charges_atomically(self):
        clock = VirtualClock()

        def hammer():
            for _ in range(1000):
                clock.charge(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert clock.elapsed_s == pytest.approx(8.0)

    def test_concurrent_region_takes_longest_lane(self):
        clock = VirtualClock()

        def lane(region, index: int, seconds: float):
            with clock.in_lane(region, ("item", index)):
                clock.charge(seconds)

        with clock.concurrent() as region:
            threads = [
                threading.Thread(target=lane, args=(region, i, s))
                for i, s in enumerate((1.0, 2.0, 3.0))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert region.wall_s == pytest.approx(3.0)
        assert clock.elapsed_s == pytest.approx(3.0)

    def test_bounded_workers_schedule_lanes(self):
        clock = VirtualClock()
        with clock.concurrent(workers=2) as region:
            for index, seconds in enumerate((3.0, 2.0, 2.0, 1.0)):
                with clock.in_lane(region, ("item", index)):
                    clock.charge(seconds)
        # Longest-first over 2 slots: [3, 1] and [2, 2] -> wall 4.
        assert region.wall_s == pytest.approx(4.0)
        assert clock.elapsed_s == pytest.approx(4.0)

    def test_sibling_regions_do_not_steal_charges(self):
        clock = VirtualClock()
        results = {}

        def batch(name: str, seconds: float, ready: threading.Barrier):
            with clock.concurrent() as region:
                with clock.in_lane(region, ("item", 0)):
                    ready.wait()  # both regions open before either charges
                    clock.charge(seconds)
            results[name] = region.wall_s

        ready = threading.Barrier(2)
        threads = [
            threading.Thread(target=batch, args=("a", 10.0, ready)),
            threading.Thread(target=batch, args=("b", 1.0, ready)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == {"a": pytest.approx(10.0), "b": pytest.approx(1.0)}
        assert clock.elapsed_s == pytest.approx(11.0)

    def test_stats_reset(self):
        stats = ChatClient().stats
        stats.record(CompletionResult("x", Usage(1, 1), 0.1, "m"))
        stats.reset()
        assert stats.calls == 0 and stats.per_model == {}


class TestSessionConfigHandling:
    def test_session_accepts_explicit_config_object(self):
        config = Config(model="sim-gpt-4", cache_dir=None)
        session = Session(config)
        assert session.config.model == "sim-gpt-4"
        assert session.client is not None

    def test_session_overrides_compose_with_config(self):
        config = Config(model="sim-gpt-4", cache_dir=None)
        session = Session(config, model="sim-gpt-3.5-turbo-16k")
        assert session.config.model == "sim-gpt-3.5-turbo-16k"

    def test_run_parallel_orders_and_isolates(self):
        session = quiet_session()

        def work(n):
            def thunk():
                return session.ask(t.int, "Calculate the factorial of {{n}}.", n=n)

            return thunk

        batch = session.run_parallel([work(n) for n in (2, 3, 4)], max_concurrency=3)
        assert list(batch) == [2, 6, 24]
