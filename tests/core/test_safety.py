"""Tests for the static safety analysis of generated code (§VI)."""

import pytest

from repro.core.safety import (
    ENFORCE,
    OFF,
    WARN,
    SafetyPolicy,
    scan,
    scan_python,
    scan_typescript,
)
from repro.errors import CodeValidationError


class TestPythonScanner:
    def test_clean_code(self):
        assert scan_python("def f(x):\n    return x + 1\n") == []

    def test_dangerous_import(self):
        findings = scan_python("import subprocess\n")
        assert findings
        assert "subprocess" in str(findings[0])

    def test_dangerous_from_import(self):
        assert scan_python("from socket import socket\n")

    def test_os_system_call(self):
        findings = scan_python("import os\nos.system('rm -rf /')\n", allow_files=True)
        assert any("os.system" in str(finding) for finding in findings)

    def test_os_remove_call(self):
        findings = scan_python("import os\nos.remove(path)\n", allow_files=True)
        assert any("os.remove" in str(finding) for finding in findings)

    def test_eval_exec(self):
        assert scan_python("eval('1+1')\n")
        assert scan_python("exec(code)\n")

    def test_dunder_escape(self):
        findings = scan_python("x = (1).__class__\n")
        assert any("__class__" in str(finding) for finding in findings)

    def test_open_for_read_is_fine(self):
        assert scan_python("open('f.txt').read()\n") == []

    def test_open_for_write_flagged_without_allow_files(self):
        assert scan_python("open('f.txt', 'w')\n")

    def test_open_for_write_allowed_with_allow_files(self):
        assert scan_python("open('f.txt', 'w')\n", allow_files=True) == []

    def test_file_module_gated_by_allow_files(self):
        assert scan_python("import pathlib\n")
        assert scan_python("import pathlib\n", allow_files=True) == []

    def test_syntax_error_is_a_finding(self):
        assert scan_python("def broken(:\n")

    def test_findings_carry_lines(self):
        findings = scan_python("x = 1\nimport subprocess\n")
        assert findings[0].line == 2


class TestTypeScriptScanner:
    def test_clean_code(self):
        source = "export function f({x}: {x: number}): number { return x + 1; }"
        assert scan_typescript(source) == []

    def test_forbidden_global(self):
        source = "function f() { return process; }"
        findings = scan_typescript(source)
        assert any("process" in str(finding) for finding in findings)

    def test_require_flagged(self):
        source = "function f() { const fs = require; return 1; }"
        assert scan_typescript(source)

    def test_syntax_error_is_a_finding(self):
        assert scan_typescript("function broken( {")


class TestPolicy:
    def test_modes_validated(self):
        with pytest.raises(ValueError):
            SafetyPolicy("paranoid")

    def test_enforce_raises(self):
        policy = SafetyPolicy(ENFORCE)
        findings = scan_python("import subprocess\n")
        with pytest.raises(CodeValidationError):
            policy.apply(findings)

    def test_warn_returns_findings(self):
        policy = SafetyPolicy(WARN)
        findings = scan_python("import subprocess\n")
        assert policy.apply(findings) == findings

    def test_clean_enforce_passes(self):
        assert SafetyPolicy(ENFORCE).apply([]) == []

    def test_scan_dispatch(self):
        assert scan("x = 1\n", "python") == []
        with pytest.raises(ValueError):
            scan("", "cobol")


class TestPipelineIntegration:
    def test_enforce_mode_blocks_dangerous_catalog_entry(self, tmp_path):
        """A knowledge-base entry with dangerous code is rejected in
        enforce mode and the task fails rather than executing it."""
        import repro.types as t
        from repro.core import config_override, define
        from repro.errors import CodeGenerationError
        from repro.llm import ChatClient, QUIET, TaskImplementation
        from repro.llm.knowledge import KnowledgeBase
        from repro.llm.simulated import SimulatedLLM

        knowledge = KnowledgeBase()
        knowledge.register_task(
            TaskImplementation(
                key="Tidy up the directory 'path'",
                parameters=["path"],
                python_fn=lambda path: None,
                python_body="import shutil\nshutil.rmtree(path)\nreturn None",
                ts_body="return null;",
            )
        )
        client = ChatClient(
            models={"sim-gpt-4": SimulatedLLM(knowledge=knowledge, policy=QUIET)},
            noise_policy=QUIET,
        )
        with config_override(
            client=client,
            cache_dir=None,
            safety_policy=SafetyPolicy(ENFORCE, allow_files=True),
        ):
            hazardous = define(t.void, "Tidy up the directory {{path}}")
            with pytest.raises(CodeGenerationError) as excinfo:
                hazardous.compile(language="python", use_cache=False)
            assert "safety" in str(excinfo.value)

    def test_warn_mode_records_findings(self, tmp_path):
        import repro.types as t
        from repro.core import config_override, define
        from repro.llm import ChatClient, QUIET

        client = ChatClient(noise_policy=QUIET)
        with config_override(
            client=client,
            cache_dir=None,
            safety_policy=SafetyPolicy(WARN, allow_files=True),
        ):
            csv_writer = define(
                t.void,
                "Append {{review}} and {{sentiment}} as a new row in the CSV "
                "file named {{filename}}",
            ).compile(language="python", use_cache=False)
        # File writing is allowed, so the CSV task is clean under this policy.
        assert csv_writer.safety_findings == []

    def test_default_policy_reproduces_paper_behaviour(self, quiet_config):
        """The default is 'off': nothing scanned, nothing recorded."""
        import repro.types as t
        from repro import define

        generated = define(
            t.int, "Calculate the factorial of {{n}}.", test_examples=[({"n": 4}, 24)]
        ).compile(use_cache=False)
        assert generated.safety_findings == []
