"""Tests for the module-level compilation driver (Section III-D modes)."""

import sys
import types

import pytest

import repro.types as t
from repro import define
from repro.core.compiler import compile_module, find_definitions
from repro.errors import AskItError


def _make_module(name: str) -> types.ModuleType:
    module = types.ModuleType(name)
    module.factorial = define(
        t.int, "Calculate the factorial of {{n}}.", test_examples=[({"n": 5}, 120)]
    )
    module.reverse = define(
        t.str, "Reverse the string {{s}}.", test_examples=[({"s": "ab"}, "ba")]
    )
    # A task the Python backend cannot code (paper Table II, task #11).
    module.unique = define(
        t.list(t.int),
        "Return the unique elements in {{xs}}.",
        test_examples=[({"xs": [1, 1, 2]}, [1, 2])],
    )
    module.not_a_task = 42
    return module


class TestFindDefinitions:
    def test_finds_only_askit_functions(self, quiet_config):
        module = _make_module("fake_tasks_a")
        found = find_definitions(module)
        assert sorted(found) == ["factorial", "reverse", "unique"]

    def test_accepts_importable_name(self, quiet_config):
        module = _make_module("fake_tasks_b")
        sys.modules["fake_tasks_b"] = module
        try:
            assert "factorial" in find_definitions("fake_tasks_b")
        finally:
            del sys.modules["fake_tasks_b"]


class TestCompileModule:
    def test_file_mode_compiles_everything_it_can(self, quiet_config):
        report = compile_module(_make_module("fake_tasks_c"))
        assert sorted(report.compiled) == ["factorial", "reverse"]
        assert sorted(report.failed) == ["unique"]
        assert report.success_count == 2
        assert report.failure_count == 1
        assert report.compiled["factorial"](n=6) == 720

    def test_function_mode_compiles_only_named(self, quiet_config):
        report = compile_module(_make_module("fake_tasks_d"), only=["reverse"])
        assert list(report.compiled) == ["reverse"]
        assert not report.failed

    def test_unknown_name_raises(self, quiet_config):
        with pytest.raises(AskItError) as excinfo:
            compile_module(_make_module("fake_tasks_e"), only=["fibonacci"])
        assert "fibonacci" in str(excinfo.value)

    def test_results_land_in_shared_cache(self, quiet_config):
        compile_module(_make_module("fake_tasks_f"), only=["factorial"])
        cached = list(quiet_config.cache_dir.glob("*.py"))
        assert len(cached) == 1

    def test_typescript_language(self, quiet_config):
        report = compile_module(
            _make_module("fake_tasks_g"), only=["unique"], language="typescript"
        )
        # The same task that fails in Python compiles in TypeScript.
        assert list(report.compiled) == ["unique"]
