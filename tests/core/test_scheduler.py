"""The request scheduler: pacing, AIMD, priorities, deadlines, requeues.

Every throttle path is exercised on the virtual clock -- nothing sleeps:

* pacing buckets charge deterministic waits (GCRA math);
* 429 refusals requeue with the Retry-After charged, then succeed;
* deadlines reject hopeless requests with a typed error before any
  budget is spent;
* the AIMD controller ramps on success and halves on refusals/spikes;
* every event lands on ``ClientStats``, total and per model.
"""

import asyncio
import threading
import time

import pytest

import repro.types as t
from repro.core import Config, SchedulerPolicy, Session
from repro.core.scheduler import (
    AdaptiveConcurrency,
    PacingBucket,
    RequestScheduler,
    _PriorityTurnstile,
)
from repro.errors import ConfigError, DeadlineExceededError, RateLimitError
from repro.llm import ChatClient, QUIET, SimulatedRateLimit
from repro.llm.base import CompletionResult, Usage, user_message

MODEL = "sim-gpt-4"


def quiet_client(rate_limit=None) -> ChatClient:
    return ChatClient(noise_policy=QUIET, rate_limit=rate_limit)


def fake_call(latency_s: float = 1.0):
    """A provider-call stand-in returning a canned completion."""

    def call() -> CompletionResult:
        return CompletionResult("ok", Usage(10, 5), latency_s, MODEL)

    return call


MESSAGES = [user_message("hello")]


class TestPacingBucket:
    def test_burst_is_free_then_requests_pace_at_the_rate(self):
        bucket = PacingBucket(rate_per_s=1.0, burst=2.0)
        waits = [bucket.reserve(0.0) for _ in range(6)]
        # Two-and-a-bit requests ride the burst; the rest space out 1/s.
        assert waits[:3] == [0.0, 0.0, 0.0]
        assert waits[3:] == [1.0, 2.0, 3.0]

    def test_late_arrivals_do_not_wait(self):
        bucket = PacingBucket(rate_per_s=1.0, burst=1.0)
        for _ in range(3):
            bucket.reserve(0.0)
        assert bucket.reserve(100.0) == 0.0

    def test_cost_scales_the_reservation(self):
        bucket = PacingBucket(rate_per_s=10.0, burst=10.0)  # 10 tokens/s
        assert bucket.reserve(0.0, cost=10.0) == 0.0
        assert bucket.reserve(0.0, cost=20.0) == 0.0  # rides the tolerance
        # 30 tokens consumed against a 10-token allowance: the next
        # request waits for the 20-token overdraft to refill at 10/s.
        assert bucket.reserve(0.0, cost=10.0) == pytest.approx(2.0)

    def test_peek_does_not_reserve(self):
        bucket = PacingBucket(rate_per_s=1.0, burst=1.0)
        bucket.reserve(0.0)
        bucket.reserve(0.0)
        before = bucket.peek_wait(0.0)
        assert bucket.peek_wait(0.0) == before
        assert bucket.reserve(0.0) == pytest.approx(before)


class TestAdaptiveConcurrency:
    def policy(self, **overrides) -> SchedulerPolicy:
        defaults = dict(initial_window=4, max_window=8, ramp_every=2, spike_factor=2.0)
        defaults.update(overrides)
        return SchedulerPolicy(**defaults)

    def test_ramps_additively_on_success(self):
        aimd = AdaptiveConcurrency(self.policy())
        for _ in range(4):
            aimd.on_success(1.0)
        # 4 successes / ramp_every 2 => +2.
        assert aimd.window == 6.0

    def test_window_is_capped(self):
        aimd = AdaptiveConcurrency(self.policy())
        for _ in range(100):
            aimd.on_success(1.0)
        assert aimd.window == 8.0

    def test_rate_limit_halves_the_window(self):
        aimd = AdaptiveConcurrency(self.policy())
        aimd.on_rate_limit()
        assert aimd.window == 2.0
        for _ in range(10):
            aimd.on_rate_limit()
        assert aimd.window == 1.0  # floored at min_window

    def test_latency_spike_halves_the_window(self):
        aimd = AdaptiveConcurrency(self.policy())
        for _ in range(10):
            aimd.on_success(1.0)  # settle the EWMA near 1s
        before = aimd.window
        aimd.on_success(50.0)  # 50x the EWMA: overload signal
        assert aimd.window == before / 2

    def test_rate_follows_window_over_ewma(self):
        aimd = AdaptiveConcurrency(self.policy(ramp_every=100))
        assert aimd.rate_per_s() is None  # no latency observed yet
        aimd.on_success(2.0)
        assert aimd.rate_per_s() == pytest.approx(4.0 / 2.0)


class TestPriorityTurnstile:
    def test_lower_priority_value_admitted_first(self):
        turnstile = _PriorityTurnstile()
        turnstile.acquire(0)  # hold the gate while contenders queue up
        order: list[int] = []

        def contend(priority: int) -> None:
            turnstile.acquire(priority)
            order.append(priority)
            turnstile.release()

        threads = [
            threading.Thread(target=contend, args=(p,)) for p in (5, 1, 3)
        ]
        for thread in threads:
            thread.start()
        deadline = time.time() + 5.0
        while len(turnstile._waiting) < 3 and time.time() < deadline:
            time.sleep(0.001)
        turnstile.release()
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == [1, 3, 5]


class TestScheduledAdmission:
    def scheduler(self, **policy) -> RequestScheduler:
        return RequestScheduler(SchedulerPolicy(**policy))

    def test_paced_requests_charge_waits_to_the_clock_and_stats(self):
        client = quiet_client()
        scheduler = self.scheduler(requests_per_minute=60, burst=1)
        for _ in range(3):
            scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        # burst(1)+1 free, then 1/s pacing; latency 0 keeps arrivals at 0.
        assert client.clock.elapsed_s == pytest.approx(1.0)
        assert client.stats.throttled == 1
        assert client.stats.throttle_wait_s == pytest.approx(1.0)
        per_model = client.stats.for_model(MODEL)
        assert per_model.throttled == 1
        assert per_model.throttle_wait_s == pytest.approx(1.0)

    def test_token_pacing_uses_estimated_cost(self):
        client = quiet_client()
        scheduler = self.scheduler(
            tokens_per_minute=600, burst=1, expected_completion_tokens=0
        )
        cost = scheduler.estimate_cost_tokens(MESSAGES)
        scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        # Bucket: 10 tokens/s with a 1-token burst allowance; the second
        # request waits for its cost (minus the allowance) to refill.
        assert client.stats.throttled == 1
        assert client.clock.elapsed_s == pytest.approx((cost - 1) / 10.0)

    def test_deadline_rejects_before_spending_budget(self):
        client = quiet_client()
        scheduler = self.scheduler(requests_per_minute=60, burst=1, deadline_s=0.5)
        # Two requests ride the burst allowance free of charge; the third
        # would wait 1.0s -- over the 0.5s deadline -- so it must raise
        # instead of charging.
        scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        with pytest.raises(DeadlineExceededError) as excinfo:
            scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        assert excinfo.value.deadline_s == 0.5
        assert excinfo.value.projected_s > 0.5
        assert client.stats.deadline_exceeded == 1
        assert client.stats.for_model(MODEL).deadline_exceeded == 1

    def test_deadline_rejection_charges_nothing(self):
        client = quiet_client()
        scheduler = self.scheduler(requests_per_minute=60, burst=1, deadline_s=0.25)
        scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        elapsed = client.clock.elapsed_s
        with pytest.raises(DeadlineExceededError):
            scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        assert client.clock.elapsed_s == elapsed

    def test_per_request_deadline_overrides_the_policy_default(self):
        client = quiet_client()
        scheduler = self.scheduler(requests_per_minute=60, burst=1, deadline_s=0.1)
        scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        scheduler.run(client, MODEL, MESSAGES, fake_call(0.0))
        # The third request waits 1.0s -- over the 0.1s default, but a
        # generous per-request override admits it anyway.
        scheduler.run(client, MODEL, MESSAGES, fake_call(0.0), deadline_s=10.0)
        assert client.stats.deadline_exceeded == 0
        assert client.stats.throttled == 1

    def test_refusal_requeues_with_the_retry_after_charged(self):
        limit = SimulatedRateLimit(
            requests_per_minute=60, burst=1, min_retry_after_s=5.0
        )
        client = quiet_client(rate_limit=limit)
        # No pacing configured: the scheduler runs straight into the
        # provider's limit and must recover via requeue.
        scheduler = self.scheduler()

        def provider_call():
            limit.check(MODEL, client.clock.now())
            return CompletionResult("ok", Usage(10, 5), 0.0, MODEL)

        for _ in range(5):
            scheduler.run(client, MODEL, MESSAGES, provider_call)
        # Two requests ride the provider's burst; of the rest, two are
        # refused, charged the Retry-After, requeued, and served (the
        # charged penalties advance the clock far enough that the other
        # conforms outright).
        stats = client.stats
        assert stats.rate_limited == 2
        assert stats.requeued == 2
        assert stats.throttle_wait_s >= 10.0  # two charged Retry-Afters
        assert stats.for_model(MODEL).requeued == 2
        assert limit.refusals[MODEL] == 2

    def test_requeue_budget_exhaustion_propagates_the_refusal(self):
        client = quiet_client()
        scheduler = self.scheduler(max_requeues=0)

        def always_refuse():
            raise RateLimitError("nope", retry_after_s=5.0, model=MODEL)

        with pytest.raises(RateLimitError):
            scheduler.run(client, MODEL, MESSAGES, always_refuse)
        assert client.stats.rate_limited == 1
        assert client.stats.requeued == 0

    def test_refusal_shrinks_the_adaptive_window(self):
        client = quiet_client()
        scheduler = self.scheduler(initial_window=8, max_requeues=0)
        with pytest.raises(RateLimitError):
            scheduler.run(
                client,
                MODEL,
                MESSAGES,
                lambda: (_ for _ in ()).throw(
                    RateLimitError("nope", retry_after_s=1.0)
                ),
            )
        assert scheduler.adaptive_state(MODEL).window == 4.0

    def test_success_ramps_the_adaptive_window(self):
        client = quiet_client()
        scheduler = self.scheduler(initial_window=2, ramp_every=1, max_window=64)
        for _ in range(3):
            scheduler.run(client, MODEL, MESSAGES, fake_call(1.0))
        assert scheduler.adaptive_state(MODEL).window == 5.0
        assert scheduler.adaptive_state(MODEL).ewma_latency_s == pytest.approx(1.0)


class TestSchedulerThroughSessions:
    def session(self, rate_limit=None, **overrides) -> Session:
        return Session(
            model=MODEL,
            cache_dir=None,
            scheduler="adaptive",
            client=quiet_client(rate_limit),
            **overrides,
        )

    def test_scheduled_map_under_provider_limit_drops_nothing(self):
        limit = SimulatedRateLimit(
            requests_per_minute=60, burst=2, min_retry_after_s=20.0
        )
        session = self.session(
            limit, scheduler_policy=SchedulerPolicy(requests_per_minute=60, burst=2)
        )
        fn = session.define(t.int, "Calculate the factorial of {{n}}.")
        batch = fn.map(
            [{"n": 1 + (i % 6)} for i in range(12)], max_concurrency=4, dedup=False
        )
        assert batch.ok
        assert batch.values == [
            [1, 2, 6, 24, 120, 720][i % 6] for i in range(12)
        ]
        # Pacing kept the provider conforming: throttle waits, no 429s.
        assert session.stats.throttled > 0
        assert session.stats.rate_limited == 0
        assert limit.refusals == {}

    def test_deadline_failures_are_isolated_per_map_item(self):
        session = self.session(
            scheduler_policy=SchedulerPolicy(
                requests_per_minute=1, burst=1, deadline_s=30.0
            )
        )
        fn = session.define(t.int, "Calculate the factorial of {{n}}.")
        batch = fn.map(
            [{"n": n} for n in (3, 4, 5, 6)], max_concurrency=4, dedup=False
        )
        # Two requests ride the burst allowance; the others would wait
        # >= 60s, past the 30s deadline -- captured per item, the batch
        # never aborts.
        assert not batch.ok
        assert len(batch.failures) == 2
        assert all(
            isinstance(outcome.error, DeadlineExceededError)
            for outcome in batch.failures
        )
        assert session.stats.deadline_exceeded == 2

    def test_async_path_is_scheduled_too(self):
        session = self.session(
            scheduler_policy=SchedulerPolicy(requests_per_minute=1, burst=1)
        )

        async def burst():
            for n in (3, 4, 5):
                await session.ask_async(
                    t.int, "Calculate the factorial of {{n}}.", n=n
                )

        asyncio.run(burst())
        assert session.stats.throttled >= 1
        assert session.stats.throttle_wait_s > 0.0

    def test_session_exposes_the_scheduler(self):
        session = self.session(requests_per_minute=10)
        assert isinstance(session.scheduler, RequestScheduler)
        assert session.scheduler is session.scheduler  # memoized per config
        assert session.scheduler.policy.requests_per_minute == 10

    def test_scheduler_off_by_default(self):
        session = Session(model=MODEL, cache_dir=None, client=quiet_client())
        assert session.scheduler is None


class TestConfigKnobs:
    def test_scheduler_mode_is_validated(self):
        with pytest.raises(ConfigError):
            Config(scheduler="sometimes")

    def test_rate_knobs_are_validated(self):
        with pytest.raises(ConfigError):
            Config(requests_per_minute=0)
        with pytest.raises(ConfigError):
            Config(tokens_per_minute=-5)
        with pytest.raises(ConfigError):
            Config(deadline_s=0)

    def test_convenience_knobs_override_the_policy(self):
        config = Config(
            scheduler="adaptive",
            requests_per_minute=30,
            scheduler_policy=SchedulerPolicy(requests_per_minute=99, burst=7),
        )
        assert config.requests_per_minute == 30
        assert config.scheduler_policy.burst == 7

    def test_replace_preserves_scheduler_settings(self):
        config = Config(scheduler="adaptive", requests_per_minute=30)
        replaced = config.replace(model="sim-gpt-3.5-turbo-16k")
        assert replaced.scheduler == "adaptive"
        assert replaced.requests_per_minute == 30

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            SchedulerPolicy(burst=0)
        with pytest.raises(ConfigError):
            SchedulerPolicy(initial_window=100, max_window=8)
        with pytest.raises(ConfigError):
            SchedulerPolicy(spike_factor=1.0)
        with pytest.raises(ConfigError):
            SchedulerPolicy(max_requeues=-1)
