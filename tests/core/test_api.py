"""Tests for the public ask/define API against the simulated model."""

import pytest

import repro.types as t
from repro import ask, define
from repro.core import Example
from repro.errors import TemplateError


class TestAsk:
    def test_sentiment_example_from_paper(self, quiet_config):
        sentiment = ask(
            t.union(t.literal("positive"), t.literal("negative")),
            "What is the sentiment of {{review}}?",
            review="The product is fantastic. It exceeds all my expectations.",
        )
        assert sentiment == "positive"

    def test_parameterless_ask(self, quiet_config):
        assert ask(t.int, "What is 7 times 8?") == 56

    def test_python_builtin_types_accepted(self, quiet_config):
        assert ask(int, "What is 7 times 8?") == 56

    def test_typed_record_answer(self, quiet_config):
        book = t.dict({"title": t.str, "author": t.str, "year": t.int})
        books = ask(
            t.list(book),
            "List {{n}} classic books on {{subject}}.",
            n=2,
            subject="compilers",
        )
        assert len(books) == 2
        assert set(books[0]) == {"title", "author", "year"}


class TestDefine:
    def test_define_and_call_with_kwargs(self, quiet_config):
        get_sentiment = define(
            t.union(t.literal("positive"), t.literal("negative")),
            "What is the sentiment of {{review}}?",
        )
        assert get_sentiment(review="I love it, best purchase ever") == "positive"
        assert get_sentiment(review="Horrible. It broke immediately.") == "negative"

    def test_call_with_mapping_like_the_paper(self, quiet_config):
        get_sentiment = define(
            t.union(t.literal("positive"), t.literal("negative")),
            "What is the sentiment of {{review}}?",
        )
        assert get_sentiment({"review": "wonderful product"}) == "positive"

    def test_call_positionally(self, quiet_config):
        factorial = define(t.int, "Calculate the factorial of {{n}}.")
        assert factorial(5) == 120

    def test_parameters_exposed(self, quiet_config):
        fn = define(t.int, "Count {{x}} within {{xs}}.")
        assert fn.parameters == ("x", "xs")

    def test_mixing_args_and_kwargs_rejected(self, quiet_config):
        fn = define(t.int, "Add {{a}} and {{b}}.")
        with pytest.raises(TemplateError):
            fn(1, b=2)

    def test_param_types_must_match_template(self, quiet_config):
        with pytest.raises(TemplateError):
            define(t.int, "Square {{n}}.", param_types={"m": t.int})

    def test_examples_normalization(self, quiet_config):
        fn = define(
            t.bool,
            "Is {{n}} even?",
            examples=[({"n": 2}, True), {"input": {"n": 3}, "output": False}],
        )
        assert fn.few_shot_examples == [Example({"n": 2}, True), Example({"n": 3}, False)]

    def test_bad_example_shape_rejected(self, quiet_config):
        with pytest.raises(TypeError):
            define(t.bool, "Is {{n}} even?", examples=["nope"])

    def test_last_result_records_attempts_and_latency(self, quiet_config):
        factorial = define(t.int, "Calculate the factorial of {{n}}.")
        factorial(n=4)
        assert factorial.last_result is not None
        assert factorial.last_result.attempts == 1
        assert factorial.last_result.latency_s > 0

    def test_direct_answer_for_common_task(self, quiet_config):
        running_sum = define(
            t.list(t.int), "Compute the running sum of {{ns}}."
        )
        assert running_sum(ns=[1, 2, 3]) == [1, 3, 6]


class TestRetryLoop:
    def test_noisy_model_converges_via_feedback(self, noisy_config):
        """With 90 % corruption the first tries fail, but feedback retries
        converge within the budget."""
        value = ask(t.int, "What is 7 times 8?")
        assert value == 56

    def test_attempt_count_reflects_retries(self, noisy_config):
        fn = define(t.int, "What is 7 times 8?")
        fn()
        assert fn.last_result.attempts >= 1

    def test_zero_retries_with_certain_corruption_raises(self, tmp_path):
        from repro.core import config_override
        from repro.errors import MaxRetriesExceededError
        from repro.llm import ChatClient, NoisePolicy

        client = ChatClient(noise_policy=NoisePolicy(direct_corruption_rate=1.0, seed=5))
        with config_override(client=client, max_retries=0, cache_dir=None):
            with pytest.raises(MaxRetriesExceededError):
                ask(t.int, "What is 7 times 8?")
