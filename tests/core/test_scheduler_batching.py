"""Cross-request batching: the scheduler's batch window under test.

A ``map()`` fan-out opens a :meth:`RequestScheduler.batch_window`
around its worker pool; cache-missing requests rendezvous into grouped
wire calls paying the request-pacing bucket once per group.  These
tests pin the semantics the docs promise: who batches (pool threads
only -- retries, foreign threads, and deadline-bound requests go
solo), how groups seal (capacity, starvation, virtual-time bound), how
failures split (whole-batch refusals requeue every member solo with
one AIMD shrink; per-item errors stay on their item), and that the
observable accounting -- ClientStats, Prometheus, the virtual clock --
tells one consistent story with telemetry on or off.

Everything runs on the virtual clock; nothing sleeps.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.types as t
from repro.core import SchedulerPolicy, Session
from repro.core.scheduler import AdaptiveConcurrency, BatchRequest, RequestScheduler
from repro.errors import ConfigError, RateLimitError
from repro.llm import QUIET, ChatClient
from repro.llm.base import CompletionResult, Usage, user_message

MODEL = "sim-gpt-4"


def quiet_client(rate_limit=None) -> ChatClient:
    return ChatClient(noise_policy=QUIET, rate_limit=rate_limit)


def fake_call(latency_s: float = 1.0):
    def call() -> CompletionResult:
        return CompletionResult("ok", Usage(10, 5), latency_s, MODEL)

    return call


def completion(content: str, latency_s: float = 1.0) -> CompletionResult:
    return CompletionResult(content, Usage(10, 5), latency_s, MODEL)


class GroupedBackend:
    """A batch-capable transport stand-in that records its group sizes."""

    def __init__(self, respond=None) -> None:
        self.calls: list[int] = []
        self._respond = respond or (
            lambda messages: completion(messages[-1].content, 0.0)
        )
        self._lock = threading.Lock()

    def __call__(self, message_lists):
        with self._lock:
            self.calls.append(len(message_lists))
        return [self._respond(messages) for messages in message_lists]


class CountingAIMD(AdaptiveConcurrency):
    """AdaptiveConcurrency that counts its multiplicative decreases."""

    def __init__(self, policy) -> None:
        super().__init__(policy)
        self.shrinks = 0

    def on_rate_limit(self) -> None:
        self.shrinks += 1
        super().on_rate_limit()


def fan_out(scheduler, client, items, workers):
    """Run ``items`` through ``scheduler.run`` under one batch window.

    Mirrors what :func:`repro.core.batch.run_batch` does around its
    pool: open the window for the fan-out, adopt each pool thread, and
    settle the books after every item.  Each item is a dict with
    ``messages``, ``call`` (the solo fallback), and optionally
    ``batch``/``priority``.
    """
    results: list = [None] * len(items)
    errors: list = [None] * len(items)

    def work(index: int) -> None:
        item = items[index]
        window = scheduler.window
        if window is not None:
            window.adopt()
        try:
            results[index] = scheduler.run(
                client,
                MODEL,
                item["messages"],
                item["call"],
                priority=item.get("priority", 0),
                batch=item.get("batch"),
            )
        except Exception as error:
            errors[index] = error
        finally:
            if window is not None:
                window.settle_thread()

    with scheduler.batch_window(len(items), workers) as window:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(work, range(len(items))))
    return results, errors, window


def batched_items(count: int, backend: GroupedBackend, max_batch_size: int = 16):
    batch = BatchRequest("wire", max_batch_size, backend)
    return [
        {
            "messages": [user_message(f"item {i}")],
            "call": fake_call(0.0),
            "batch": batch,
        }
        for i in range(count)
    ]


class TestPolicyKnobs:
    def test_batching_is_off_by_default(self):
        assert SchedulerPolicy().max_batch == 1

    def test_knobs_are_validated(self):
        with pytest.raises(ConfigError):
            SchedulerPolicy(max_batch=0)
        with pytest.raises(ConfigError):
            SchedulerPolicy(batch_window_s=0.0)

    def test_replace_carries_the_knobs(self):
        policy = SchedulerPolicy(max_batch=8, batch_window_s=2.5)
        clone = policy.replace(requests_per_minute=60)
        assert clone.max_batch == 8
        assert clone.batch_window_s == 2.5


class TestWindowGating:
    def test_disabled_policy_yields_no_window(self):
        scheduler = RequestScheduler(SchedulerPolicy())
        with scheduler.batch_window(8, 4) as window:
            assert window is None

    def test_trivial_fanout_yields_no_window(self):
        scheduler = RequestScheduler(SchedulerPolicy(max_batch=8))
        with scheduler.batch_window(1, 1) as window:
            assert window is None

    def test_only_one_window_at_a_time(self):
        scheduler = RequestScheduler(SchedulerPolicy(max_batch=8))
        with scheduler.batch_window(4, 2) as outer:
            assert outer is not None
            # A nested fan-out on the same scheduler schedules solo
            # instead of leaking its requests into the outer window.
            with scheduler.batch_window(4, 2) as inner:
                assert inner is None
            assert scheduler.window is outer
        with scheduler.batch_window(4, 2) as again:
            assert again is not None

    def test_foreign_threads_schedule_solo(self):
        scheduler = RequestScheduler(SchedulerPolicy(max_batch=8))
        client = quiet_client()
        backend = GroupedBackend()
        with scheduler.batch_window(4, 2):
            # This thread never adopted into the window, so its request
            # must use the solo call even though it carries a batch.
            result = scheduler.run(
                client,
                MODEL,
                [user_message("solo")],
                fake_call(0.0),
                batch=BatchRequest("wire", 16, backend),
            )
        assert result.text == "ok"
        assert backend.calls == []

    def test_second_arrival_of_one_item_goes_solo(self):
        """Retries never batch: an item's slot is consumed by its first
        arrival, and only ``settle_thread`` (a new work item) resets it."""
        scheduler = RequestScheduler(SchedulerPolicy(max_batch=4))
        backend = GroupedBackend()
        batch = BatchRequest("wire", 4, backend)
        messages = [user_message("x")]
        with scheduler.batch_window(4, 2) as window:
            window.adopt()
            assert window.arrive(batch, messages, 0, 0.0) is not None
            assert window.arrive(batch, messages, 0, 0.0) is None
            window.settle_thread()
            assert window.arrive(batch, messages, 0, 0.0) is not None

    def test_virtual_time_bound_splits_groups(self):
        scheduler = RequestScheduler(SchedulerPolicy(max_batch=8, batch_window_s=5.0))
        backend = GroupedBackend()
        batch = BatchRequest("wire", 8, backend)
        messages = [user_message("x")]
        with scheduler.batch_window(8, 4) as window:
            window.adopt()
            first = window.arrive(batch, messages, 0, 0.0)
            window.settle_thread()
            late = window.arrive(batch, messages, 0, 10.0)
            # 10.0 - 0.0 > batch_window_s: the stale group went out
            # sealed and the late arrival opened a fresh one.
            assert late.group is not first.group
            assert first.group.sealed


class TestGrouping:
    def policy(self, **overrides) -> SchedulerPolicy:
        defaults = {"max_batch": 4, "batch_window_s": 60.0}
        defaults.update(overrides)
        return SchedulerPolicy(**defaults)

    def test_fanout_coalesces_into_capacity_groups(self):
        scheduler = RequestScheduler(self.policy())
        client = quiet_client()
        backend = GroupedBackend()
        results, errors, window = fan_out(
            scheduler, client, batched_items(8, backend), workers=8
        )
        assert errors == [None] * 8
        # Groups seal at max_batch capacity: two wire calls of four.
        assert sorted(backend.calls) == [4, 4]
        assert window.batches == 2
        assert window.batched == 8
        # Each member got the reply to *its own* messages, in order.
        assert [result.text for result in results] == [
            f"item {i}" for i in range(8)
        ]

    def test_provider_cap_bounds_group_size(self):
        scheduler = RequestScheduler(self.policy(max_batch=16))
        client = quiet_client()
        backend = GroupedBackend()
        results, errors, _ = fan_out(
            scheduler, client, batched_items(6, backend, max_batch_size=2), workers=6
        )
        assert errors == [None] * 6
        assert all(size <= 2 for size in backend.calls)
        assert sum(backend.calls) == 6

    def test_incompatible_group_keys_never_share_a_call(self):
        scheduler = RequestScheduler(self.policy(max_batch=8))
        client = quiet_client()
        left, right = GroupedBackend(), GroupedBackend()
        items = []
        for i in range(4):
            items.append(
                {
                    "messages": [user_message(f"left {i}")],
                    "call": fake_call(0.0),
                    "batch": BatchRequest("left", 16, left),
                }
            )
            items.append(
                {
                    "messages": [user_message(f"right {i}")],
                    "call": fake_call(0.0),
                    "batch": BatchRequest("right", 16, right),
                }
            )
        results, errors, _ = fan_out(scheduler, client, items, workers=8)
        assert errors == [None] * 8
        # Starvation seals both groups once all eight workers arrive;
        # neither backend ever saw the other key's messages.
        assert left.calls == [4]
        assert right.calls == [4]
        for index, result in enumerate(results):
            assert result.text == items[index]["messages"][0].content

    def test_group_admission_pays_the_request_bucket_once(self):
        grouped = RequestScheduler(
            self.policy(max_batch=8, requests_per_minute=60, burst=1)
        )
        client = quiet_client()
        backend = GroupedBackend()
        _, errors, _ = fan_out(grouped, client, batched_items(8, backend), workers=8)
        assert errors == [None] * 8
        assert backend.calls == [8]
        # One wire call, one reservation: the burst allowance covers it
        # and nobody throttles -- where eight solo requests pay 1/s.
        assert client.stats.throttled == 0
        assert client.clock.elapsed_s == pytest.approx(0.0)
        solo_client = quiet_client()
        solo = RequestScheduler(SchedulerPolicy(requests_per_minute=60, burst=1))
        for _ in range(8):
            solo.run(solo_client, MODEL, [user_message("x")], fake_call(0.0))
        assert solo_client.stats.throttled == 6

    def test_deadline_bound_requests_go_solo(self):
        scheduler = RequestScheduler(self.policy(deadline_s=60.0))
        client = quiet_client()
        backend = GroupedBackend()
        results, errors, window = fan_out(
            scheduler, client, batched_items(4, backend), workers=4
        )
        assert errors == [None] * 4
        # Grouped admission cannot fail one member fast, so everything
        # scheduled solo: no wire groups, yet the window never stalled.
        assert backend.calls == []
        assert window.batches == 0
        assert [result.text for result in results] == ["ok"] * 4

    def test_failed_items_settle_their_slot(self):
        """An item dying before the scheduler still lets groups seal."""
        scheduler = RequestScheduler(self.policy(max_batch=8))
        client = quiet_client()
        backend = GroupedBackend()
        items = batched_items(8, backend)

        results: list = [None] * len(items)
        errors: list = [None] * len(items)

        def work(index: int) -> None:
            window = scheduler.window
            window.adopt()
            try:
                if index == 3:
                    raise ValueError("died before scheduling")
                item = items[index]
                results[index] = scheduler.run(
                    client, MODEL, item["messages"], item["call"], batch=item["batch"]
                )
            except Exception as error:
                errors[index] = error
            finally:
                window.settle_thread()

        with scheduler.batch_window(len(items), 8):
            with ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(work, range(len(items))))
        assert isinstance(errors[3], ValueError)
        assert sum(backend.calls) == 7
        assert [r.text for i, r in enumerate(results) if i != 3] == [
            f"item {i}" for i in range(8) if i != 3
        ]


class TestFailureSplitting:
    def policy(self, **overrides) -> SchedulerPolicy:
        defaults = {"max_batch": 8, "batch_window_s": 60.0}
        defaults.update(overrides)
        return SchedulerPolicy(**defaults)

    def counting_aimd(self, scheduler) -> CountingAIMD:
        state = CountingAIMD(scheduler.policy)
        scheduler._adaptive[MODEL] = state
        return state

    def test_whole_batch_refusal_requeues_every_member_solo(self):
        scheduler = RequestScheduler(self.policy())
        aimd = self.counting_aimd(scheduler)
        client = quiet_client()
        refused = {"count": 0}

        def backend(message_lists):
            refused["count"] += 1
            raise RateLimitError("batch refused", retry_after_s=2.0)

        items = [
            {
                "messages": [user_message(f"item {i}")],
                "call": fake_call(0.0),
                "batch": BatchRequest("wire", 16, backend),
            }
            for i in range(8)
        ]
        results, errors, _ = fan_out(scheduler, client, items, workers=8)
        assert errors == [None] * 8
        assert refused["count"] == 1
        # Every member was refused and requeued (retrying solo)...
        assert client.stats.rate_limited == 8
        assert client.stats.requeued == 8
        assert [result.text for result in results] == ["ok"] * 8
        # ...but the AIMD window shrank exactly once for the one wire
        # call, not once per member.
        assert aimd.shrinks == 1

    def test_per_item_refusal_stays_on_its_item(self):
        scheduler = RequestScheduler(self.policy())
        aimd = self.counting_aimd(scheduler)
        client = quiet_client()

        def respond(messages):
            if messages[-1].content == "item 2":
                return RateLimitError("just you", retry_after_s=1.0)
            return completion(messages[-1].content, 0.0)

        backend = GroupedBackend(respond)
        items = batched_items(4, backend)
        results, errors, _ = fan_out(scheduler, client, items, workers=4)
        assert errors == [None] * 4
        assert backend.calls == [4]
        # Only the refused member requeued -- and its retry went solo,
        # shrinking the window for a genuinely per-item refusal.
        assert client.stats.rate_limited == 1
        assert client.stats.requeued == 1
        assert aimd.shrinks == 1
        assert [result.text for result in results] == [
            "item 0",
            "item 1",
            "ok",
            "item 3",
        ]

    def test_per_item_error_is_isolated_to_its_request(self):
        scheduler = RequestScheduler(self.policy())
        client = quiet_client()

        def respond(messages):
            if messages[-1].content == "item 1":
                return ValueError("malformed item")
            return completion(messages[-1].content, 0.0)

        backend = GroupedBackend(respond)
        results, errors, _ = fan_out(
            scheduler, client, batched_items(4, backend), workers=4
        )
        assert backend.calls == [4]
        assert isinstance(errors[1], ValueError)
        assert [e for i, e in enumerate(errors) if i != 1] == [None, None, None]
        assert [r.text for i, r in enumerate(results) if i != 1] == [
            "item 0",
            "item 2",
            "item 3",
        ]

    def test_miscounted_results_fail_the_group_loudly(self):
        scheduler = RequestScheduler(self.policy())
        client = quiet_client()

        def backend(message_lists):
            return [completion("only one", 0.0)]

        items = [
            {
                "messages": [user_message(f"item {i}")],
                "call": fake_call(0.0),
                "batch": BatchRequest("wire", 16, backend),
            }
            for i in range(3)
        ]
        _, errors, _ = fan_out(scheduler, client, items, workers=3)
        assert all(isinstance(error, RuntimeError) for error in errors)
        assert "3 requests" in str(errors[0])


def batching_session(tmp_path=None, **overrides) -> Session:
    options = {
        "model": MODEL,
        "scheduler": "adaptive",
        "scheduler_policy": SchedulerPolicy(
            requests_per_minute=120, max_batch=16, batch_window_s=60.0
        ),
        "temperature": 0.0,
        "cache": "off",
        "cache_dir": None,
    }
    if tmp_path is not None:
        options.update(cache="read-write", cache_dir=str(tmp_path))
    options.update(overrides)
    return Session(**options)


WORDS = [f"token{i:02d}" for i in range(24)]


def echo_map(session, words=WORDS, **map_options):
    fn = session.define(t.str, "Echo the word {{word}} back, alone.")
    return fn.map([{"word": word} for word in words], **map_options)


class TestEndToEnd:
    def test_map_batches_fewer_wire_calls_same_results(self):
        batched_session_ = batching_session()
        solo_session = batching_session(
            scheduler_policy=SchedulerPolicy(requests_per_minute=120)
        )
        batched = echo_map(batched_session_, max_concurrency=8)
        solo = echo_map(solo_session, max_concurrency=8)
        assert batched.ok and solo.ok
        # Zero reordering, byte-identical answers.
        assert [o.value for o in batched.outcomes] == [o.value for o in solo.outcomes]
        batched_wire = batched_session_.client.provider_for(MODEL).wire_calls
        solo_wire = solo_session.client.provider_for(MODEL).wire_calls
        assert batched_wire * 2 <= solo_wire
        assert batched_session_.stats.batch_calls >= 1
        assert batched_session_.stats.batched > batched_session_.stats.batch_calls
        assert solo_session.stats.batch_calls == 0
        # Fewer admission waits: the batch's virtual wall-clock beats solo.
        assert batched.wall_s < solo.wall_s

    def test_wire_round_trip_identity(self):
        session = batching_session()
        result = echo_map(session, max_concurrency=8)
        assert result.ok
        stats = session.stats
        wire = session.client.provider_for(MODEL).wire_calls
        # calls counts requests; each group of n collapses n of them
        # into one wire round-trip.
        assert stats.calls - stats.batched + stats.batch_calls == wire

    def test_prometheus_and_stats_tell_the_same_story(self):
        session = batching_session(telemetry="on")
        result = echo_map(session, max_concurrency=8)
        assert result.ok
        stats = session.stats
        assert stats.batch_calls >= 1
        text = session.telemetry.prometheus_text()
        assert (
            f'askit_batch_calls_total{{model="{MODEL}"}} {stats.batch_calls}' in text
        )
        assert f'askit_batched_requests_total{{model="{MODEL}"}} {stats.batched}' in text
        per_model = stats.for_model(MODEL)
        assert per_model.batch_calls == stats.batch_calls
        assert per_model.batched == stats.batched

    def test_telemetry_toggle_never_moves_the_clock(self):
        # Eight items over eight workers form exactly one group of
        # eight whatever the thread interleaving (no seal condition can
        # fire earlier), so the virtual timeline is fully deterministic
        # and the clocks must match to the bit.
        dark_session = batching_session()
        dark = echo_map(dark_session, words=WORDS[:8], max_concurrency=8)
        lit_session = batching_session(telemetry="on")
        lit = echo_map(lit_session, words=WORDS[:8], max_concurrency=8)
        assert [o.value for o in dark.outcomes] == [o.value for o in lit.outcomes]
        # Observation is free on the virtual timeline: identical wall
        # clocks and identical grouping with telemetry on or off.
        assert lit.wall_s == dark.wall_s
        assert lit_session.stats.batch_calls == dark_session.stats.batch_calls
        assert lit_session.stats.batch_calls >= 1

    def test_mixed_hits_and_misses_never_stall_the_window(self, tmp_path):
        warm = batching_session(tmp_path)
        first = echo_map(warm, words=WORDS[:12], max_concurrency=8)
        assert first.ok
        wire_after_warm = warm.client.provider_for(MODEL).wire_calls
        # Half the second fan-out replays from the cache (resigning its
        # window slot), half misses and still groups -- the window's
        # starvation rule keeps the groups sealing either way.
        second = echo_map(warm, words=WORDS, max_concurrency=8)
        assert second.ok
        assert [o.value for o in second.outcomes] == [
            o.value for o in first.outcomes
        ] + [o.value for o in second.outcomes[12:]]
        assert warm.stats.cache_hits >= 12
        assert warm.client.provider_for(MODEL).wire_calls > wire_after_warm

    def test_coalesced_followers_never_stall_the_window(self, tmp_path):
        session = batching_session(tmp_path)
        # Duplicate bindings with dedup off: concurrent identical
        # requests coalesce on the response cache's in-flight table, so
        # followers block on a leader that may itself be parked in a
        # forming group -- the follower_wait accounting must keep the
        # window sealing.
        words = [WORDS[i % 8] for i in range(16)]
        result = echo_map(session, words=words, max_concurrency=16, dedup=False)
        assert result.ok
        values = [o.value for o in result.outcomes]
        assert values[:8] == values[8:]
        assert session.stats.coalesced + session.stats.cache_hits >= 8
