"""The sharded segment store under stress: properties, crashes, processes.

The contract under test is the one ``docs/caching.md`` sells for the
~1M-entry regime: CRC-framed append-only segments whose reopen drops
*only* a torn tail, compaction that can crash at any fault point and
leave a replayable log, TinyLFU-guided eviction bounded by
``max_entries``, and a directory that two processes can share without
corrupting each other.  Everything here is deterministic -- seeded RNGs
and thread-disjoint key ranges, never sleeps.
"""

import os
import random
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.cache_store import FrequencySketch, SegmentCrashError, SegmentStore
from repro.core.response_cache import ResponseCache
from repro.llm.base import CompletionResult, Usage, user_message


def open_store(directory, **options):
    options.setdefault("shards", 2)
    return SegmentStore(directory, **options)


class ArmedFault:
    """A fault hook that raises at one named point, once, when armed."""

    def __init__(self, point: str, after: int = 0) -> None:
        self.point = point
        #: How many matching fault-point visits to let pass first.
        self.after = after
        self.armed = False
        self.fired = False

    def __call__(self, point: str) -> None:
        if not self.armed or point != self.point:
            return
        if self.after > 0:
            self.after -= 1
            return
        self.armed = False
        self.fired = True
        raise SegmentCrashError(point)


class TestRoundTrip:
    def test_put_get_delete_roundtrip(self, tmp_path):
        with open_store(tmp_path) as store:
            store.put("alpha", {"v": 1})
            store.put("beta", {"nested": {"x": [1, 2, 3]}, "text": "café"})
            assert store.get("alpha") == {"v": 1}
            assert store.get("beta")["text"] == "café"
            assert "alpha" in store
            assert store.delete("alpha") is True
            assert store.delete("alpha") is False
            assert store.get("alpha") is None
            assert len(store) == 1

    def test_pending_writes_read_back_before_flush(self, tmp_path):
        with open_store(tmp_path) as store:
            store.put("k", {"v": "pending"})
            # Readable immediately from the write-behind queue's pending
            # entry -- no flush required.
            assert store.get("k") == {"v": "pending"}

    def test_reopen_replays_the_log(self, tmp_path):
        with open_store(tmp_path) as store:
            for i in range(32):
                store.put(f"k{i}", {"v": i})
            store.delete("k7")
            store.put("k3", {"v": "updated"})
            store.flush()
        with open_store(tmp_path) as store:
            assert len(store) == 31
            assert store.get("k7") is None
            assert store.get("k3") == {"v": "updated"}
            assert store.get("k31") == {"v": 31}

    def test_property_random_ops_match_dict_model(self, tmp_path):
        """Seeded random put/delete/get stream == a plain dict, twice.

        The model comparison runs against the live store (write-behind
        pending reads included) and again after a reopen (log replay),
        with forced compactions sprinkled in so the stream crosses
        segment rewrites.
        """
        rng = random.Random(0xA5C3)
        keys = [f"key-{i:02d}" for i in range(60)]
        model: dict[str, dict] = {}
        store = open_store(tmp_path)
        try:
            for step in range(600):
                key = rng.choice(keys)
                action = rng.random()
                if action < 0.55:
                    value = {"step": step, "payload": "x" * rng.randrange(0, 64)}
                    store.put(key, value)
                    model[key] = value
                elif action < 0.75:
                    assert store.delete(key) == (key in model)
                    model.pop(key, None)
                else:
                    expected = model.get(key)
                    assert store.get(key) == expected
                if step % 149 == 0:
                    store.flush()
                if step % 211 == 0:
                    store.compact()
            store.flush()
            assert sorted(store.keys()) == sorted(model)
            for key, value in model.items():
                assert store.get(key) == value
        finally:
            store.close()
        with open_store(tmp_path) as reopened:
            assert sorted(reopened.keys()) == sorted(model)
            for key, value in model.items():
                assert reopened.get(key) == value

    def test_property_threaded_interleavings_stay_consistent(self, tmp_path):
        """Concurrent writers with disjoint key ranges never corrupt.

        Each thread runs its own seeded op stream against its own slice
        of the keyspace and keeps a local model; whatever the OS
        interleaving, the final store must equal the union of the
        models -- live and after a reopen.
        """
        store = open_store(tmp_path, shards=4)
        models: list[dict[str, dict]] = [{} for _ in range(4)]
        errors: list[BaseException] = []

        def worker(lane: int) -> None:
            rng = random.Random(1000 + lane)
            model = models[lane]
            try:
                for step in range(200):
                    key = f"t{lane}-k{rng.randrange(25)}"
                    if rng.random() < 0.7:
                        value = {"lane": lane, "step": step}
                        store.put(key, value)
                        model[key] = value
                    else:
                        store.delete(key)
                        model.pop(key, None)
                    if rng.random() < 0.05:
                        store.get(key)
            except BaseException as failure:  # pragma: no cover - surfaced below
                errors.append(failure)

        threads = [threading.Thread(target=worker, args=(lane,)) for lane in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        store.flush()
        union: dict[str, dict] = {}
        for model in models:
            union.update(model)
        assert sorted(store.keys()) == sorted(union)
        for key, value in union.items():
            assert store.get(key) == value
        store.close()
        with open_store(tmp_path, shards=4) as reopened:
            assert sorted(reopened.keys()) == sorted(union)
            for key, value in union.items():
                assert reopened.get(key) == value


class TestCrashInjection:
    def test_torn_append_drops_only_the_tail(self, tmp_path):
        hook = ArmedFault("append.partial")
        store = open_store(tmp_path, shards=1, fault_hook=hook)
        for i in range(8):
            store.put(f"k{i}", {"v": i})
        store.flush()
        hook.armed = True
        store.put("torn", {"v": "never lands"})
        with pytest.raises(SegmentCrashError):
            store.flush()
        assert hook.fired
        store.close()

        with open_store(tmp_path, shards=1) as reopened:
            # The interrupted frame is detected (length/CRC) and dropped;
            # every record before it survives untouched.
            assert reopened.get("torn") is None
            assert sorted(reopened.keys()) == sorted(f"k{i}" for i in range(8))
            for i in range(8):
                assert reopened.get(f"k{i}") == {"v": i}
            assert reopened.stats["torn_records"] >= 1

    def test_writes_after_reopen_follow_a_torn_tail(self, tmp_path):
        hook = ArmedFault("append.partial")
        store = open_store(tmp_path, shards=1, fault_hook=hook)
        store.put("keep", {"v": 0}, sync=True)
        hook.armed = True
        store.put("torn", {"v": 1})
        with pytest.raises(SegmentCrashError):
            store.flush()
        store.close()

        with open_store(tmp_path, shards=1) as reopened:
            reopened.put("after-crash", {"v": 2}, sync=True)
            assert reopened.get("keep") == {"v": 0}
            assert reopened.get("after-crash") == {"v": 2}
        with open_store(tmp_path, shards=1) as third:
            # The new record went to a fresh segment, so the torn tail
            # stays quarantined and later writes replay fine.
            assert third.get("keep") == {"v": 0}
            assert third.get("after-crash") == {"v": 2}
            assert third.get("torn") is None

    def fill_then_kill_compaction(self, tmp_path, point: str) -> dict[str, dict]:
        """Build dead weight, crash compaction at ``point``; return live."""
        hook = ArmedFault(point)
        # Tiny segments: writes rotate through several sealed segments,
        # which is what (forced) compaction rewrites.
        store = open_store(
            tmp_path, shards=1, segment_max_bytes=256, fault_hook=hook
        )
        live: dict[str, dict] = {}
        for i in range(40):
            store.put(f"k{i}", {"v": i})
            if i % 2 == 0:
                store.delete(f"k{i}")
            else:
                live[f"k{i}"] = {"v": i}
        store.flush()
        hook.armed = True
        with pytest.raises(SegmentCrashError):
            store.compact()
        assert hook.fired
        store.close()
        return live

    def test_crash_before_compaction_rename_loses_nothing(self, tmp_path):
        live = self.fill_then_kill_compaction(tmp_path, "compact.wrote-tmp")
        with open_store(tmp_path, shards=1, segment_max_bytes=256) as reopened:
            # The half-written replacement is a ``.tmp`` file the scan
            # ignores; the source segments are still the truth.
            assert sorted(reopened.keys()) == sorted(live)
            for key, value in live.items():
                assert reopened.get(key) == value

    def test_crash_after_compaction_rename_loses_nothing(self, tmp_path):
        live = self.fill_then_kill_compaction(tmp_path, "compact.renamed")
        with open_store(tmp_path, shards=1, segment_max_bytes=256) as reopened:
            # Crashed between the rename and unlinking the sources: the
            # same records exist twice, and replay order (sequence, pid)
            # deduplicates them to the compacted copies.
            assert sorted(reopened.keys()) == sorted(live)
            for key, value in live.items():
                assert reopened.get(key) == value

    def test_compaction_succeeds_after_a_crashed_attempt(self, tmp_path):
        self.fill_then_kill_compaction(tmp_path, "compact.wrote-tmp")
        with open_store(tmp_path, shards=1, segment_max_bytes=256) as reopened:
            before = len(reopened.segment_files())
            reopened.compact()
            assert reopened.stats["compactions"] >= 1
            assert len(reopened.segment_files()) <= before


class TestEviction:
    def test_max_entries_bounds_the_store(self, tmp_path):
        with open_store(tmp_path, shards=1, max_entries=32) as store:
            for i in range(128):
                store.put(f"k{i}", {"v": i})
            assert len(store) <= 32
            assert store.stats["evictions"] >= 96

    def test_hot_keys_survive_cold_scans(self, tmp_path):
        with open_store(tmp_path, shards=1, max_entries=32) as store:
            hot = [f"hot{i}" for i in range(8)]
            for key in hot:
                store.put(key, {"hot": True})
            for _ in range(4):
                for key in hot:
                    assert store.get(key) is not None
            # A cold scan three times the store's capacity: one-touch
            # keys churn through probation while the protected hot set
            # stays resident.
            for i in range(96):
                store.put(f"cold{i}", {"v": i})
            for key in hot:
                assert store.get(key) == {"hot": True}

    def test_reopen_trims_back_to_max_entries(self, tmp_path):
        with open_store(tmp_path, shards=1) as store:
            for i in range(64):
                store.put(f"k{i}", {"v": i})
            store.flush()
        with open_store(tmp_path, shards=1, max_entries=16) as bounded:
            assert len(bounded) <= 16

    def test_frequency_sketch_counts_and_ages(self):
        sketch = FrequencySketch(width=64, sample_factor=1)
        for _ in range(8):
            sketch.add("popular")
        assert sketch.estimate("popular") >= 8
        assert sketch.estimate("popular") > sketch.estimate("unseen")
        before = sketch.estimate("popular")
        for i in range(64):
            sketch.add(f"filler-{i}")
        # Aging halves counters instead of growing without bound.
        assert sketch.estimate("popular") < before


class TestCrossProcess:
    CHILD = """
import sys
from repro.core.cache_store import SegmentStore

directory = sys.argv[1]
with SegmentStore(directory, shards=2) as store:
    for i in range(50):
        expected = {"v": i, "who": "parent"}
        if store.get(f"parent-{i}") != expected:
            raise SystemExit(f"missing or wrong parent-{i}")
    for i in range(50):
        store.put(f"child-{i}", {"v": i, "who": "child"})
    store.flush()
print("child-ok")
"""

    def run_child(self, directory) -> None:
        src = Path(__file__).resolve().parents[2] / "src"
        result = subprocess.run(
            [sys.executable, "-c", self.CHILD, os.fspath(directory)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "999"},
            check=True,
        )
        assert result.stdout.strip() == "child-ok"

    def test_two_processes_share_one_directory(self, tmp_path):
        """A second process reads our records and we read its, torn-free.

        The child opens the same directory while the parent's store is
        still open, verifies every parent record, appends its own
        (per-pid segment files make the appends collision-free), and
        exits; ``refresh()`` then surfaces the child's records here.
        """
        with open_store(tmp_path) as store:
            for i in range(50):
                store.put(f"parent-{i}", {"v": i, "who": "parent"})
            store.flush()
            self.run_child(tmp_path)
            store.refresh()
            for i in range(50):
                assert store.get(f"child-{i}") == {"v": i, "who": "child"}
            for i in range(50):
                assert store.get(f"parent-{i}") == {"v": i, "who": "parent"}
            assert len(store) == 100
            assert store.stats["torn_records"] == 0

    def test_parent_writes_after_child_never_corrupt(self, tmp_path):
        with open_store(tmp_path) as store:
            for i in range(50):
                store.put(f"parent-{i}", {"v": i, "who": "parent"})
            store.flush()
            self.run_child(tmp_path)
            # Keep appending to our own per-pid segment after the child
            # wrote to its own: neither stream clobbers the other.
            for i in range(50, 80):
                store.put(f"parent-{i}", {"v": i, "who": "parent"})
            store.flush()
            store.refresh()
            assert len(store) == 130
        with open_store(tmp_path) as reopened:
            assert len(reopened) == 130
            assert reopened.stats["torn_records"] == 0
            assert reopened.get("child-49") == {"v": 49, "who": "child"}
            assert reopened.get("parent-79") == {"v": 79, "who": "parent"}


class TestOperationalSurface:
    def test_clear_removes_entries_and_segments(self, tmp_path):
        with open_store(tmp_path) as store:
            for i in range(16):
                store.put(f"k{i}", {"v": i})
            removed = store.clear()
            assert removed == 16
            assert len(store) == 0
            assert store.segment_files() == []

    def test_store_stats_shape(self, tmp_path):
        with open_store(tmp_path) as store:
            store.put("k", {"v": 1}, sync=True)
            stats = store.store_stats()
            assert stats["entries"] == 1
            assert stats["segments"] >= 1
            assert {"evictions", "compactions", "torn_records", "rebuild_s"} <= set(
                stats
            )

    def test_closed_store_refuses_writes(self, tmp_path):
        store = open_store(tmp_path)
        store.close()
        with pytest.raises(RuntimeError):
            store.put("k", {"v": 1})


class TestResponseCacheSegmentsBackend:
    """The cache-facing contract: stored completions replay byte-identical."""

    def test_completions_replay_byte_identical_across_reopens(self, tmp_path):
        texts = [f"answer {i}: café — {'x' * i}" for i in range(20)]
        warm = ResponseCache(tmp_path, backend="segments")
        keys = []
        for i, text in enumerate(texts):
            messages = [user_message(f"prompt {i}")]
            key = warm.key("sim-gpt-4", messages, 0.0)
            keys.append(key)
            warm.store(
                key,
                CompletionResult(text, Usage(100 + i, 7 + i), 1.5 + i, "sim-gpt-4"),
                messages,
                0.0,
            )
        assert warm.segment_store is not None
        warm.segment_store.flush()

        cold = ResponseCache(tmp_path, backend="segments")
        for i, key in enumerate(keys):
            replayed = cold.load(key)
            assert replayed is not None
            assert replayed.text == texts[i]
            assert replayed.usage.prompt_tokens == 100 + i
            assert replayed.usage.completion_tokens == 7 + i
            assert replayed.model == "sim-gpt-4"
            assert replayed.cached is True
        assert cold.segment_store.stats["torn_records"] == 0
        cold.segment_store.close()
        warm.segment_store.close()
