"""Unit tests for the persistent response cache and its wiring.

Covers key derivation, TTL expiry, LRU eviction, persistence and
corruption tolerance, read vs read-write modes, in-flight coalescing
(sync and async), and the Config/Session/ClientStats surface.
"""

import asyncio
import json
import threading

import pytest

import repro.types as t
from repro.core import CACHE_MODES, Config, ResponseCache, Session, config_override, response_key
from repro.core.response_cache import CACHE_FORMAT_VERSION
from repro.errors import ConfigError
from repro.llm import ChatClient, QUIET, NoisePolicy
from repro.llm.base import ChatMessage, CompletionResult, Usage, user_message


def completion(text="answer", model="sim-gpt-4", latency=2.5) -> CompletionResult:
    return CompletionResult(text, Usage(10, 20), latency, model)


def messages(content="hello") -> list[ChatMessage]:
    return [user_message(content)]


class FakeTime:
    def __init__(self, start=1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


class TestKeyDerivation:
    def test_key_is_stable_and_content_addressed(self):
        key = response_key("m", messages("q"), 1.0)
        assert key == response_key("m", messages("q"), 1.0)
        assert len(key) == 64 and all(c in "0123456789abcdef" for c in key)

    def test_key_covers_model_temperature_content_and_role(self):
        base = response_key("m", messages("q"), 1.0)
        assert response_key("other", messages("q"), 1.0) != base
        assert response_key("m", messages("q"), 0.5) != base
        assert response_key("m", messages("other"), 1.0) != base
        assert response_key("m", [ChatMessage("system", "q")], 1.0) != base

    def test_key_covers_extra_decoding_params(self):
        base = response_key("m", messages(), 1.0)
        assert response_key("m", messages(), 1.0, extra={"top_p": 0.9}) != base


class TestStoreAndLoad:
    def test_round_trip_replays_with_zero_latency(self, tmp_path):
        cache = ResponseCache(tmp_path)
        key = cache.key("sim-gpt-4", messages(), 1.0)
        cache.store(key, completion(latency=9.9), messages(), 1.0)

        replayed = cache.load(key)
        assert replayed is not None
        assert replayed.text == "answer"
        assert replayed.cached is True
        assert replayed.latency_s == 0.0
        assert (replayed.usage.prompt_tokens, replayed.usage.completion_tokens) == (10, 20)

    def test_entries_persist_across_instances(self, tmp_path):
        first = ResponseCache(tmp_path)
        key = first.key("m", messages(), 1.0)
        first.store(key, completion(), messages(), 1.0)

        second = ResponseCache(tmp_path)
        assert second.load(key) is not None
        assert len(second) == 1

    def test_memory_only_cache_works_without_directory(self):
        cache = ResponseCache(None)
        key = cache.key("m", messages(), 1.0)
        assert cache.load(key) is None
        cache.store(key, completion(), messages(), 1.0)
        assert cache.load(key) is not None

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        cache = ResponseCache(tmp_path)
        for index in range(5):
            key = cache.key("m", messages(str(index)), 1.0)
            cache.store(key, completion(), messages(str(index)), 1.0)
        assert not list(tmp_path.glob("*.tmp"))
        assert len(list(tmp_path.glob("*.json"))) == 5

    def test_corrupt_and_foreign_files_read_as_misses(self, tmp_path):
        cache = ResponseCache(tmp_path)
        key = cache.key("m", messages(), 1.0)
        cache.store(key, completion(), messages(), 1.0)
        path = tmp_path / f"{key}.json"

        path.write_text("not json", encoding="utf-8")
        assert ResponseCache(tmp_path).load(key) is None

        payload = json.loads(json.dumps({"version": CACHE_FORMAT_VERSION + 1}))
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert ResponseCache(tmp_path).load(key) is None

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResponseCache(tmp_path)
        keys = []
        for index in range(3):
            key = cache.key("m", messages(str(index)), 1.0)
            cache.store(key, completion(), messages(str(index)), 1.0)
            keys.append(key)
        assert cache.invalidate(keys[0]) is True
        assert cache.invalidate(keys[0]) is False
        assert cache.load(keys[0]) is None
        assert cache.clear() == 2
        assert len(cache) == 0


class TestExpiryAndEviction:
    def test_ttl_expires_entries(self, tmp_path):
        clock = FakeTime()
        cache = ResponseCache(tmp_path, ttl_s=60.0, time_source=clock)
        key = cache.key("m", messages(), 1.0)
        cache.store(key, completion(), messages(), 1.0)

        clock.now += 59.0
        assert cache.load(key) is not None
        clock.now += 2.0
        assert cache.load(key) is None
        # Expired entries are dropped from disk as well.
        assert not list(tmp_path.glob("*.json"))

    def test_expired_disk_entry_is_a_miss_for_a_fresh_instance(self, tmp_path):
        clock = FakeTime()
        writer = ResponseCache(tmp_path, ttl_s=10.0, time_source=clock)
        key = writer.key("m", messages(), 1.0)
        writer.store(key, completion(), messages(), 1.0)

        clock.now += 11.0
        reader = ResponseCache(tmp_path, ttl_s=10.0, time_source=clock)
        assert reader.load(key) is None

    def test_lru_eviction_bounds_entry_count(self, tmp_path):
        clock = FakeTime()
        cache = ResponseCache(tmp_path, max_entries=3, time_source=clock)
        keys = []
        for index in range(5):
            clock.now += 1.0
            key = cache.key("m", messages(str(index)), 1.0)
            cache.store(key, completion(), messages(str(index)), 1.0)
            keys.append(key)
        assert len(list(tmp_path.glob("*.json"))) == 3
        # The oldest entries went first.
        assert cache.load(keys[0]) is None
        assert cache.load(keys[1]) is None
        assert cache.load(keys[4]) is not None

    def test_hits_refresh_recency(self):
        clock = FakeTime()
        cache = ResponseCache(None, max_entries=2, time_source=clock)
        key_a = cache.key("m", messages("a"), 1.0)
        key_b = cache.key("m", messages("b"), 1.0)
        cache.store(key_a, completion(), messages("a"), 1.0)
        clock.now += 1.0
        cache.store(key_b, completion(), messages("b"), 1.0)
        clock.now += 1.0
        assert cache.load(key_a) is not None  # refresh a; b is now oldest
        clock.now += 1.0
        key_c = cache.key("m", messages("c"), 1.0)
        cache.store(key_c, completion(), messages("c"), 1.0)
        assert cache.load(key_a) is not None
        assert cache.load(key_b) is None


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_call(self):
        cache = ResponseCache(None)
        calls = []
        release = threading.Event()

        def slow_call():
            calls.append(1)
            release.wait(timeout=5.0)
            return completion()

        statuses = []
        results = []

        def request():
            status, result = cache.fetch("m", messages(), 1.0, slow_call)
            statuses.append(status)
            results.append(result)

        threads = [threading.Thread(target=request) for _ in range(5)]
        for thread in threads:
            thread.start()
        # Wait until the leader is inside the provider call, then release.
        for _ in range(100):
            if calls:
                break
            threading.Event().wait(0.01)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)

        assert len(calls) == 1
        assert sorted(statuses).count("miss") == 1
        assert all(result.text == "answer" for result in results)
        # Followers get zero-latency cached replays.
        followers = [r for r, s in zip(results, statuses) if s != "miss"]
        assert all(r.cached and r.latency_s == 0.0 for r in followers)

    def test_leader_failure_propagates_to_followers_and_releases_key(self):
        cache = ResponseCache(None)
        started = threading.Event()
        release = threading.Event()

        def failing_call():
            started.set()
            release.wait(timeout=5.0)
            raise RuntimeError("provider down")

        errors = []

        def request():
            try:
                cache.fetch("m", messages(), 1.0, failing_call)
            except RuntimeError as error:
                errors.append(error)

        leader = threading.Thread(target=request)
        leader.start()
        assert started.wait(timeout=5.0)
        follower = threading.Thread(target=request)
        follower.start()
        threading.Event().wait(0.05)
        release.set()
        leader.join(timeout=5.0)
        follower.join(timeout=5.0)
        # Depending on timing the follower either coalesced onto the
        # failure or retried as a fresh leader and failed itself.
        assert 1 <= len(errors) <= 2
        # The key is released: a later request calls the provider again.
        status, result = cache.fetch("m", messages(), 1.0, lambda: completion("ok"))
        assert status == "miss" and result.text == "ok"

    def test_async_coalescing(self):
        cache = ResponseCache(None)
        calls = []

        async def acall():
            calls.append(1)
            await asyncio.sleep(0.02)
            return completion()

        async def go():
            pairs = await asyncio.gather(
                *(cache.afetch("m", messages(), 1.0, acall) for _ in range(4))
            )
            return pairs

        pairs = asyncio.run(go())
        assert len(calls) == 1
        statuses = sorted(status for status, _ in pairs)
        assert statuses.count("miss") == 1
        assert all(result.text == "answer" for _, result in pairs)

    def test_read_mode_coalesces_but_does_not_persist(self, tmp_path):
        cache = ResponseCache(tmp_path, mode="read")
        status, _ = cache.fetch("m", messages(), 1.0, completion)
        assert status == "miss"
        assert not list(tmp_path.glob("*.json"))
        # And the next request misses again (nothing was stored).
        status, _ = cache.fetch("m", messages(), 1.0, completion)
        assert status == "miss"


class TestLegacyMigrationCorruption:
    """The segments backend upgrading a files-backend directory must
    survive damaged legacy ``*.json`` entries: skip and log, never raise."""

    def _seed_files_cache(self, tmp_path, count=2):
        files = ResponseCache(tmp_path, backend="files")
        keys = []
        for index in range(count):
            key = files.key("m", messages(str(index)), 1.0)
            files.store(key, completion(str(index)), messages(str(index)), 1.0)
            keys.append(key)
        return keys

    def test_truncated_legacy_entry_is_skipped_and_logged(self, tmp_path, caplog):
        good, bad = self._seed_files_cache(tmp_path)
        # Simulate a crash mid-write: the file exists but holds half a body.
        path = tmp_path / f"{bad}.json"
        path.write_text(path.read_text(encoding="utf-8")[:25], encoding="utf-8")

        migrating = ResponseCache(tmp_path, backend="segments")
        with caplog.at_level("WARNING", logger="repro.response_cache"):
            assert migrating.load(bad) is None
            entry = migrating.load(good)
        assert entry is not None and entry.text == "0"
        assert any("corrupt legacy cache entry" in r.message for r in caplog.records)

    def test_mangled_fields_are_skipped_and_logged(self, tmp_path, caplog):
        (good, bad) = self._seed_files_cache(tmp_path)
        path = tmp_path / f"{bad}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["prompt_tokens"] = "not-a-number"
        path.write_text(json.dumps(payload), encoding="utf-8")

        migrating = ResponseCache(tmp_path, backend="segments")
        with caplog.at_level("WARNING", logger="repro.response_cache"):
            assert migrating.load(bad) is None
        assert any("malformed legacy cache entry" in r.message for r in caplog.records)
        # The undamaged neighbour still migrates normally.
        assert migrating.load(good) is not None

    def test_entries_walk_survives_corruption(self, tmp_path, caplog):
        keys = self._seed_files_cache(tmp_path, count=3)
        (tmp_path / f"{keys[1]}.json").write_text("{ trunc", encoding="utf-8")

        fresh = ResponseCache(tmp_path, backend="segments")
        with caplog.at_level("WARNING", logger="repro.response_cache"):
            listed = fresh.entries()
        assert {entry.key for entry in listed} == {keys[0], keys[2]}
        assert any("corrupt legacy cache entry" in r.message for r in caplog.records)

    def test_missing_legacy_file_stays_a_silent_miss(self, tmp_path, caplog):
        cache = ResponseCache(tmp_path, backend="segments")
        with caplog.at_level("WARNING", logger="repro.response_cache"):
            assert cache.load("0" * 64) is None
        assert not caplog.records


class TestConfigSurface:
    def test_cache_mode_validation(self):
        assert CACHE_MODES == ("off", "read", "read-write")
        with pytest.raises(ConfigError):
            Config(cache="write-only")
        with pytest.raises(ConfigError):
            Config(cache_ttl=0)
        with pytest.raises(ConfigError):
            Config(cache_max_entries=0)
        with pytest.raises(ConfigError):
            ResponseCache(None, mode="off")

    def test_off_config_has_no_response_cache(self):
        assert Config().response_cache is None

    def test_response_cache_is_memoized_per_config(self, tmp_path):
        config = Config(cache="read-write", cache_dir=tmp_path)
        cache = config.response_cache
        assert cache is config.response_cache
        assert cache.directory == tmp_path / "responses"
        assert cache.ttl_s is None

    def test_config_override_surfaces_cache_settings(self, tmp_path):
        with config_override(
            cache="read", cache_dir=tmp_path, cache_ttl=30.0, cache_max_entries=7
        ) as config:
            cache = config.response_cache
            assert cache is not None
            assert cache.mode == "read"
            assert cache.ttl_s == 30.0
            assert cache.max_entries == 7

    def test_replace_carries_cache_settings(self):
        config = Config(cache="read-write", cache_ttl=5.0, cache_max_entries=9)
        copy = config.replace(model="sim-gpt-3.5-turbo-16k")
        assert copy.cache == "read-write"
        assert copy.cache_ttl == 5.0
        assert copy.cache_max_entries == 9


class TestSessionIntegration:
    def fresh(self, tmp_path, **overrides) -> Session:
        return Session(
            model="sim-gpt-4",
            cache_dir=tmp_path / "askit",
            cache="read-write",
            client=ChatClient(noise_policy=QUIET),
            **overrides,
        )

    def test_repeated_ask_hits_the_cache(self, tmp_path):
        session = self.fresh(tmp_path)
        first = session.ask(t.int, "Calculate the factorial of {{n}}.", n=5)
        elapsed_after_first = session.clock.elapsed_s
        second = session.ask(t.int, "Calculate the factorial of {{n}}.", n=5)
        assert first == second == 120
        assert session.stats.calls == 1
        assert session.stats.cache_hits == 1
        # The hit charged nothing to the virtual clock.
        assert session.clock.elapsed_s == elapsed_after_first

    def test_warm_session_replays_persisted_responses(self, tmp_path):
        cold = self.fresh(tmp_path)
        assert cold.ask(t.int, "Calculate the factorial of {{n}}.", n=6) == 720

        warm = self.fresh(tmp_path)
        assert warm.ask(t.int, "Calculate the factorial of {{n}}.", n=6) == 720
        assert warm.stats.calls == 0
        assert warm.stats.cache_hits == 1
        assert warm.clock.elapsed_s == 0.0

    def test_async_path_uses_the_cache(self, tmp_path):
        session = self.fresh(tmp_path)

        async def run():
            a = await session.ask_async(t.int, "Calculate the factorial of {{n}}.", n=4)
            b = await session.ask_async(t.int, "Calculate the factorial of {{n}}.", n=4)
            return a, b

        a, b = asyncio.run(run())
        assert a == b == 24
        assert session.stats.calls == 1
        assert session.stats.cache_hits == 1

    def test_session_response_cache_property_and_inspection(self, tmp_path):
        session = self.fresh(tmp_path)
        assert session.response_cache is not None
        session.ask(t.int, "Calculate the factorial of {{n}}.", n=3)
        entries = list(session.response_cache)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.model == "sim-gpt-4"
        assert entry.provider_latency_s > 0
        assert "factorial" in entry.prompt_preview

    def test_retry_chain_replays_deterministically(self, tmp_path):
        """A noisy call's whole retry transcript replays from the cache."""
        noise = NoisePolicy(direct_corruption_rate=0.9, buggy_code_rate=0.0, seed=99)
        cold = Session(
            model="sim-gpt-4",
            cache_dir=tmp_path / "askit",
            cache="read-write",
            max_retries=30,
            client=ChatClient(noise_policy=noise),
        )
        fn = cold.define(t.int, "Calculate the factorial of {{n}}.")
        value = fn(n=5)
        attempts = fn.last_result.attempts
        assert attempts >= 1
        # One cache entry per attempt (initial prompt + each refinement).
        assert len(cold.response_cache) == attempts

        warm = Session(
            model="sim-gpt-4",
            cache_dir=tmp_path / "askit",
            cache="read-write",
            max_retries=30,
            client=ChatClient(noise_policy=noise),
        )
        warm_fn = warm.define(t.int, "Calculate the factorial of {{n}}.")
        assert warm_fn(n=5) == value
        assert warm_fn.last_result.attempts == attempts
        assert warm.stats.calls == 0
        assert warm.stats.cache_hits == attempts

    def test_codegen_traffic_is_cached_too(self, tmp_path):
        cold = self.fresh(tmp_path)
        fn = cold.define(t.int, "Calculate the factorial of {{n}}.")
        compiled = fn.compile(use_cache=False)
        assert compiled(n=5) == 120
        codegen_calls = cold.stats.calls

        warm = self.fresh(tmp_path)
        warm_fn = warm.define(t.int, "Calculate the factorial of {{n}}.")
        warm_compiled = warm_fn.compile(use_cache=False)
        assert warm_compiled(n=5) == 120
        assert warm.stats.calls == 0
        assert warm.stats.cache_hits == codegen_calls
