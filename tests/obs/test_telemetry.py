"""The telemetry facade: policy knobs, config wiring, query surface.

Covers :func:`resolve_telemetry_mode` (mode strings, policies, the
``REPRO_TRACE_DIR`` upgrade), the ``Config``/``Session`` surfaces
(off by default, memoized once per config, attached to the client's
registry and clock), and the span-fed query methods.
"""

import pytest

import repro.types as t
from repro import Session
from repro.core import Config, Telemetry, TelemetryPolicy, TELEMETRY_MODES
from repro.errors import ConfigError
from repro.llm import ChatClient, QUIET
from repro.obs.telemetry import (
    PROMETHEUS_FILENAME,
    SPANS_FILENAME,
    TRACE_DIR_ENV,
    resolve_telemetry_mode,
)


def quiet_session(**overrides) -> Session:
    return Session(
        client=ChatClient(noise_policy=QUIET), cache_dir=None, **overrides
    )


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TelemetryPolicy(max_spans=0)
        with pytest.raises(ConfigError):
            TelemetryPolicy(sink_max_bytes=0)

    def test_from_env_reads_the_trace_dir(self, tmp_path):
        policy = TelemetryPolicy.from_env({TRACE_DIR_ENV: str(tmp_path)})
        assert policy.trace_dir == tmp_path
        assert TelemetryPolicy.from_env({}).trace_dir is None


class TestModeResolution:
    def test_mode_strings(self, monkeypatch):
        monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
        assert resolve_telemetry_mode("off") == ("off", None)
        mode, policy = resolve_telemetry_mode("on")
        assert mode == "on" and policy.trace_dir is None

    def test_policy_implies_on(self):
        policy = TelemetryPolicy()
        assert resolve_telemetry_mode(policy) == ("on", policy)

    def test_invalid_values_raise(self):
        with pytest.raises(ConfigError):
            resolve_telemetry_mode("loud")
        with pytest.raises(ConfigError):
            resolve_telemetry_mode(True)

    def test_trace_dir_env_upgrades_off_to_on(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        mode, policy = resolve_telemetry_mode("off")
        assert mode == "on"
        assert policy.trace_dir == tmp_path
        mode, policy = resolve_telemetry_mode("on")
        assert mode == "on" and policy.trace_dir == tmp_path

    def test_modes_tuple_is_the_config_contract(self):
        assert TELEMETRY_MODES == ("off", "on")


class TestConfigSurface:
    def test_telemetry_is_off_by_default(self, monkeypatch):
        monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
        config = Config(model="sim-gpt-4")
        assert config.telemetry_mode == "off"
        assert config.telemetry is None
        assert quiet_session(model="sim-gpt-4").telemetry is None

    def test_telemetry_is_memoized_per_config(self):
        session = quiet_session(model="sim-gpt-4", telemetry="on")
        held = session.telemetry
        assert held is not None
        assert session.telemetry is held

    def test_attach_adopts_the_clients_registry_and_clock(self):
        session = quiet_session(model="sim-gpt-4", telemetry="on")
        telemetry = session.telemetry
        assert telemetry.registry is session.stats.registry
        assert telemetry.tracer.virtual_now == session.clock.now
        assert session.client.telemetry is telemetry

    def test_replace_carries_the_telemetry_policy(self, tmp_path):
        policy = TelemetryPolicy(trace_dir=tmp_path)
        config = Config(model="sim-gpt-4", telemetry=policy)
        carried = config.replace(temperature=0.0)
        assert carried.telemetry_mode == "on"
        assert carried._telemetry_policy is policy

    def test_span_helper_is_a_no_op_when_off(self, monkeypatch):
        monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
        config = Config(model="sim-gpt-4")
        with config.span("askit.ask") as span:
            assert span is None


class TestQuerySurface:
    def test_asks_feed_traces_stage_metrics_and_percentiles(self):
        session = quiet_session(model="sim-gpt-4", telemetry="on")
        session.ask(t.int, "What is {{a}} times {{b}}?", a=3, b=4)
        telemetry = session.telemetry
        summary = telemetry.summary()
        assert summary["traces"] == 1
        assert summary["spans"] >= 4
        stages = summary["stages"]
        for stage in ("ask", "bind", "request", "transport", "parse"):
            assert stage in stages, f"missing stage {stage!r}"
            assert stages[stage]["count"] >= 1
        # The request stage carries the charged latency; percentiles and
        # maxima follow the virtual clock.
        assert stages["request"]["total_s"] == pytest.approx(
            session.clock.elapsed_s
        )
        assert telemetry.percentile("request", 50) > 0.0
        assert stages["request"]["max_s"] <= session.clock.elapsed_s

    def test_slowest_ranks_by_virtual_duration(self):
        session = quiet_session(model="sim-gpt-4", telemetry="on")
        session.ask(t.int, "What is {{a}} times {{b}}?", a=2, b=2)
        slowest = session.telemetry.slowest(3)
        assert len(slowest) == 3
        durations = [span.duration_s() for span in slowest]
        assert durations == sorted(durations, reverse=True)
        only_requests = session.telemetry.slowest(5, stage="request")
        assert all(span.name == "askit.request" for span in only_requests)

    def test_reset_drops_spans_but_not_client_counters(self):
        session = quiet_session(model="sim-gpt-4", telemetry="on")
        session.ask(t.int, "What is {{a}} times {{b}}?", a=2, b=3)
        telemetry = session.telemetry
        assert telemetry.spans()
        telemetry.reset()
        assert telemetry.spans() == []
        assert session.stats.calls == 1


class TestExportsThroughTelemetry:
    def test_trace_dir_policy_sinks_spans_and_dump_writes_prometheus(
        self, tmp_path
    ):
        session = quiet_session(
            model="sim-gpt-4", telemetry=TelemetryPolicy(trace_dir=tmp_path)
        )
        session.ask(t.int, "What is {{a}} times {{b}}?", a=5, b=6)
        spans_file = tmp_path / SPANS_FILENAME
        assert spans_file.exists()
        from repro.obs import read_spans

        loaded = read_spans(spans_file)
        assert {span.span_id for span in loaded} == {
            span.span_id for span in session.telemetry.spans()
        }
        target = session.telemetry.dump()
        assert target == tmp_path / PROMETHEUS_FILENAME
        assert "askit_provider_calls_total" in target.read_text(encoding="utf-8")

    def test_dump_without_a_directory_raises(self):
        session = quiet_session(model="sim-gpt-4", telemetry="on")
        with pytest.raises(ConfigError):
            session.telemetry.dump()

    def test_prometheus_text_agrees_with_client_stats(self):
        session = quiet_session(model="sim-gpt-4", telemetry="on")
        session.ask(t.int, "What is {{a}} times {{b}}?", a=7, b=8)
        text = session.telemetry.prometheus_text()
        assert (
            f'askit_provider_calls_total{{model="sim-gpt-4"}} '
            f"{session.stats.calls}" in text
        )
        assert 'askit_spans_total{stage="request",status="ok"} 1' in text

    def test_standalone_telemetry_keeps_its_own_registry(self):
        telemetry = Telemetry()
        with telemetry.tracer.span("askit.custom"):
            pass
        assert telemetry.registry.counter("askit_spans_total").total() == 1.0
