"""Unit tests for the tracer: span trees, ambient context, clocks.

The contracts the instrumented runtime leans on: nesting follows the
code path, ``root=True`` starts a fresh trace, exceptions mark spans
errored without swallowing anything, worker threads never chain onto
another thread's trace by accident, and spans round-trip losslessly
through their dict form (the JSONL exporter's row).
"""

import threading

import pytest

from repro.obs import Span, Tracer, add_event, annotate, current_span


class FakeClock:
    """A manually advanced stand-in for the session's virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSpanTree:
    def test_nested_spans_share_a_trace_and_link_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_root_spans_start_fresh_traces(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("island", root=True) as island:
                assert island.trace_id != outer.trace_id
                assert island.parent_id is None
            # The ambient span is restored after the root span exits.
            assert current_span() is outer

    def test_sibling_spans_share_the_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == parent.span_id

    def test_exceptions_mark_error_status_and_propagate(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing") as span:
                raise ValueError("boom")
        assert span.status == "error"
        assert span.error == "ValueError: boom"
        assert span.finished
        # The errored span is still retained and queryable.
        assert tracer.spans(span.trace_id) == [span]

    def test_threads_do_not_inherit_the_spawning_threads_span(self):
        tracer = Tracer()
        seen = []

        def worker():
            # contextvars do not flow into manually created threads, so
            # a pool worker starts ambient-free and its spans are roots.
            seen.append(current_span())
            with tracer.span("worker") as span:
                seen.append(span.parent_id)

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None, None]


class TestAmbientHelpers:
    def test_annotate_and_add_event_act_on_the_ambient_span(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            annotate(items=3, mode="batch")
            add_event("progress", done=1)
        assert span.attributes["items"] == 3
        assert span.attributes["mode"] == "batch"
        assert span.events[0]["name"] == "progress"
        assert span.events[0]["done"] == 1

    def test_helpers_are_no_ops_without_an_ambient_span(self):
        assert current_span() is None
        annotate(ignored=True)  # must not raise
        add_event("ignored")


class TestClocks:
    def test_virtual_durations_come_from_the_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(virtual_now=clock)
        with tracer.span("timed") as span:
            clock.advance(2.5)
            span.event("mark")
        assert span.duration_s() == pytest.approx(2.5)
        assert span.events[0]["virtual"] == pytest.approx(2.5)
        assert span.wall_duration_s() >= 0.0

    def test_clockless_tracer_reports_zero_durations(self):
        tracer = Tracer()
        with tracer.span("untimed") as span:
            pass
        assert span.duration_s() == 0.0

    def test_open_spans_report_zero_duration(self):
        clock = FakeClock()
        tracer = Tracer(virtual_now=clock)
        with tracer.span("open") as span:
            clock.advance(1.0)
            assert not span.finished
            assert span.duration_s() == 0.0


class TestRetention:
    def test_capacity_bounds_retained_spans(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        names = [span.name for span in tracer.spans()]
        assert names == ["s2", "s3", "s4"]

    def test_traces_group_by_trace_id(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("a.child"):
                pass
        with tracer.span("b"):
            pass
        grouped = tracer.traces()
        assert len(grouped) == 2
        assert sorted(len(spans) for spans in grouped.values()) == [1, 2]

    def test_on_end_hooks_fire_for_every_finished_span(self):
        tracer = Tracer()
        finished = []
        tracer.on_end(finished.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in finished] == ["inner", "outer"]

    def test_reset_drops_spans_but_keeps_hooks(self):
        tracer = Tracer()
        finished = []
        tracer.on_end(finished.append)
        with tracer.span("before"):
            pass
        tracer.reset()
        assert tracer.spans() == []
        with tracer.span("after"):
            pass
        assert [span.name for span in finished] == ["before", "after"]


class TestSerialization:
    def test_to_dict_from_dict_round_trip(self):
        clock = FakeClock()
        tracer = Tracer(virtual_now=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("req", attributes={"model": "m"}) as span:
                clock.advance(1.5)
                span.event("retry", attempt=2)
                raise RuntimeError("bad")
        row = span.to_dict()
        rebuilt = Span.from_dict(row)
        assert rebuilt.trace_id == span.trace_id
        assert rebuilt.span_id == span.span_id
        assert rebuilt.parent_id is None
        assert rebuilt.name == "req"
        assert rebuilt.status == "error"
        assert rebuilt.error == "RuntimeError: bad"
        assert rebuilt.attributes == {"model": "m"}
        assert rebuilt.events[0]["attempt"] == 2
        assert rebuilt.duration_s() == pytest.approx(1.5)
        assert rebuilt.finished
