"""Unit tests for the exporters: JSONL span sink and Prometheus dump.

The sink's contracts: one span per line, concurrent writers never
shear a line, rotation caps disk use, and :func:`read_spans`
round-trips the file back into spans.  The Prometheus dump must land
atomically (no ``.tmp`` debris).
"""

import json
import threading

import pytest

from repro.obs import (
    JsonLinesSpanSink,
    MetricsRegistry,
    Tracer,
    read_spans,
    write_prometheus,
)


def finish_span(tracer: Tracer, name: str, **attributes):
    with tracer.span(name, attributes or None) as span:
        pass
    return span


class TestJsonLinesSink:
    def test_sink_appends_one_line_per_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer()
        tracer.on_end(JsonLinesSpanSink(path))
        finish_span(tracer, "a", model="m")
        finish_span(tracer, "b")
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "a"
        assert json.loads(lines[0])["attributes"] == {"model": "m"}

    def test_read_spans_round_trips(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer()
        tracer.on_end(JsonLinesSpanSink(path))
        written = [finish_span(tracer, f"s{i}", index=i) for i in range(3)]
        loaded = read_spans(path)
        assert [span.span_id for span in loaded] == [
            span.span_id for span in written
        ]
        assert [span.attributes["index"] for span in loaded] == [0, 1, 2]

    def test_sink_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "spans.jsonl"
        tracer = Tracer()
        tracer.on_end(JsonLinesSpanSink(path))
        finish_span(tracer, "row")
        assert read_spans(path)[0].name == "row"

    def test_rotation_caps_the_live_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonLinesSpanSink(path, max_bytes=200)
        for index in range(50):
            sink.write({"name": f"span-{index}", "pad": "x" * 40})
        rotated = path.with_name(path.name + ".1")
        assert rotated.exists()
        assert path.stat().st_size <= 200
        # No rows are lost mid-line: both files parse cleanly.
        for held in (path, rotated):
            for line in held.read_text(encoding="utf-8").splitlines():
                json.loads(line)

    def test_concurrent_writers_never_interleave_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonLinesSpanSink(path)

        def spin(worker: int):
            for index in range(100):
                sink.write({"worker": worker, "index": index})

        threads = [threading.Thread(target=spin, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        rows = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert len(rows) == 800

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            JsonLinesSpanSink(tmp_path / "s.jsonl", max_bytes=0)


class TestPrometheusDump:
    def test_dump_matches_registry_text_and_leaves_no_debris(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("calls_total").inc(7, model="m")
        target = write_prometheus(registry, tmp_path / "metrics.prom")
        assert target.read_text(encoding="utf-8") == registry.prometheus_text()
        assert list(tmp_path.iterdir()) == [target]
