"""End-to-end tracing acceptance: one waterfall per ``map()`` item.

The tentpole's acceptance criteria: a traced 24-task ``map()`` through
the scheduler *and* the response cache yields exactly one trace per
item whose spans cover every lifecycle stage (bind, cache, admission,
transport, parse), whose durations sum consistently to the item's
virtual wall-clock, and which round-trips through the JSONL exporter;
the Prometheus export agrees exactly with ``ClientStats``.

Plus the propagation edge cases: per-item failures stay isolated to
their trace, a requeued request's retries all land in one trace, and a
coalesced follower's span links back to the leader's trace.
"""

import json
import threading

import pytest

import repro.types as t
from repro import Session
from repro.core.response_cache import ResponseCache
from repro.errors import MaxRetriesExceededError
from repro.llm import (
    ChatClient,
    CompletionResult,
    LanguageModel,
    QUIET,
    SimulatedRateLimit,
    Usage,
)
from repro.obs import TelemetryPolicy, read_spans
from repro.obs.telemetry import SPANS_FILENAME

TASK_COUNT = 24

TEMPLATE = "Calculate the factorial of {{n}}."


def bindings() -> list[dict]:
    # 24 *distinct* bindings: identical ones would be deduplicated into
    # a single in-flight request before ever reaching the cache.
    return [{"n": 1 + i} for i in range(TASK_COUNT)]


def traced_session(tmp_path) -> Session:
    return Session(
        model="sim-gpt-4",
        client=ChatClient(noise_policy=QUIET),
        cache="read-write",
        cache_dir=tmp_path / "askit",
        scheduler="adaptive",
        requests_per_minute=600.0,
        telemetry=TelemetryPolicy(trace_dir=tmp_path / "trace"),
    )


def stages_of(spans) -> set:
    return {span.name for span in spans}


class TestTracedMapWaterfall:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("traced-map")
        session = traced_session(tmp_path)
        fn = session.define(t.int, TEMPLATE)
        batch = fn.map(bindings(), max_concurrency=8)
        return session, batch, tmp_path

    def test_one_trace_per_item_covering_every_stage(self, run):
        import math

        session, batch, _ = run
        assert list(batch) == [math.factorial(1 + i) for i in range(TASK_COUNT)]
        traces = session.telemetry.traces()
        assert len(traces) == TASK_COUNT
        for spans in traces.values():
            names = stages_of(spans)
            assert {
                "askit.map.item",
                "askit.ask",
                "askit.bind",
                "askit.request",
                "askit.cache",
                "askit.admission",
                "askit.transport",
                "askit.parse",
            } <= names, f"incomplete waterfall: {sorted(names)}"
            roots = [span for span in spans if span.parent_id is None]
            assert len(roots) == 1
            assert roots[0].name == "askit.map.item"

    def test_parenthood_follows_the_lifecycle(self, run):
        session, _, _ = run
        for spans in session.telemetry.traces().values():
            by_id = {span.span_id: span for span in spans}
            for span in spans:
                if span.parent_id is None:
                    continue
                parent = by_id[span.parent_id]
                if span.name == "askit.ask":
                    assert parent.name == "askit.map.item"
                elif span.name in ("askit.bind", "askit.request"):
                    assert parent.name == "askit.ask"
                elif span.name == "askit.cache":
                    assert parent.name == "askit.request"
                elif span.name in ("askit.admission", "askit.transport"):
                    # Scheduled, cache-mediated calls issue inside the
                    # cache span; unscheduled ones directly under request.
                    assert parent.name in ("askit.cache", "askit.request")

    def test_durations_sum_to_the_items_virtual_wall_clock(self, run):
        session, _, _ = run
        for spans in session.telemetry.traces().values():
            item = next(s for s in spans if s.name == "askit.map.item")
            requests = [s for s in spans if s.name == "askit.request"]
            assert item.duration_s() > 0.0
            # Every virtual-second of an item's life is charged inside a
            # request span (latency, pacing waits, penalties), so the
            # request durations account for the item exactly.
            assert sum(s.duration_s() for s in requests) == pytest.approx(
                item.duration_s()
            )
            for span in spans:
                assert span.start_v >= item.start_v
                assert span.end_v <= item.end_v

    def test_admission_and_transport_attributes(self, run):
        session, _, _ = run
        spans = session.telemetry.spans()
        admissions = [s for s in spans if s.name == "askit.admission"]
        transports = [s for s in spans if s.name == "askit.transport"]
        assert admissions and transports
        for span in admissions:
            # The admission span's virtual duration is exactly its
            # charged pacing wait.
            assert span.duration_s() == pytest.approx(
                span.attributes["pacing_wait_s"]
            )
        for span in transports:
            assert span.attributes["latency_s"] > 0.0
        assert sum(s.attributes["pacing_wait_s"] for s in admissions) == (
            pytest.approx(session.stats.throttle_wait_s)
        )

    def test_spans_round_trip_through_the_jsonl_exporter(self, run):
        session, _, tmp_path = run
        loaded = read_spans(tmp_path / "trace" / SPANS_FILENAME)
        held = session.telemetry.spans()
        assert {span.span_id for span in loaded} == {
            span.span_id for span in held
        }
        by_id = {span.span_id: span for span in loaded}
        for span in held:
            twin = by_id[span.span_id]
            assert twin.trace_id == span.trace_id
            assert twin.parent_id == span.parent_id
            assert twin.name == span.name
            assert twin.duration_s() == pytest.approx(span.duration_s())

    def test_prometheus_totals_match_client_stats_exactly(self, run):
        session, _, _ = run
        stats = session.stats
        text = session.telemetry.prometheus_text()

        def series_total(metric: str) -> float:
            total = 0.0
            for line in text.splitlines():
                if line.startswith(metric + "{") or line == metric:
                    total += float(line.rsplit(" ", 1)[1])
            return total

        assert series_total("askit_provider_calls_total") == stats.calls
        assert series_total("askit_prompt_tokens_total") == stats.prompt_tokens
        assert series_total("askit_completion_tokens_total") == (
            stats.completion_tokens
        )
        assert series_total("askit_throttled_total") == stats.throttled
        assert series_total("askit_throttle_wait_virtual_seconds_total") == (
            pytest.approx(stats.throttle_wait_s)
        )
        cache_total = (
            stats.cache_hits + stats.cache_misses + stats.coalesced
        )
        assert series_total("askit_cache_events_total") == cache_total
        # And the structured dump agrees with the same registry.
        assert stats.as_dict()["calls"] == stats.calls


class ParityModel(LanguageModel):
    """Even ``a`` answers properly; odd ``a`` replies garbage forever."""

    def __init__(self, name: str = "parity-model") -> None:
        self.name = name

    def complete(self, messages, temperature: float = 1.0) -> CompletionResult:
        prompt = messages[-1].content
        marker = "'a' = "
        a = int(prompt.split(marker, 1)[1].split(",")[0].split("\n")[0])
        if a % 2 == 0:
            text = (
                "```json\n"
                + json.dumps({"reason": "even", "answer": a * 100})
                + "\n```"
            )
        else:
            text = "no json from me today"
        return CompletionResult(text, Usage(10, 5), 2.0, self.name)


class TestPropagationEdgeCases:
    def test_per_item_failures_stay_isolated_to_their_trace(self):
        client = ChatClient(noise_policy=QUIET)
        client.register(ParityModel())
        session = Session(model="parity-model", client=client, cache_dir=None)
        fn = session.replace(telemetry="on", max_retries=1).define(
            t.int, "Scale {{a}}."
        )
        batch = fn.map([{"a": n} for n in range(6)], dedup=False)
        assert [outcome.ok for outcome in batch.outcomes] == [
            n % 2 == 0 for n in range(6)
        ]
        assert all(
            isinstance(outcome.error, MaxRetriesExceededError)
            for outcome in batch.outcomes
            if not outcome.ok
        )
        traces = fn.config.telemetry.traces()
        assert len(traces) == 6
        failed = ok = 0
        for spans in traces.values():
            item = next(s for s in spans if s.name == "askit.map.item")
            if item.status == "error":
                failed += 1
                assert "MaxRetriesExceededError" in item.error
                # The failing item's parse attempts are its own spans...
                parses = [s for s in spans if s.name == "askit.parse"]
                assert len(parses) == 2  # max_retries=1 -> two attempts
            else:
                ok += 1
                assert all(s.status == "ok" for s in spans)
        # ...and the failure never leaks into a neighbouring trace.
        assert (ok, failed) == (3, 3)

    def test_requeued_request_keeps_one_trace(self):
        session = Session(
            model="sim-gpt-4",
            client=ChatClient(
                noise_policy=QUIET,
                rate_limit=SimulatedRateLimit(
                    60.0, burst=2, min_retry_after_s=10.0
                ),
            ),
            cache_dir=None,
            scheduler="adaptive",
            telemetry="on",
        )
        fn = session.define(t.int, TEMPLATE)
        batch = fn.map(bindings()[:8], max_concurrency=8)
        assert len(list(batch)) == 8
        assert session.stats.requeued > 0
        telemetry = session.telemetry
        requeue_spans = [
            span
            for span in telemetry.spans()
            if any(e["name"] == "scheduler.requeue" for e in span.events)
        ]
        assert requeue_spans, "expected at least one requeued request"
        for span in requeue_spans:
            assert span.name == "askit.request"
            trace = telemetry.spans(span.trace_id)
            # Every retry re-admits and re-issues *inside the same
            # trace*: one admission + one transport span per attempt.
            attempts = 1 + sum(
                1
                for e in span.events
                if e["name"] == "scheduler.requeue"
            )
            admissions = [s for s in trace if s.name == "askit.admission"]
            transports = [s for s in trace if s.name == "askit.transport"]
            assert len(admissions) >= attempts
            assert len(transports) >= attempts
            refused = [s for s in transports if s.status == "error"]
            assert refused, "refused attempts must leave error spans"
            roots = {s.trace_id for s in trace}
            assert roots == {span.trace_id}

    def test_coalesced_follower_links_to_the_leader_span(self):
        client = ChatClient(noise_policy=QUIET)
        cache = ResponseCache(None)
        from repro.obs import Telemetry

        telemetry = Telemetry().attach(client)
        release = threading.Event()
        entered = threading.Event()

        class SlowModel(LanguageModel):
            name = "slow-model"

            def complete(self, messages, temperature=1.0):
                entered.set()
                assert release.wait(timeout=5.0)
                return CompletionResult("42", Usage(3, 1), 1.0, self.name)

        client.register(SlowModel())
        statuses = []

        def request():
            status, _ = cache.fetch(
                "slow-model",
                client._as_messages("prompt"),
                1.0,
                lambda: client._transport_complete(
                    "slow-model", client._as_messages("prompt"), 1.0
                ),
            )
            statuses.append(status)

        def traced_request():
            with telemetry.tracer.span("askit.cache", root=True):
                request()

        leader = threading.Thread(target=traced_request)
        leader.start()
        assert entered.wait(timeout=5.0)
        follower = threading.Thread(target=traced_request)
        follower.start()
        # Give the follower time to join the in-flight entry, then let
        # the leader's provider call finish.
        threading.Event().wait(0.05)
        release.set()
        leader.join(timeout=5.0)
        follower.join(timeout=5.0)

        assert sorted(statuses) == ["coalesced", "miss"]
        cache_spans = [
            span for span in telemetry.spans() if span.name == "askit.cache"
        ]
        assert len(cache_spans) == 2
        followers = [
            span
            for span in cache_spans
            if "coalesced.leader_trace_id" in span.attributes
        ]
        assert len(followers) == 1
        leader_span = next(s for s in cache_spans if s not in followers)
        follower_span = followers[0]
        # Distinct traces, explicitly linked follower -> leader.
        assert follower_span.trace_id != leader_span.trace_id
        assert (
            follower_span.attributes["coalesced.leader_trace_id"]
            == leader_span.trace_id
        )
        assert (
            follower_span.attributes["coalesced.leader_span_id"]
            == leader_span.span_id
        )
