"""Unit tests for the zero-dependency metrics registry.

Covers the instrument contracts (counter monotonicity, gauge
adjustment, histogram bucketing/percentiles), label-set series
semantics, and the Prometheus text rendering that the exporters and
``ClientStats`` both stand on.
"""

import threading

import pytest

from repro.errors import ConfigError
from repro.obs import Counter, DEFAULT_BUCKETS, Gauge, Histogram, MetricsRegistry
from repro.obs.metrics import label_key


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        counter = Counter("requests_total")
        counter.inc(model="a")
        counter.inc(2, model="a")
        counter.inc(model="b")
        assert counter.value(model="a") == 3.0
        assert counter.value(model="b") == 1.0
        assert counter.value(model="absent") == 0.0

    def test_total_sums_over_label_subsets(self):
        counter = Counter("events_total")
        counter.inc(model="a", status="hit")
        counter.inc(model="a", status="miss")
        counter.inc(model="b", status="hit")
        assert counter.total() == 3.0
        assert counter.total(model="a") == 2.0
        assert counter.total(status="hit") == 2.0
        assert counter.total(model="b", status="hit") == 1.0

    def test_counters_cannot_decrease(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_zero_increment_materializes_the_series(self):
        counter = Counter("c")
        counter.inc(0, model="a")
        assert label_key({"model": "a"}) in counter.series()
        assert counter.label_values("model") == {"a"}

    def test_reset_drops_every_series(self):
        counter = Counter("c")
        counter.inc(model="a")
        counter.reset()
        assert counter.total() == 0.0
        assert counter.series() == {}

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter("c")

        def spin():
            for _ in range(1000):
                counter.inc(model="x")

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(model="x") == 8000.0


class TestGauge:
    def test_set_add_and_negative_adjustments(self):
        gauge = Gauge("depth")
        gauge.set(5, queue="q")
        gauge.add(-2, queue="q")
        assert gauge.value(queue="q") == 3.0
        gauge.add(-10, queue="q")
        assert gauge.value(queue="q") == -7.0


class TestHistogram:
    def test_observations_land_in_upper_inclusive_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)   # le=1.0 (upper-inclusive)
        histogram.observe(1.5)   # le=2.0
        histogram.observe(99.0)  # +Inf
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(101.5)
        lines = histogram.prometheus_lines()
        assert 'h_bucket{le="1"} 1' in lines
        assert 'h_bucket{le="2"} 2' in lines
        assert 'h_bucket{le="+Inf"} 3' in lines

    def test_percentile_interpolates_and_handles_edges(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            histogram.observe(value)
        assert histogram.percentile(0) == 0.0
        # Ranks past the last finite bound report that bound.
        histogram.observe(100.0)
        assert histogram.percentile(100) == 4.0
        # Empty histograms report 0.0 rather than raising.
        assert Histogram("empty", buckets=(1.0,)).percentile(95) == 0.0
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_percentile_merges_matching_label_sets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5, stage="a")
        histogram.observe(5.0, stage="b")
        assert histogram.count() == 2
        assert histogram.count(stage="a") == 1
        assert histogram.percentile(100, stage="a") <= 1.0
        assert histogram.percentile(100) == pytest.approx(10.0)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ConfigError):
            Histogram("h", buckets=())

    def test_default_buckets_are_sorted_and_wide(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS
        assert DEFAULT_BUCKETS[0] <= 0.001 and DEFAULT_BUCKETS[-1] >= 600.0


class TestRegistry:
    def test_instruments_are_memoized_by_name(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help text")
        assert registry.counter("c") is first
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("taken")
        with pytest.raises(ConfigError):
            registry.gauge("taken")
        with pytest.raises(ConfigError):
            registry.histogram("taken")

    def test_prometheus_text_covers_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", "Calls.").inc(3, model="m")
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = registry.prometheus_text()
        assert "# HELP calls_total Calls." in text
        assert "# TYPE calls_total counter" in text
        assert 'calls_total{model="m"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert text.endswith("\n")

    def test_label_values_are_escaped_in_exposition(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(model='we"ird\\name\nhere')
        text = registry.prometheus_text()
        assert 'model="we\\"ird\\\\name\\nhere"' in text

    def test_snapshot_is_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").inc(model="m")
        registry.histogram("h", buckets=(1.0,)).observe(0.5, stage="s")
        dump = registry.snapshot()
        json.dumps(dump)  # must not raise
        assert dump["c"]["series"]['{model="m"}'] == 1.0
        assert dump["h"]["series"]['{stage="s"}']["count"] == 1

    def test_reset_zeroes_but_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        registry.reset()
        assert registry.counter("c") is counter
        assert counter.total() == 0.0
