"""Unit tests for LOC counting."""

import pytest

from repro.evalx import count_loc, count_python_loc, count_typescript_loc


class TestPythonLoc:
    def test_counts_substantive_lines(self):
        source = "def f(x):\n    return x\n"
        assert count_python_loc(source) == 2

    def test_skips_blank_lines(self):
        source = "def f(x):\n\n\n    return x\n\n"
        assert count_python_loc(source) == 2

    def test_skips_comment_only_lines(self):
        source = "# header\ndef f(x):\n    # explain\n    return x\n"
        assert count_python_loc(source) == 2

    def test_trailing_comment_lines_count(self):
        source = "x = 1  # inline comment\n"
        assert count_python_loc(source) == 1

    def test_empty_source(self):
        assert count_python_loc("") == 0


class TestTypeScriptLoc:
    def test_counts_substantive_lines(self):
        source = "export function f(): number {\n    return 1;\n}\n"
        assert count_typescript_loc(source) == 3

    def test_skips_line_comments(self):
        source = "// header\nlet x = 1;\n// footer\n"
        assert count_typescript_loc(source) == 1

    def test_skips_single_line_block_comment(self):
        source = "/* note */\nlet x = 1;\n"
        assert count_typescript_loc(source) == 1

    def test_skips_multi_line_block_comment(self):
        source = "/*\nlong\ncomment\n*/\nlet x = 1;\n"
        assert count_typescript_loc(source) == 1

    def test_code_after_block_comment_close_counts(self):
        source = "/* c */ let x = 1;\n"
        assert count_typescript_loc(source) == 1

    def test_blank_lines_skipped(self):
        assert count_typescript_loc("\n\nlet x = 1;\n\n") == 1


class TestDispatch:
    def test_dispatch(self):
        assert count_loc("x = 1\n", "python") == 1
        assert count_loc("let x = 1;\n", "typescript") == 1

    def test_unknown_language(self):
        with pytest.raises(ValueError):
            count_loc("", "cobol")
