"""Smoke + shape tests for the experiment modules (small workloads)."""

import pytest

from repro.evalx.experiments import (
    ablation_examples,
    ablation_prompt,
    fig5,
    fig6,
    fig7,
    table2,
    table3,
)
from repro.llm import NoisePolicy, QUIET


class TestTable2:
    def test_run_and_render(self):
        result = table2.run(noise=QUIET)
        assert len(result.rows) == 50
        assert result.python_failures == [11, 21, 22, 23, 24]
        assert result.mean_ts_loc > result.mean_py_loc  # paper: 7.56 > 6.52
        text = table2.render(result)
        assert "Table II" in text
        assert "paper: 7.56" in text

    def test_retries_appear_under_noise(self):
        result = table2.run(noise=NoisePolicy(buggy_code_rate=0.9, seed=1))
        retries = [row.ts_retry for row in result.rows if row.ts_retry]
        assert retries, "high bug rates must produce at least one retry"

    def test_parallel_sweep_is_reproducible_under_noise(self):
        """The worker-pool sweep must not make noisy results depend on
        thread scheduling: the noise RNG is seeded per prompt, not by a
        globally ordered call counter."""

        def retries(result):
            return [(row.ts_retry, row.py_retry) for row in result.rows]

        first = table2.run(noise=NoisePolicy(buggy_code_rate=0.35, seed=7))
        second = table2.run(noise=NoisePolicy(buggy_code_rate=0.35, seed=7))
        assert retries(first) == retries(second)


class TestFig5:
    def test_success_rate_matches_paper(self):
        result = fig5.run(noise=QUIET)
        assert result.success_rate == pytest.approx(0.848, abs=0.03)

    def test_loc_relationships(self):
        result = fig5.run(noise=QUIET)
        assert 1.0 < result.loc_ratio < 1.6  # paper: 1.27x
        assert 0.2 < result.shorter_fraction < 0.5  # paper: 35.3 %
        assert result.mean_askit_loc > result.mean_generated_loc  # paper: 23.74 vs 8.05

    def test_render(self):
        text = fig5.render(fig5.run(noise=QUIET))
        assert "Figure 5" in text
        assert "CSV series" in text


class TestFig6:
    def test_mean_reduction_near_paper(self):
        result = fig6.run(noise=QUIET)
        assert result.mean_reduction_percent == pytest.approx(16.14, abs=1.5)

    def test_all_responses_conform(self):
        result = fig6.run(noise=QUIET)
        assert result.format_conformance_rate == 1.0

    def test_render_histogram(self):
        text = fig6.render(fig6.run(noise=QUIET))
        assert "Figure 6" in text
        assert "paper: 16.14" in text


class TestFig7:
    def test_string_is_most_common_top_level(self):
        result = fig7.run()
        assert result.top_level.most_common(1)[0][0] == "string"

    def test_literals_counted_only_in_all_types(self):
        result = fig7.run()
        assert result.top_level.get("literal", 0) == 0
        assert result.all_types["literal"] > 10

    def test_render(self):
        text = fig7.render(fig7.run())
        assert "Figure 7" in text


class TestTable3:
    def test_small_run_shape(self):
        results = table3.run(count=36, noise=QUIET)
        for language in ("typescript", "python"):
            stats = results[language]
            assert stats.total == 36
            assert 0.7 < stats.solved_directly / stats.total <= 1.0
            assert stats.latency.value > 1.0  # seconds of simulated latency
            assert stats.execution.value < 0.01  # real seconds per call
            assert stats.speedup > 10_000
        # The paper's ordering: Python executes faster than interpreted TS,
        # so its speedup ratio is larger.
        assert results["python"].speedup > results["typescript"].speedup

    def test_render(self):
        text = table3.render(table3.run(count=18, noise=QUIET))
        assert "Table III" in text
        assert "typescript" in text


class TestAblations:
    def test_prompt_ablation_shape(self):
        rows = ablation_prompt.run(repeats=2)
        by_label = {row.label: row for row in rows}
        no_retries = by_label["corruption=60%, retries=0"]
        with_retries = by_label["corruption=60%, retries=9"]
        assert with_retries.success_rate > no_retries.success_rate
        assert with_retries.mean_attempts > 1.0

    def test_examples_ablation_shape(self):
        rows = ablation_examples.run(bug_rates=(0.0, 0.9))
        clean, buggy = rows
        assert clean.with_examples_correct == 1.0
        assert buggy.with_examples_correct == 1.0
        assert buggy.without_examples_correct < 0.7
