"""Unit tests for table/figure rendering and timing helpers."""

import pytest

from repro.evalx import (
    Mean,
    csv_text,
    measure_execution_s,
    render_bars,
    render_histogram,
    render_scatter,
    render_table,
    write_csv,
)


class TestTable:
    def test_basic_table(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        assert "name" in text
        assert "bb" in text
        assert "22" in text

    def test_numeric_right_alignment(self):
        text = render_table(["n"], [[1], [100]])
        lines = text.splitlines()
        assert lines[-2].endswith("100 |")

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Title")
        assert text.startswith("My Title")

    def test_large_floats_grouped(self):
        text = render_table(["x"], [[275092.55]])
        assert "275,092.55" in text


class TestHistogram:
    def test_buckets_and_counts(self):
        text = render_histogram([1, 2, 3, 30, 31], bucket_width=25)
        assert "|" in text
        assert "3" in text  # first bucket count

    def test_empty(self):
        assert "(no data)" in render_histogram([], 10, title="t")

    def test_bad_bucket_width(self):
        with pytest.raises(ValueError):
            render_histogram([1], 0)


class TestScatter:
    def test_renders_points(self):
        text = render_scatter([1, 2, 3], [1, 4, 9], width=20, height=10)
        assert "*" in text

    def test_collisions_marked(self):
        text = render_scatter([1, 1, 5], [1, 1, 5], width=10, height=5)
        assert "o" in text

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_scatter([1], [1, 2])

    def test_empty(self):
        assert "(no data)" in render_scatter([], [], title="t")


class TestBars:
    def test_grouped_series(self):
        text = render_bars(["a", "b"], {"s1": [1, 2], "s2": [3, 4]})
        assert text.count("[") == 4
        assert "#" in text


class TestCsv:
    def test_csv_text(self):
        text = csv_text(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[1] == "1,2"

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "data.csv", ["x"], [[1]])
        assert path.exists()
        assert path.read_text().startswith("x")


class TestTiming:
    def test_measure_returns_positive(self):
        elapsed = measure_execution_s(lambda x: x * 2, {"x": 21}, repeats=3)
        assert elapsed >= 0

    def test_bad_repeats(self):
        with pytest.raises(ValueError):
            measure_execution_s(lambda: None, {}, repeats=0)

    def test_mean_streaming(self):
        mean = Mean()
        for value in (1.0, 2.0, 3.0):
            mean.add(value)
        assert mean.value == 2.0
        assert mean.count == 3

    def test_mean_empty(self):
        assert Mean().value == 0.0
