"""Round-trip tests: prompts built by repro.prompts are recoverable by the
simulated model's re-parsers."""

import pytest

import repro.types as t
from repro.errors import SolverError
from repro.llm.requests import (
    classify_prompt,
    parse_codegen_request,
    parse_direct_request,
)
from repro.prompts import (
    build_codegen_prompt,
    build_direct_prompt,
    refine_codegen_prompt,
    refine_direct_prompt,
)
from repro.errors import ResponseFormatError
from repro.templates import PromptTemplate


class TestClassify:
    def test_direct(self):
        prompt = build_direct_prompt(PromptTemplate("Hello"), t.STR, {})
        assert classify_prompt(prompt) == "direct"

    def test_codegen(self):
        prompt = build_codegen_prompt("python", "f", PromptTemplate("Do {{x}}"), t.INT)
        assert classify_prompt(prompt) == "codegen"

    def test_chat(self):
        assert classify_prompt("hey what's up") == "chat"


class TestDirectRoundTrip:
    def test_recovers_type_task_and_bindings(self):
        template = PromptTemplate("List {{n}} classic books on {{subject}}.")
        book = t.dict({"title": t.str, "author": t.str, "year": t.int})
        prompt = build_direct_prompt(
            template, t.list(book), {"n": 5, "subject": "computer science"}
        )
        request = parse_direct_request(prompt)
        # number parses to the float type, so compare rendered spellings.
        assert request.answer_type.typescript() == t.list(book).typescript()
        assert request.task == "List 'n' classic books on 'subject'."
        assert request.bindings == {"n": 5, "subject": "computer science"}
        assert not request.is_feedback

    def test_parameterless(self):
        prompt = build_direct_prompt(PromptTemplate("What is 7 times 8?"), t.INT, {})
        request = parse_direct_request(prompt)
        assert request.task == "What is 7 times 8?"
        assert request.bindings == {}

    def test_task_with_values(self):
        template = PromptTemplate("Add {{a}} and {{b}}.")
        prompt = build_direct_prompt(template, t.INT, {"a": 3, "b": 4})
        request = parse_direct_request(prompt)
        assert request.task_with_values() == "Add 3 and 4."

    def test_string_binding_with_comma(self):
        template = PromptTemplate("Summarize {{text}}.")
        prompt = build_direct_prompt(template, t.STR, {"text": "a, b, and c"})
        request = parse_direct_request(prompt)
        assert request.bindings == {"text": "a, b, and c"}

    def test_list_binding(self):
        template = PromptTemplate("Sort {{ns}}.")
        prompt = build_direct_prompt(template, t.list(t.int), {"ns": [3, 1, 2]})
        request = parse_direct_request(prompt)
        assert request.bindings == {"ns": [3, 1, 2]}

    def test_feedback_prompt_detected(self):
        prompt = build_direct_prompt(PromptTemplate("Hello"), t.STR, {})
        error = ResponseFormatError("bad", ResponseFormatError.CRITERION_NO_JSON, "oops")
        refined = refine_direct_prompt(prompt, error)
        request = parse_direct_request(refined)
        assert request.is_feedback
        assert request.task == "Hello"

    def test_union_type_recovered(self):
        sentiment = t.union(t.literal("positive"), t.literal("negative"))
        prompt = build_direct_prompt(
            PromptTemplate("What is the sentiment of {{review}}?"),
            sentiment,
            {"review": "I love it"},
        )
        request = parse_direct_request(prompt)
        assert request.answer_type == sentiment

    def test_rejects_non_direct_prompt(self):
        with pytest.raises(SolverError):
            parse_direct_request("no fences here at all")


class TestCodegenRoundTrip:
    def test_typescript(self):
        template = PromptTemplate("Calculate the factorial of {{n}}")
        prompt = build_codegen_prompt("typescript", "calculateFactorial", template, t.INT, {"n": t.INT})
        request = parse_codegen_request(prompt)
        assert request.language == "typescript"
        assert request.name == "calculateFactorial"
        assert request.parameters == ["n"]
        assert request.return_annotation == "number"
        assert request.task == "Calculate the factorial of 'n'"
        assert not request.is_feedback

    def test_python(self):
        template = PromptTemplate("Reverse the string {{s}}.")
        prompt = build_codegen_prompt("python", "reverse_string", template, t.STR)
        request = parse_codegen_request(prompt)
        assert request.language == "python"
        assert request.name == "reverse_string"
        assert request.parameters == ["s"]
        assert request.task == "Reverse the string 's'."

    def test_takes_last_q_segment(self):
        """The one-shot example's func must not shadow the real request."""
        template = PromptTemplate("Sort {{ns}}.")
        prompt = build_codegen_prompt("typescript", "sortNumbers", template, t.list(t.int))
        request = parse_codegen_request(prompt)
        assert request.name == "sortNumbers"

    def test_feedback_detected_with_previous_code(self):
        template = PromptTemplate("Do {{x}}")
        prompt = build_codegen_prompt("python", "f", template, t.INT)
        refined = refine_codegen_prompt(prompt, "def f(x):\n    return 0", ValueError("wrong"))
        request = parse_codegen_request(refined)
        assert request.is_feedback
        assert "return 0" in request.previous_code
        assert request.name == "f"

    def test_multi_parameter(self):
        template = PromptTemplate("Interleave {{xs}} and {{ys}}.")
        prompt = build_codegen_prompt(
            "typescript", "interleave", template, t.list(t.int),
            {"xs": t.list(t.int), "ys": t.list(t.int)},
        )
        request = parse_codegen_request(prompt)
        assert request.parameters == ["xs", "ys"]
