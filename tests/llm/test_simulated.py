"""End-to-end tests for the simulated LLM (text in, text out)."""

import pytest

import repro.types as t
from repro.llm import QUIET, NoisePolicy, SimulatedLLM, user_message
from repro.llm.knowledge import KnowledgeBase, WordProblemFamily, mask_numbers
from repro.mathexpr import add, mul, var
from repro.parsing import extract_answer, extract_block
from repro.prompts import build_codegen_prompt, build_direct_prompt
from repro.templates import PromptTemplate


def quiet_model(name="sim-gpt-4"):
    return SimulatedLLM(name, policy=QUIET)


def ask_direct(model, template_text, answer_type, args):
    prompt = build_direct_prompt(PromptTemplate(template_text), answer_type, args)
    result = model.complete([user_message(prompt)])
    return extract_answer(result.text, answer_type).value


class TestDirectAnswers:
    def test_sentiment_positive(self):
        sentiment = t.union(t.literal("positive"), t.literal("negative"))
        value = ask_direct(
            quiet_model(),
            "What is the sentiment of {{review}}?",
            sentiment,
            {"review": "The product is fantastic. It exceeds all my expectations."},
        )
        assert value == "positive"

    def test_sentiment_negative(self):
        sentiment = t.union(t.literal("positive"), t.literal("negative"))
        value = ask_direct(
            quiet_model(),
            "What is the sentiment of {{review}}?",
            sentiment,
            {"review": "Terrible quality, broken on arrival, total waste."},
        )
        assert value == "negative"

    def test_catalog_task_direct(self):
        value = ask_direct(
            quiet_model(),
            "Calculate the factorial of {{n}}.",
            t.INT,
            {"n": 6},
        )
        assert value == 720

    def test_sort_task_direct(self):
        value = ask_direct(
            quiet_model(),
            "Sort the numbers {{ns}} in ascending order.",
            t.list(t.int),
            {"ns": [5, 1, 4]},
        )
        assert value == [1, 4, 5]

    def test_books_task(self):
        book = t.dict({"title": t.str, "author": t.str, "year": t.int})
        value = ask_direct(
            quiet_model(),
            "List {{n}} classic books on {{subject}}.",
            t.list(book),
            {"n": 3, "subject": "computer science"},
        )
        assert len(value) == 3
        assert all(book_entry["year"] >= 1900 for book_entry in value)

    def test_inline_arithmetic(self):
        value = ask_direct(quiet_model(), "What is 7 times 8?", t.INT, {})
        assert value == 56

    def test_unknown_task_falls_back_to_typed_guess(self):
        value = ask_direct(
            quiet_model(),
            "Predict tomorrow's lottery numbers for {{city}}.",
            t.list(t.int),
            {"city": "Boston"},
        )
        assert value == []  # format-conforming guess

    def test_latency_and_usage_reported(self):
        model = quiet_model()
        prompt = build_direct_prompt(PromptTemplate("What is 7 times 8?"), t.INT, {})
        result = model.complete([user_message(prompt)])
        assert result.latency_s > 0
        assert result.usage.prompt_tokens > 10
        assert result.usage.completion_tokens > 0

    def test_gpt4_slower_than_gpt35(self):
        prompt = build_direct_prompt(PromptTemplate("What is 7 times 8?"), t.INT, {})
        fast = quiet_model("sim-gpt-3.5-turbo-16k").complete([user_message(prompt)])
        slow = quiet_model("sim-gpt-4").complete([user_message(prompt)])
        assert slow.latency_s > fast.latency_s


class TestWordProblems:
    def setup_method(self):
        self.knowledge = KnowledgeBase()
        text = "Ava picked 12 apples and 8 pears. How many fruits did Ava pick in total?"
        skeleton, _ = mask_numbers(text)
        self.knowledge.register_family(
            WordProblemFamily(skeleton, add(var("n0"), var("n1")), name="fruits")
        )
        self.model = SimulatedLLM(knowledge=self.knowledge, policy=QUIET)

    def test_solves_registered_family(self):
        prompt = build_direct_prompt(
            PromptTemplate("Ava picked {{a}} apples and {{b}} pears. How many fruits did Ava pick in total?"),
            t.INT,
            {"a": 12, "b": 8},
        )
        result = self.model.complete([user_message(prompt)])
        assert extract_answer(result.text, t.INT).value == 20

    def test_different_numbers_same_family(self):
        prompt = build_direct_prompt(
            PromptTemplate("Ava picked {{a}} apples and {{b}} pears. How many fruits did Ava pick in total?"),
            t.INT,
            {"a": 100, "b": 1},
        )
        result = self.model.complete([user_message(prompt)])
        assert extract_answer(result.text, t.INT).value == 101

    def test_reason_field_mentions_computation(self):
        prompt = build_direct_prompt(
            PromptTemplate("Ava picked {{a}} apples and {{b}} pears. How many fruits did Ava pick in total?"),
            t.INT,
            {"a": 2, "b": 3},
        )
        result = self.model.complete([user_message(prompt)])
        parsed = extract_answer(result.text, t.INT)
        assert "n0" in parsed.reason or "Computing" in parsed.reason


class TestCodegen:
    def test_python_factorial(self):
        model = quiet_model()
        prompt = build_codegen_prompt(
            "python", "calculate_factorial",
            PromptTemplate("Calculate the factorial of {{n}}."), t.INT,
        )
        result = model.complete([user_message(prompt)])
        code = extract_block(result.text, "python")
        namespace = {}
        exec(code, namespace)  # noqa: S102 - test sandbox
        assert namespace["calculate_factorial"](5) == 120

    def test_typescript_factorial(self):
        from repro.tslang import load_module

        model = quiet_model()
        prompt = build_codegen_prompt(
            "typescript", "calculateFactorial",
            PromptTemplate("Calculate the factorial of {{n}}."), t.INT, {"n": t.INT},
        )
        result = model.complete([user_message(prompt)])
        code = extract_block(result.text, "typescript")
        module = load_module(code)
        assert module.call("calculateFactorial", {"n": 5}) == 120

    def test_python_signature_mismatch_task_fails(self):
        """Task #11 (unique elements) reproduces the paper's pyaskit failure."""
        model = quiet_model()
        prompt = build_codegen_prompt(
            "python", "unique_elements",
            PromptTemplate("Return the unique elements in {{xs}}."), t.list(t.int),
        )
        result = model.complete([user_message(prompt)])
        code = extract_block(result.text, "python")
        namespace = {}
        exec(code, namespace)  # noqa: S102
        with pytest.raises(Exception):
            namespace["unique_elements"]([1, 2, 2])

    def test_same_task_succeeds_in_typescript(self):
        from repro.tslang import load_module

        model = quiet_model()
        prompt = build_codegen_prompt(
            "typescript", "uniqueElements",
            PromptTemplate("Return the unique elements in {{xs}}."),
            t.list(t.int), {"xs": t.list(t.int)},
        )
        result = model.complete([user_message(prompt)])
        module = load_module(extract_block(result.text, "typescript"))
        assert module.call("uniqueElements", {"xs": [1, 2, 2, 3, 1]}) == [1, 2, 3]

    def test_unknown_task_emits_failing_body(self):
        model = quiet_model()
        prompt = build_codegen_prompt(
            "python", "mystery", PromptTemplate("Achieve world peace with {{x}}."), t.INT,
        )
        result = model.complete([user_message(prompt)])
        code = extract_block(result.text, "python")
        assert "NotImplementedError" in code

    def test_buggy_code_under_noise_then_correct_on_feedback(self):
        """With noise forced on, first-try Fibonacci carries the paper's
        off-by-one; the feedback retry fixes it."""
        from repro.prompts import refine_codegen_prompt

        model = SimulatedLLM(policy=NoisePolicy(buggy_code_rate=1.0, seed=7))
        prompt = build_codegen_prompt(
            "python", "fibonacci",
            PromptTemplate("Generate the Fibonacci sequence up to {{n}}."), t.list(t.int),
        )
        first = model.complete([user_message(prompt)])
        code = extract_block(first.text, "python")
        namespace = {}
        exec(code, namespace)  # noqa: S102
        assert namespace["fibonacci"](5) != [0, 1, 1, 2, 3]  # the planted bug

        # The policy halves rates per attempt, but rate 1.0 stays 0.5 -- so
        # use an explicit quiet retry to model convergence deterministically.
        model_converged = SimulatedLLM(policy=QUIET)
        refined = refine_codegen_prompt(prompt, code, ValueError("failed tests"))
        second = model_converged.complete([user_message(refined)])
        code2 = extract_block(second.text, "python")
        namespace2 = {}
        exec(code2, namespace2)  # noqa: S102
        assert namespace2["fibonacci"](5) == [0, 1, 1, 2, 3]


class TestNoiseInjection:
    def test_corruption_rate_zero_always_clean(self):
        model = quiet_model()
        prompt = build_direct_prompt(PromptTemplate("What is 7 times 8?"), t.INT, {})
        for _ in range(10):
            result = model.complete([user_message(prompt)])
            assert extract_answer(result.text, t.INT).value == 56

    def test_corruption_rate_one_always_malformed_first_try(self):
        from repro.errors import ResponseFormatError

        model = SimulatedLLM(policy=NoisePolicy(direct_corruption_rate=1.0, seed=3))
        prompt = build_direct_prompt(PromptTemplate("What is 7 times 8?"), t.INT, {})
        failures = 0
        for _ in range(5):
            result = model.complete([user_message(prompt)])
            try:
                extract_answer(result.text, t.INT)
            except ResponseFormatError:
                failures += 1
        assert failures == 5

    def test_determinism_same_seed_same_output(self):
        prompt = build_direct_prompt(PromptTemplate("What is 7 times 8?"), t.INT, {})
        a = SimulatedLLM(policy=NoisePolicy(seed=11)).complete([user_message(prompt)])
        b = SimulatedLLM(policy=NoisePolicy(seed=11)).complete([user_message(prompt)])
        assert a.text == b.text

    def test_chat_fallback(self):
        model = quiet_model()
        result = model.complete([user_message("hello there")])
        assert "AskIt" in result.text or "help" in result.text
