"""Provider registry and third-party backend seam tests.

The acceptance contract: a third-party provider can be registered via the
``Provider`` protocol and serve completions through ``ChatClient`` (and
the whole ask/define stack) without editing ``repro/llm/client.py``.
"""

import asyncio

import pytest

import repro.types as t
from repro import Session
from repro.errors import ConfigError
from repro.llm import QUIET, ChatClient, CompletionResult, Usage
from repro.llm.base import user_message
from repro.llm.providers import (
    OpenAIStubProvider,
    Provider,
    ProviderBase,
    SIMULATED_PREFIX,
    register_provider,
    registered_prefixes,
    resolve_factory,
    unregister_provider,
)
from repro.llm.simulated import SimulatedLLM


@pytest.fixture
def registered(request):
    """Register provider factories for the test, always unregistering."""

    prefixes: list[str] = []

    def add(prefix: str, factory) -> None:
        register_provider(prefix, factory)
        prefixes.append(prefix)

    yield add
    for prefix in prefixes:
        unregister_provider(prefix)


class TestRegistry:
    def test_simulated_prefix_is_preregistered(self):
        assert SIMULATED_PREFIX in registered_prefixes()

    def test_unmatched_names_fall_back_to_simulated(self):
        prefix, factory = resolve_factory("totally-unknown-model")
        assert prefix == ""
        provider = factory(ChatClient(noise_policy=QUIET))
        assert provider.name == "simulated"
        assert provider.deterministic

    def test_simulated_determinism_tracks_noise_policy(self):
        _, factory = resolve_factory("sim-gpt-4")
        assert factory(ChatClient(noise_policy=QUIET)).deterministic
        # No policy means the default *noisy* NoisePolicy: repeated
        # identical prompts draw fresh noise, so dedup must not collapse
        # them into one sample.
        assert not factory(ChatClient()).deterministic

    def test_longest_prefix_wins(self, registered):
        short = OpenAIStubProvider
        long = OpenAIStubProvider
        registered("acme-", short)
        registered("acme-turbo-", long)
        assert resolve_factory("acme-turbo-x")[0] == "acme-turbo-"
        assert resolve_factory("acme-basic")[0] == "acme-"

    def test_duplicate_registration_needs_replace(self, registered):
        registered("dup-", OpenAIStubProvider)
        with pytest.raises(ConfigError):
            register_provider("dup-", OpenAIStubProvider)
        register_provider("dup-", OpenAIStubProvider, replace=True)

    def test_empty_prefix_rejected(self):
        with pytest.raises(ConfigError):
            register_provider("", OpenAIStubProvider)

    def test_unregister_reports_existence(self):
        register_provider("gone-", OpenAIStubProvider)
        assert unregister_provider("gone-") is True
        assert unregister_provider("gone-") is False


class CountingProvider(ProviderBase):
    """A minimal third-party provider written against the protocol only."""

    name = "counting"
    supports_async = False
    deterministic = True

    def __init__(self, client) -> None:
        self.calls = 0

    def complete(self, model, messages, temperature):
        self.calls += 1
        return CompletionResult(
            '```json\n{"reason": "counted", "answer": 42}\n```',
            Usage(5, 5),
            1.5,
            model,
        )


class TestThirdPartySeam:
    def test_protocol_conformance_is_structural(self):
        assert isinstance(CountingProvider(None), Provider)
        assert isinstance(OpenAIStubProvider(), Provider)

    def test_counting_provider_serves_full_ask_stack(self, registered):
        registered("thirdparty-", CountingProvider)
        session = Session(model="thirdparty-large", cache_dir=None)
        assert session.ask(t.int, "What is the answer?") == 42
        provider = session.client.provider_for("thirdparty-large")
        assert isinstance(provider, CountingProvider)
        assert provider.calls == 1
        assert session.stats.for_model("thirdparty-large").calls == 1
        assert session.clock.elapsed_s == pytest.approx(1.5)

    def test_provider_instances_are_per_client(self, registered):
        registered("percl-", CountingProvider)
        c1, c2 = ChatClient(), ChatClient()
        assert c1.provider_for("percl-a") is c1.provider_for("percl-b")
        assert c1.provider_for("percl-a") is not c2.provider_for("percl-a")

    def test_wire_only_provider_cannot_be_resolved_to_language_model(self, registered):
        registered("wire-", CountingProvider)
        client = ChatClient()
        with pytest.raises(LookupError):
            client.resolve("wire-model")


class TestOpenAIStub:
    def test_wire_shapes_round_trip(self):
        stub = OpenAIStubProvider()
        request = stub.build_request(
            "oai-stub-small", [user_message("hello there")], 0.3
        )
        assert request["model"] == "oai-stub-small"
        assert request["temperature"] == 0.3
        assert request["messages"] == [{"role": "user", "content": "hello there"}]

        result = stub.complete("oai-stub-small", [user_message("hello there")], 0.3)
        assert result.model == "oai-stub-small"
        assert "hello there" in result.text
        assert result.usage.prompt_tokens > 0
        assert result.usage.completion_tokens > 0

    def test_custom_responder_drives_answers(self, registered):
        def responder(request):
            return {
                "model": request["model"],
                "choices": [
                    {
                        "index": 0,
                        "message": {
                            "role": "assistant",
                            "content": '```json\n{"reason": "stub", "answer": 7}\n```',
                        },
                        "finish_reason": "stop",
                    }
                ],
                "usage": {"prompt_tokens": 11, "completion_tokens": 13},
            }

        registered("oai-stub-", lambda client: OpenAIStubProvider(client, responder))
        session = Session(model="oai-stub-gpt", cache_dir=None)
        assert session.ask(t.int, "Lucky number?") == 7
        assert session.stats.for_model("oai-stub-gpt").prompt_tokens == 11

    def test_native_async_path_is_used(self, registered):
        registered("oai-stub-", OpenAIStubProvider)
        session = Session(model="oai-stub-gpt", cache_dir=None)
        provider = session.client.provider_for("oai-stub-gpt")
        assert provider.supports_async

        async def roundtrip():
            return await session.client.achat_complete(
                "oai-stub-gpt", "ping", temperature=0.0
            )

        result = asyncio.run(roundtrip())
        assert result.model == "oai-stub-gpt"
        assert session.stats.calls == 1


class TestExactNameRegistration:
    def test_registered_model_shadows_prefix_routing(self):
        client = ChatClient()
        special = SimulatedLLM("sim-special")
        client.register(special)
        provider = client.provider_for("sim-special")
        assert provider.name == "registered-model"
        assert client.resolve("sim-special") is special

    def test_lazily_created_simulated_models_do_not_shadow(self):
        client = ChatClient(noise_policy=QUIET)
        client.chat_complete("sim-gpt-4", [user_message("hi")], 0.0)
        # The simulated provider cached its model in client.models, but
        # prefix routing (and the deterministic flag) must survive.
        assert client.provider_for("sim-gpt-4").name == "simulated"
        assert client.provider_for("sim-gpt-4").deterministic
