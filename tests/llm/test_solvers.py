"""Unit tests for the solvers behind the simulated model."""

import pytest

from repro.llm.knowledge import KnowledgeBase, WordProblemFamily, mask_numbers, mask_quantities, normalize_task
from repro.llm.solvers.mathword import (
    is_hard_instance,
    is_uncodable_family,
    solve_word_problem,
)
from repro.llm.solvers.worldly import (
    analyze_sentiment,
    classic_books,
    match_arithmetic,
    solve_worldly,
)
from repro.mathexpr import add, mul, var


class TestMasking:
    def test_mask_numbers(self):
        masked, numbers = mask_numbers("Ava has 12 apples and 8.5 pears.")
        assert masked == "Ava has <N> apples and <N> pears."
        assert numbers == [12.0, 8.5]

    def test_mask_preserves_words_with_digits(self):
        masked, numbers = mask_numbers("route66 is a road")
        assert masked == "route66 is a road"
        assert numbers == []

    def test_mask_quantities_handles_quoted_names(self):
        masked, slots = mask_quantities("Ava has 'a' apples and 3 pears.")
        assert masked == "Ava has <N> apples and <N> pears."
        assert slots == ["a", 3.0]

    def test_number_and_quoted_mask_identically(self):
        with_numbers, _ = mask_quantities("She ran 5 miles in 40 minutes.")
        with_names, _ = mask_quantities("She ran 'x' miles in 'y' minutes.")
        assert with_numbers == with_names

    def test_normalize_task(self):
        assert normalize_task("  Reverse the string 's'.  ") == "reverse the string 's'"
        assert normalize_task("REVERSE the string 's'?") == "reverse the string 's'"


class TestWordProblemSolver:
    def setup_method(self):
        self.knowledge = KnowledgeBase()
        text = "A crate holds 10 melons and 4 boxes. How many items in total?"
        skeleton, _ = mask_numbers(text)
        self.knowledge.register_family(
            WordProblemFamily(skeleton, add(var("n0"), var("n1")), "melons")
        )

    def test_solves_easy_instance(self):
        # Search for an instance that is not gated as "hard".
        for a in range(3, 60):
            text = f"A crate holds {a} melons and 4 boxes. How many items in total?"
            if not is_hard_instance(text):
                answer = solve_word_problem(self.knowledge, text)
                assert answer.is_correct
                assert answer.value == a + 4
                return
        pytest.fail("no easy instance found in range")

    def test_hard_instances_get_wrong_but_plausible_answers(self):
        for a in range(3, 200):
            text = f"A crate holds {a} melons and 4 boxes. How many items in total?"
            if is_hard_instance(text):
                answer = solve_word_problem(self.knowledge, text)
                assert not answer.is_correct
                assert answer.value != a + 4
                return
        pytest.fail("no hard instance found in range")

    def test_unknown_problem_returns_none(self):
        assert solve_word_problem(self.knowledge, "What is love?") is None

    def test_hardness_is_deterministic(self):
        text = "A crate holds 10 melons and 4 boxes. How many items in total?"
        assert is_hard_instance(text) == is_hard_instance(text)

    def test_uncodable_gate_deterministic(self):
        assert is_uncodable_family("skeleton x") == is_uncodable_family("skeleton x")

    def test_reason_narrates_steps(self):
        for a in range(3, 60):
            text = f"A crate holds {a} melons and 4 boxes. How many items in total?"
            if not is_hard_instance(text):
                answer = solve_word_problem(self.knowledge, text)
                assert "step by step" in answer.reason
                assert str(a) in answer.reason
                return


class TestWorldly:
    def test_sentiment_positive(self):
        assert analyze_sentiment("I love this fantastic product") == "positive"

    def test_sentiment_negative(self):
        assert analyze_sentiment("terrible, broken, waste of money") == "negative"

    def test_sentiment_negation_flips(self):
        assert analyze_sentiment("this is not good at all, awful") == "negative"

    def test_sentiment_tie_breaks_positive(self):
        assert analyze_sentiment("the box contains a product") == "positive"

    def test_books_deterministic(self):
        first = classic_books(3, "compilers")
        second = classic_books(3, "compilers")
        assert first == second
        assert len(first) == 3
        assert all(set(book) == {"title", "author", "year"} for book in first)

    def test_books_vary_by_subject(self):
        assert classic_books(2, "compilers") != classic_books(2, "databases")

    def test_arithmetic_phrases(self):
        assert match_arithmetic("What is 7 times 8?", {}) == 56
        assert match_arithmetic("What is 10 plus 5?", {}) == 15
        assert match_arithmetic("What is 10 minus 5?", {}) == 5
        assert match_arithmetic("What is 10 divided by 4?", {}) == 2.5
        assert match_arithmetic("What is the capital of France?", {}) is None

    def test_solve_worldly_dispatch(self):
        matched, value = solve_worldly("What is 6 times 6?", {})
        assert matched and value == 36
        matched, _ = solve_worldly("Translate this to Klingon", {})
        assert not matched
