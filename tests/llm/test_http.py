"""The shared HTTP client: every taxonomy branch, driven by fakes.

The acceptance contract of ``repro/llm/http.py``: one classification
path maps transport outcomes -- timeouts, auth failures, 429s with and
without ``Retry-After``, 5xx, malformed bodies -- onto the typed errors
the scheduler/backoff machinery keys on, identically for live, fake,
and cassette transports.
"""

import pytest

from repro.errors import (
    AuthError,
    HTTPStatusError,
    MalformedResponseError,
    RateLimitError,
    ServerError,
    TransportError,
    TransportTimeoutError,
)
from repro.llm.http import (
    HTTPClient,
    HTTPRequest,
    HTTPResponse,
    parse_retry_after,
)
from repro.llm import http as http_module

from tests.llm.fakes import (
    ScriptedTransport,
    SleepRecorder,
    error_response,
    json_response,
    no_sleep,
    truncated_json_response,
)


def request() -> HTTPRequest:
    return HTTPRequest.json_request(
        "POST", "https://api.example.test/v1/chat", {"model": "m", "messages": []}
    )


def client(script, **kwargs) -> tuple[HTTPClient, ScriptedTransport]:
    transport = ScriptedTransport(script)
    kwargs.setdefault("sleep", no_sleep)
    return HTTPClient(transport, **kwargs), transport


class TestTaxonomyNaming:
    def test_issue_taxonomy_names_resolve(self):
        """The taxonomy is importable under the documented names."""
        assert http_module.TimeoutError is TransportTimeoutError
        for error_type in (
            TransportError,
            TransportTimeoutError,
            AuthError,
            RateLimitError,
            ServerError,
            MalformedResponseError,
        ):
            assert issubclass(error_type, Exception)
        assert issubclass(TransportTimeoutError, TransportError)
        assert issubclass(AuthError, HTTPStatusError)
        assert issubclass(ServerError, HTTPStatusError)
        assert issubclass(HTTPStatusError, TransportError)


class TestSuccess:
    def test_success_returns_decoded_body_and_response(self):
        http, transport = client([json_response({"ok": True}, elapsed_s=0.4)])
        payload, response = http.send(request())
        assert payload == {"ok": True}
        assert response.status == 200
        assert response.elapsed_s == pytest.approx(0.4)
        assert transport.calls == 1

    def test_header_lookup_is_case_insensitive(self):
        response = HTTPResponse(200, {"Retry-After": "7"}, b"{}")
        assert response.header("retry-after") == "7"
        assert response.header("RETRY-AFTER") == "7"
        assert response.header("absent", "fallback") == "fallback"


class TestTimeouts:
    def test_connect_timeout_propagates_after_retries(self):
        fault = TransportTimeoutError("connect timed out", timeout_s=5.0, phase="connect")
        http, transport = client([fault], max_attempts=3)
        with pytest.raises(TransportTimeoutError) as info:
            http.send(request())
        assert info.value.phase == "connect"
        assert info.value.timeout_s == 5.0
        assert transport.calls == 3  # retried to exhaustion

    def test_read_timeout_then_success_recovers(self):
        fault = TransportTimeoutError("read timed out", timeout_s=5.0, phase="read")
        http, transport = client([fault, json_response({"ok": 1})])
        payload, _ = http.send(request())
        assert payload == {"ok": 1}
        assert transport.calls == 2

    def test_network_fault_backoff_is_exponential(self):
        sleeps = SleepRecorder()
        fault = TransportError("connection reset")
        http, _ = client(
            [fault, fault, json_response({})],
            max_attempts=3,
            backoff_base_s=0.5,
            sleep=sleeps,
        )
        http.send(request())
        assert sleeps.waits == [0.5, 1.0]


class TestAuth:
    @pytest.mark.parametrize("status", [401, 403])
    def test_auth_failures_raise_and_never_retry(self, status):
        http, transport = client([error_response(status, "bad key")])
        with pytest.raises(AuthError) as info:
            http.send(request())
        assert info.value.status == status
        assert "bad key" in info.value.body_preview
        assert transport.calls == 1  # a bad key stays bad


class TestRateLimit:
    def test_429_with_retry_after_carries_the_hint(self):
        http, transport = client(
            [error_response(429, "slow down", {"Retry-After": "12.5"})]
        )
        with pytest.raises(RateLimitError) as info:
            http.send(request(), model="gpt-test")
        assert info.value.retry_after_s == pytest.approx(12.5)
        assert info.value.model == "gpt-test"
        assert transport.calls == 1  # admission control owns 429 retries

    def test_429_without_retry_after_uses_default_hint(self):
        http, _ = client([error_response(429)])
        with pytest.raises(RateLimitError) as info:
            http.send(request())
        assert info.value.retry_after_s == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "header,expected",
        [("30", 30.0), ("0", 0.0), ("2.5", 2.5), ("garbage", None), (None, None), ("-3", None)],
    )
    def test_retry_after_parsing(self, header, expected):
        assert parse_retry_after(header) == expected


class TestServerErrors:
    def test_5xx_retries_then_propagates_as_server_error(self):
        http, transport = client([error_response(503, "overloaded")], max_attempts=3)
        with pytest.raises(ServerError) as info:
            http.send(request())
        assert info.value.status == 503
        assert transport.calls == 3

    def test_5xx_retry_honours_retry_after_header(self):
        sleeps = SleepRecorder()
        http, _ = client(
            [error_response(500, headers={"Retry-After": "4"}), json_response({})],
            sleep=sleeps,
        )
        http.send(request())
        assert sleeps.waits == [4.0]  # stretched past the 0.5s base backoff

    def test_5xx_then_success_recovers(self):
        http, transport = client([error_response(502), json_response({"ok": 2})])
        payload, _ = http.send(request())
        assert payload == {"ok": 2}
        assert transport.calls == 2


class TestOtherStatuses:
    def test_unexpected_4xx_raises_status_error_without_retry(self):
        http, transport = client([error_response(404, "no such model")])
        with pytest.raises(HTTPStatusError) as info:
            http.send(request())
        assert info.value.status == 404
        assert transport.calls == 1


class TestMalformedBodies:
    def test_truncated_json_raises_malformed_response(self):
        http, transport = client([truncated_json_response()])
        with pytest.raises(MalformedResponseError):
            http.send(request())
        assert transport.calls == 1  # the bytes arrived; retrying cannot help

    def test_non_json_success_body_raises_malformed_response(self):
        http, _ = client([error_response(200, "<html>not json</html>")])
        with pytest.raises(MalformedResponseError) as info:
            http.send(request())
        assert "not json" in str(info.value)

    def test_non_retryable_transport_error_raises_immediately(self):
        fault = TransportError("offline by policy")
        fault.retryable = False
        http, transport = client([fault], max_attempts=3)
        with pytest.raises(TransportError):
            http.send(request())
        assert transport.calls == 1


class TestRequestShapes:
    def test_json_request_sets_content_type_and_serializes(self):
        built = HTTPRequest.json_request(
            "post", "https://x.test/y", {"a": 1}, {"X-Extra": "yes"}
        )
        assert built.method == "POST"
        assert built.headers["Content-Type"] == "application/json"
        assert built.headers["X-Extra"] == "yes"
        assert built.json() == {"a": 1}

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            HTTPClient(ScriptedTransport([json_response({})]), max_attempts=0)
