"""Unit tests for the LLM infrastructure: tokenizer, latency, noise,
client, and knowledge base."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.llm import (
    ChatClient,
    ChatMessage,
    KnowledgeBase,
    NoisePolicy,
    SimulatedLLM,
    TaskImplementation,
    VirtualClock,
    count_tokens,
    profile_for,
    stable_fraction,
    user_message,
)
from repro.llm.latency import PROFILES, LatencyProfile
from repro.llm.noise import CLEAN


class TestTokenizer:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_monotone_in_length(self):
        assert count_tokens("word " * 100) > count_tokens("word " * 10)

    def test_rough_calibration(self):
        # ~100 English words is roughly 120-160 BPE tokens.
        text = ("the quick brown fox jumps over the lazy dog " * 12).strip()
        tokens = count_tokens(text)
        assert 80 < tokens < 220

    @given(st.text(max_size=200))
    def test_never_negative(self, text):
        assert count_tokens(text) >= 0


class TestLatency:
    def test_profiles_exist(self):
        assert "sim-gpt-4" in PROFILES
        assert "sim-gpt-3.5-turbo-16k" in PROFILES

    def test_unknown_model_gets_default(self):
        assert profile_for("mystery-model") is PROFILES["sim-gpt-4"]

    def test_latency_grows_with_completion(self):
        profile = PROFILES["sim-gpt-4"]
        assert profile.latency(100, 200) > profile.latency(100, 50)

    def test_gpt4_slower_than_gpt35(self):
        assert PROFILES["sim-gpt-4"].latency(200, 100) > PROFILES[
            "sim-gpt-3.5-turbo-16k"
        ].latency(200, 100)

    def test_latency_floor(self):
        profile = LatencyProfile(0.0, 0.0, 0.0)
        assert profile.latency(0, 0) >= 0.05

    def test_virtual_clock(self):
        clock = VirtualClock()
        clock.charge(1.5)
        clock.charge(0.5)
        assert clock.elapsed_s == 2.0
        clock.reset()
        assert clock.elapsed_s == 0.0

    def test_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().charge(-1)


class TestNoisePolicy:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            NoisePolicy(direct_corruption_rate=1.5)
        with pytest.raises(ValueError):
            NoisePolicy(buggy_code_rate=-0.1)

    def test_zero_rate_always_clean(self):
        policy = NoisePolicy(direct_corruption_rate=0.0)
        rng = policy.rng_for("prompt", 1)
        assert all(policy.direct_corruption(rng, 0) == CLEAN for _ in range(50))

    def test_full_rate_never_clean_first_try(self):
        policy = NoisePolicy(direct_corruption_rate=1.0)
        rng = policy.rng_for("prompt", 1)
        assert all(policy.direct_corruption(rng, 0) != CLEAN for _ in range(50))

    def test_rates_halve_per_attempt(self):
        policy = NoisePolicy(direct_corruption_rate=1.0, seed=1)
        rng = policy.rng_for("p", 1)
        later_attempts = [policy.direct_corruption(rng, 3) for _ in range(200)]
        clean = sum(1 for kind in later_attempts if kind == CLEAN)
        assert clean > 140  # rate decayed to 12.5 %

    def test_rng_deterministic_per_call_index(self):
        policy = NoisePolicy(seed=9)
        assert policy.rng_for("p", 1).random() == policy.rng_for("p", 1).random()
        assert policy.rng_for("p", 1).random() != policy.rng_for("p", 2).random()

    def test_stable_fraction_range_and_determinism(self):
        value = stable_fraction("anything", salt="s")
        assert 0.0 <= value < 1.0
        assert value == stable_fraction("anything", salt="s")
        assert value != stable_fraction("anything", salt="other")


class TestChatClient:
    def test_lazy_model_resolution(self):
        client = ChatClient()
        model = client.resolve("sim-gpt-4")
        assert isinstance(model, SimulatedLLM)
        assert client.resolve("sim-gpt-4") is model

    def test_string_prompt_wrapped(self):
        client = ChatClient()
        result = client.chat_complete("sim-gpt-4", "hello there")
        assert result.text

    def test_clock_accumulates(self):
        client = ChatClient()
        client.chat_complete("sim-gpt-4", "hello")
        client.chat_complete("sim-gpt-4", "again")
        assert client.clock.elapsed_s > 0

    def test_stats_recorded(self):
        client = ChatClient()
        client.chat_complete("sim-gpt-4", "hello")
        assert client.stats.calls == 1
        assert client.stats.prompt_tokens > 0

    def test_message_roles_validated(self):
        with pytest.raises(ValueError):
            ChatMessage("wizard", "cast a spell")

    def test_empty_messages_rejected(self):
        with pytest.raises(ValueError):
            SimulatedLLM().complete([])


class TestKnowledgeBase:
    def test_register_and_find_task(self):
        knowledge = KnowledgeBase()
        implementation = TaskImplementation(
            key="Do the thing with 'x'",
            parameters=["x"],
            python_fn=lambda x: x,
            python_body="return x",
            ts_body="return x;",
        )
        knowledge.register_task(implementation)
        assert knowledge.find_task("do the thing with 'x'.") is implementation
        assert knowledge.find_task("unknown") is None

    def test_clear(self):
        knowledge = KnowledgeBase()
        knowledge.register_task(
            TaskImplementation("k", [], lambda: 1, "return 1", "return 1;")
        )
        knowledge.clear()
        assert knowledge.find_task("k") is None

    def test_global_knowledge_has_builtin_catalog(self):
        from repro.llm import global_knowledge

        knowledge = global_knowledge()
        assert knowledge.find_task("Reverse the string 's'.") is not None
        assert knowledge.find_task("Check if 'n' is a prime number.") is not None
