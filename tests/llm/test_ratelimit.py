"""Simulated provider-side rate limiting and the client's backoff path.

The limiter is a GCRA per model on the virtual clock: bursts are
admitted, sustained over-rate traffic is refused with a Retry-After
hint, and a caller that charges the hint to its clock always conforms
on retry.  Without a scheduler, ``ChatClient`` falls back to naive
exponential backoff around that hint -- the baseline the scheduler's
admission control is measured against.
"""

import pytest

from repro.errors import ConfigError, RateLimitError
from repro.llm import ChatClient, QUIET, SimulatedRateLimit
from repro.llm.client import RATE_LIMIT_BACKOFF_BASE

MODEL = "sim-gpt-4"
PROMPT = "Calculate the factorial of 5."


class TestSimulatedRateLimit:
    def limit(self, **overrides) -> SimulatedRateLimit:
        defaults = dict(requests_per_minute=60, burst=2, min_retry_after_s=5.0)
        defaults.update(overrides)
        return SimulatedRateLimit(**defaults)

    def test_burst_admits_then_refuses(self):
        limit = self.limit()
        for _ in range(3):
            limit.check(MODEL, 0.0)  # the burst allowance
        with pytest.raises(RateLimitError) as excinfo:
            limit.check(MODEL, 0.0)
        assert excinfo.value.model == MODEL
        assert excinfo.value.retry_after_s >= 5.0
        assert limit.refusals[MODEL] == 1

    def test_honouring_retry_after_always_conforms(self):
        limit = self.limit()
        now = 0.0
        for _ in range(20):
            try:
                limit.check(MODEL, now)
            except RateLimitError as refusal:
                now += refusal.retry_after_s  # wait it out, as charged waits do
                limit.check(MODEL, now)  # must succeed now

    def test_sustained_rate_is_never_refused(self):
        limit = self.limit()
        for k in range(50):
            limit.check(MODEL, float(k))  # exactly 60/min
        assert limit.refusals == {}

    def test_models_are_limited_independently(self):
        limit = self.limit()
        for _ in range(3):
            limit.check("sim-gpt-4", 0.0)
        limit.check("sim-gpt-3.5-turbo-16k", 0.0)  # untouched bucket

    def test_refusals_do_not_consume_capacity(self):
        limit = self.limit()
        for _ in range(3):
            limit.check(MODEL, 0.0)
        for _ in range(5):
            with pytest.raises(RateLimitError):
                limit.check(MODEL, 0.0)
        # The refusals did not advance the limiter: one interval later
        # the next request conforms exactly as if they never happened.
        limit.check(MODEL, 1.0)

    def test_reset_forgets_state(self):
        limit = self.limit()
        for _ in range(3):
            limit.check(MODEL, 0.0)
        limit.reset()
        limit.check(MODEL, 0.0)
        assert limit.refusals == {}

    def test_parameters_are_validated(self):
        with pytest.raises(ConfigError):
            SimulatedRateLimit(requests_per_minute=0)
        with pytest.raises(ConfigError):
            SimulatedRateLimit(requests_per_minute=60, burst=0)
        with pytest.raises(ConfigError):
            SimulatedRateLimit(requests_per_minute=60, min_retry_after_s=-1)


class TestClientBackoff:
    def test_unscheduled_client_waits_out_429s_and_completes(self):
        # 6/min = one request per 10 virtual seconds, well below the
        # ~4s/call simulated latency, so sequential calls genuinely
        # outpace the limit and draw refusals.
        limit = SimulatedRateLimit(
            requests_per_minute=6, burst=1, min_retry_after_s=5.0
        )
        client = ChatClient(noise_policy=QUIET, rate_limit=limit)
        for _ in range(4):
            client.chat_complete(MODEL, PROMPT)
        # Every request completed despite refusals along the way...
        assert client.stats.calls == 4
        assert client.stats.rate_limited > 0
        assert limit.refusals[MODEL] == client.stats.rate_limited
        # ...and each refusal's Retry-After was charged to the clock on
        # top of the completions' simulated latency.
        assert client.stats.throttle_wait_s >= 5.0 * client.stats.rate_limited
        assert client.clock.elapsed_s > client.stats.throttle_wait_s

    def test_backoff_is_exponential_per_request(self):
        refusals = [
            RateLimitError("nope", retry_after_s=2.0, model=MODEL) for _ in range(3)
        ]
        client = ChatClient(noise_policy=QUIET)
        for attempt, refusal in enumerate(refusals):
            client._backoff(MODEL, refusal, attempt)
        expected = sum(2.0 * RATE_LIMIT_BACKOFF_BASE**k for k in range(3))
        assert client.clock.elapsed_s == pytest.approx(expected)
        assert client.stats.rate_limited == 3

    def test_per_model_counters_track_the_totals(self):
        limit = SimulatedRateLimit(
            requests_per_minute=6, burst=1, min_retry_after_s=5.0
        )
        client = ChatClient(noise_policy=QUIET, rate_limit=limit)
        for _ in range(4):
            client.chat_complete(MODEL, PROMPT)
        per_model = client.stats.for_model(MODEL)
        assert per_model.rate_limited == client.stats.rate_limited
        assert per_model.throttle_wait_s == pytest.approx(
            client.stats.throttle_wait_s
        )

    def test_stats_reset_clears_throttle_counters(self):
        client = ChatClient(noise_policy=QUIET)
        client.stats.record_rate_limited(MODEL, 3.0)
        client.stats.record_throttle(MODEL, 1.0)
        client.stats.record_requeue(MODEL, 2.0)
        client.stats.record_deadline(MODEL)
        client.stats.reset()
        assert client.stats.rate_limited == 0
        assert client.stats.throttled == 0
        assert client.stats.requeued == 0
        assert client.stats.deadline_exceeded == 0
        assert client.stats.throttle_wait_s == 0.0
