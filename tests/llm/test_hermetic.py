"""The tier-1 hermeticity guard itself.

These tests prove the autouse socket block in ``tests/conftest.py``
actually intercepts every common path to the network, that its error
message tells the reader how to fix the test (cassettes, fakes, the
``live`` marker), and that the offline-by-default wire policy composes
with it -- so a provider misconfiguration fails on the *policy* layer
before a socket is ever touched.
"""

import socket
import urllib.request

import pytest

from repro.errors import TransportError
from repro.llm.http import HTTPRequest, UrllibTransport
from repro.llm.providers.wire import WirePolicy


class TestSocketBlock:
    def test_raw_socket_connect_is_blocked(self):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            with pytest.raises(RuntimeError, match="hermetic"):
                sock.connect(("93.184.216.34", 443))
        finally:
            sock.close()

    def test_create_connection_is_blocked(self):
        with pytest.raises(RuntimeError, match="hermetic"):
            socket.create_connection(("example.com", 80), timeout=1)

    def test_urllib_cannot_reach_the_wire(self):
        """The block is a RuntimeError, deliberately not an OSError:
        urllib must not wrap it into a URLError that retry machinery
        would then treat as a transient network fault."""
        with pytest.raises(RuntimeError, match="hermetic"):
            urllib.request.urlopen("http://example.com/", timeout=1)

    def test_urllib_transport_does_not_swallow_the_block(self):
        """A blocked socket surfaces loudly through UrllibTransport
        instead of being classified as a retryable TransportError --
        otherwise the HTTPClient would sleep-retry a test bug."""
        transport = UrllibTransport(timeout_s=1.0)
        request = HTTPRequest.json_request(
            "POST", "http://example.com/v1/chat", {"model": "m"}
        )
        with pytest.raises(RuntimeError, match="hermetic"):
            transport(request)

    def test_block_message_names_the_escape_hatches(self):
        with pytest.raises(RuntimeError) as info:
            socket.create_connection(("example.com", 80))
        message = str(info.value)
        assert "cassette" in message
        assert "@pytest.mark.live" in message
        assert "REPRO_LIVE=1" in message

    def test_localhost_is_blocked_too(self):
        """No carve-out for loopback: hermetic means hermetic."""
        with pytest.raises(RuntimeError, match="hermetic"):
            socket.create_connection(("127.0.0.1", 65535))


class TestOfflinePolicyLayer:
    """The wire policy fails closed before sockets even matter."""

    def test_default_policy_without_opt_ins_is_offline(self, monkeypatch):
        monkeypatch.delenv("REPRO_LIVE", raising=False)
        monkeypatch.delenv("REPRO_CASSETTE_DIR", raising=False)
        policy = WirePolicy()
        assert policy.live is False
        assert policy.cassette_dir is None

    def test_env_opt_in_is_exactly_the_string_one(self):
        assert WirePolicy(env={"REPRO_LIVE": "1"}).live is True
        for value in ("0", "", "true", "yes"):
            assert WirePolicy(env={"REPRO_LIVE": value}).live is False

    def test_offline_transport_raises_before_any_socket_work(self):
        transport = WirePolicy(live=False, cassette_dir=None, env={}).transport()
        request = HTTPRequest.json_request(
            "POST", "https://api.openai.com/v1/chat/completions", {"model": "m"}
        )
        with pytest.raises(TransportError) as info:
            transport(request)
        assert info.value.retryable is False


class TestLiveTestDiscipline:
    """Live tests must be double-gated: marker + environment flag."""

    def test_live_marker_is_registered(self, pytestconfig):
        markers = pytestconfig.getini("markers")
        assert any(line.startswith("live:") for line in markers)

    def test_live_wire_module_skips_itself_without_the_flag(self, monkeypatch):
        """Every test in the live-wire module carries a skipif guard
        keyed on REPRO_LIVE, so `pytest tests/llm/test_live_wire.py`
        on a dev box with no keys is a no-op, not a hang."""
        monkeypatch.delenv("REPRO_LIVE", raising=False)
        from tests.llm import test_live_wire

        assert test_live_wire.pytestmark  # module-level gating exists
        names = {
            getattr(mark, "name", None) for mark in test_live_wire.pytestmark
        }
        assert "live" in names
        skipifs = [
            mark
            for mark in test_live_wire.pytestmark
            if getattr(mark, "name", None) == "skipif"
        ]
        assert skipifs, "live module must carry a skipif on REPRO_LIVE"
