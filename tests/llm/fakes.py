"""Fault-injection fakes for the wire-transport stack.

:class:`ScriptedTransport` is a :class:`~repro.llm.http.Transport` that
plays back a script of outcomes -- responses, taxonomy errors, or
callables -- one per exchange, recording every request it saw.  It is
how the tests drive every branch of the transport error taxonomy
(timeouts, auth failures, 429 with and without ``Retry-After``, 5xx,
malformed bodies) through the *identical* code path live traffic takes.

Helpers build well-formed wire replies for each provider shape so
adapter tests read as data, not plumbing.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable

from repro.llm.http import HTTPRequest, HTTPResponse

Outcome = Any  # HTTPResponse | BaseException | Callable[[HTTPRequest], HTTPResponse]


class ScriptedTransport:
    """Replays a scripted sequence of outcomes, one per exchange.

    Each element of ``script`` is an :class:`HTTPResponse` to return,
    an exception instance to raise, or a callable taking the request.
    When the script runs dry the last element repeats (so a one-element
    script behaves like a constant responder).  Every request is
    appended to :attr:`requests` for assertions.
    """

    def __init__(self, script: Iterable[Outcome]) -> None:
        self.script: list[Outcome] = list(script)
        if not self.script:
            raise ValueError("ScriptedTransport needs at least one outcome")
        self.requests: list[HTTPRequest] = []
        self.calls = 0

    def __call__(self, request: HTTPRequest) -> HTTPResponse:
        self.requests.append(request)
        index = min(self.calls, len(self.script) - 1)
        self.calls += 1
        outcome = self.script[index]
        if isinstance(outcome, BaseException):
            raise outcome
        if callable(outcome) and not isinstance(outcome, HTTPResponse):
            return outcome(request)
        return outcome


def json_response(
    payload: Any,
    status: int = 200,
    headers: dict[str, str] | None = None,
    elapsed_s: float = 0.25,
) -> HTTPResponse:
    """An :class:`HTTPResponse` carrying ``payload`` as a JSON body."""
    merged = {"Content-Type": "application/json", **(headers or {})}
    return HTTPResponse(
        status, merged, json.dumps(payload, ensure_ascii=False).encode("utf-8"), elapsed_s
    )


def error_response(
    status: int,
    body: str = "",
    headers: dict[str, str] | None = None,
    elapsed_s: float = 0.05,
) -> HTTPResponse:
    """A non-2xx response with a plain-text body."""
    return HTTPResponse(status, dict(headers or {}), body.encode("utf-8"), elapsed_s)


def truncated_json_response(status: int = 200) -> HTTPResponse:
    """A success response whose JSON body was cut off mid-stream."""
    return HTTPResponse(
        status,
        {"Content-Type": "application/json"},
        b'{"choices": [{"message": {"content": "hal',
        0.05,
    )


def openai_reply(
    text: str, model: str = "gpt-test", prompt_tokens: int = 7, completion_tokens: int = 5
) -> dict:
    """A minimal, well-formed ``chat.completions`` response body."""
    return {
        "id": "chatcmpl-fake",
        "object": "chat.completion",
        "model": model,
        "choices": [
            {
                "index": 0,
                "message": {"role": "assistant", "content": text},
                "finish_reason": "stop",
            }
        ],
        "usage": {
            "prompt_tokens": prompt_tokens,
            "completion_tokens": completion_tokens,
        },
    }


def anthropic_reply(
    text: str, model: str = "claude-test", input_tokens: int = 7, output_tokens: int = 5
) -> dict:
    """A minimal, well-formed Messages API response body."""
    return {
        "id": "msg-fake",
        "type": "message",
        "role": "assistant",
        "model": model,
        "content": [{"type": "text", "text": text}],
        "stop_reason": "end_turn",
        "usage": {"input_tokens": input_tokens, "output_tokens": output_tokens},
    }


def gemini_reply(
    text: str, prompt_tokens: int = 7, completion_tokens: int = 5
) -> dict:
    """A minimal, well-formed ``generateContent`` response body."""
    return {
        "candidates": [
            {
                "content": {"role": "model", "parts": [{"text": text}]},
                "finishReason": "STOP",
            }
        ],
        "usageMetadata": {
            "promptTokenCount": prompt_tokens,
            "candidatesTokenCount": completion_tokens,
            "totalTokenCount": prompt_tokens + completion_tokens,
        },
    }


def no_sleep(_seconds: float) -> None:
    """A ``sleep`` stand-in so retry backoffs cost no real time."""


class SleepRecorder:
    """A ``sleep`` stand-in that records every requested backoff."""

    def __init__(self) -> None:
        self.waits: list[float] = []

    def __call__(self, seconds: float) -> None:
        self.waits.append(seconds)
