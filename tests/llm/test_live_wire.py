"""Opt-in live smoke tests against real provider endpoints.

Skipped by default (CI verifies this): they run only with
``REPRO_LIVE=1`` in the environment *and* the relevant API key set.
Each test makes one minimal completion and checks the adapter maps the
reply into a usable :class:`CompletionResult` -- no assertions on model
output content, which is nondeterministic by nature.

With ``REPRO_CASSETTE_DIR`` also set, these runs double as cassette
recorders (policy mode ``auto``): run once live, commit the redacted
recordings, and the same exchanges replay hermetically forever.
"""

import os

import pytest

from repro.llm.base import user_message
from repro.llm.providers import AnthropicProvider, GeminiProvider, OpenAIProvider

pytestmark = [
    pytest.mark.live,
    pytest.mark.skipif(
        os.environ.get("REPRO_LIVE") != "1",
        reason="live-wire tests require REPRO_LIVE=1",
    ),
]

PROMPT = [user_message("Reply with the single word: pong")]


def smoke(provider_class, model):
    provider = provider_class(None)
    result = provider.complete(model, PROMPT, 0.0)
    assert isinstance(result.text, str) and result.text.strip()
    assert result.usage.prompt_tokens > 0
    assert result.usage.completion_tokens > 0
    assert result.latency_s > 0
    assert result.model == model
    return result


def _live_but_missing(*env_vars: str) -> bool:
    """True only when live mode is on but the provider's key is absent.

    Keyed this way so that in the default (non-live) run every test
    reports the single module-level reason ``live-wire tests require
    REPRO_LIVE=1`` -- which CI greps for to prove the suite is inert.
    """
    if os.environ.get("REPRO_LIVE") != "1":
        return False
    return not any(os.environ.get(name) for name in env_vars)


@pytest.mark.skipif(
    _live_but_missing("OPENAI_API_KEY"), reason="OPENAI_API_KEY not set"
)
def test_openai_live_smoke():
    smoke(OpenAIProvider, "gpt-4o-mini")


@pytest.mark.skipif(
    _live_but_missing("ANTHROPIC_API_KEY"), reason="ANTHROPIC_API_KEY not set"
)
def test_anthropic_live_smoke():
    smoke(AnthropicProvider, "claude-3-5-haiku-20241022")


@pytest.mark.skipif(
    _live_but_missing("GEMINI_API_KEY", "GOOGLE_API_KEY"),
    reason="GEMINI_API_KEY / GOOGLE_API_KEY not set",
)
def test_gemini_live_smoke():
    smoke(GeminiProvider, "gemini-1.5-flash")
