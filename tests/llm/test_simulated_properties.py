"""Property-based tests of the simulated LLM against the public API.

The invariant: for any catalog task and randomized (valid) arguments, a
quiet model's direct answer through the full ask/parse pipeline equals
the task's reference function -- i.e. prompt synthesis, the simulated
model's prompt re-parsing, and answer extraction compose to the identity
on task semantics.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.types as t
from repro.core import config_override, define
from repro.llm import ChatClient, QUIET

_numbers = st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=8)
_small_text = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz XYZ", min_size=0, max_size=20
)

_quiet_client = ChatClient(noise_policy=QUIET)


def _ask_quiet(return_type, template, **args):
    with config_override(client=_quiet_client, cache_dir=None):
        return define(return_type, template)(**args)


@given(_numbers)
@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_sort_matches_reference(ns):
    value = _ask_quiet(t.list(t.int), "Sort the numbers {{ns}} in ascending order.", ns=ns)
    assert value == sorted(ns)


@given(_numbers)
@settings(max_examples=25, deadline=None)
def test_sum_matches_reference(ns):
    value = _ask_quiet(t.int, "Calculate the sum of all numbers in {{ns}}.", ns=ns)
    assert value == sum(ns)


@given(_small_text)
@settings(max_examples=25, deadline=None)
def test_reverse_matches_reference(s):
    value = _ask_quiet(t.str, "Reverse the string {{s}}.", s=s)
    assert value == s[::-1]


@given(st.integers(min_value=0, max_value=12))
@settings(max_examples=13, deadline=None)
def test_factorial_matches_reference(n):
    import math

    value = _ask_quiet(t.int, "Calculate the factorial of {{n}}.", n=n)
    assert value == math.factorial(n)


@given(_numbers, st.integers(min_value=-50, max_value=50))
@settings(max_examples=25, deadline=None)
def test_count_occurrences_matches_reference(xs, x):
    value = _ask_quiet(
        t.int, "Count the number of occurrences of {{x}} in {{xs}}.", xs=xs, x=x
    )
    assert value == xs.count(x)


@given(_numbers)
@settings(max_examples=20, deadline=None)
def test_compiled_function_agrees_with_direct_answer(ns):
    """The unified-interface invariant: direct answers and compiled code
    compute the same function."""
    with config_override(client=_quiet_client, cache_dir=None):
        definition = define(
            t.list(t.int),
            "Compute the running sum of {{ns}}.",
            test_examples=[({"ns": [1, 2, 3]}, [1, 3, 6])],
        )
        direct = definition(ns=ns)
        compiled = definition.compile(use_cache=False)
        assert compiled(ns=ns) == direct
