"""Cassette record/replay: round-trips, key stability, strict misses, redaction.

The contract under test is the one that keeps tier-1 hermetic while the
identical provider code path can hit live backends: record once through
any transport, replay forever from disk with sockets blocked, and never
let a credential reach a recorded file.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import CassetteMissError, ConfigError, TransportError
from repro.llm.cassette import (
    CASSETTE_FORMAT_VERSION,
    REDACTED,
    CassetteTransport,
    cassette_key,
    redact_headers,
    redact_url,
)
from repro.llm.http import HTTPClient, HTTPRequest, HTTPResponse

from tests.llm.fakes import ScriptedTransport, json_response


def wire_request(
    body=None, url="https://api.example.test/v1/chat", headers=None
) -> HTTPRequest:
    payload = {"model": "gpt-test", "messages": [{"role": "user", "content": "hi"}]}
    return HTTPRequest.json_request("POST", url, body or payload, headers)


class TestRoundTrip:
    def test_record_then_replay_returns_identical_response(self, tmp_path):
        reply = json_response({"answer": 42}, headers={"X-Request-Id": "abc"}, elapsed_s=0.9)
        recorder = CassetteTransport(
            tmp_path, mode="record", inner=ScriptedTransport([reply])
        )
        recorded = recorder(wire_request())
        assert recorder.recorded == 1
        assert len(recorder) == 1

        replayer = CassetteTransport(tmp_path)  # strict replay, no inner
        replayed = replayer(wire_request())
        assert replayer.replayed == 1
        assert replayed.status == recorded.status
        assert replayed.body == recorded.body  # byte-identical
        assert replayed.header("X-Request-Id") == "abc"
        assert replayed.elapsed_s == pytest.approx(0.9)  # recorded latency survives

    def test_auto_mode_records_misses_then_replays_hits(self, tmp_path):
        inner = ScriptedTransport([json_response({"n": 1})])
        cassette = CassetteTransport(tmp_path, mode="auto", inner=inner)
        cassette(wire_request())
        cassette(wire_request())
        assert cassette.recorded == 1
        assert cassette.replayed == 1
        assert inner.calls == 1  # the second exchange never hit the inner transport

    def test_replay_through_http_client_end_to_end(self, tmp_path):
        recorder = CassetteTransport(
            tmp_path, mode="record", inner=ScriptedTransport([json_response({"ok": True})])
        )
        recorder(wire_request())
        payload, response = HTTPClient(CassetteTransport(tmp_path)).send(wire_request())
        assert payload == {"ok": True}
        assert response.status == 200

    def test_record_mode_overwrites_stale_recordings(self, tmp_path):
        first = CassetteTransport(
            tmp_path, mode="record", inner=ScriptedTransport([json_response({"rev": 1})])
        )
        first(wire_request())
        second = CassetteTransport(
            tmp_path, mode="record", inner=ScriptedTransport([json_response({"rev": 2})])
        )
        second(wire_request())
        assert len(second) == 1
        assert json.loads(CassetteTransport(tmp_path)(wire_request()).body) == {"rev": 2}

    def test_binary_response_body_survives_base64_round_trip(self, tmp_path):
        blob = bytes(range(256))
        recorder = CassetteTransport(
            tmp_path, mode="record", inner=ScriptedTransport([HTTPResponse(200, {}, blob, 0.1)])
        )
        recorder(wire_request())
        assert CassetteTransport(tmp_path)(wire_request()).body == blob


class TestKeyStability:
    def test_key_ignores_headers_and_body_key_order(self):
        base = wire_request()
        with_auth = wire_request(headers={"Authorization": "Bearer sk-secret"})
        assert cassette_key(base) == cassette_key(with_auth)

        shuffled = HTTPRequest(
            "POST",
            base.url,
            dict(base.headers),
            b'{"messages": [{"content": "hi", "role": "user"}], "model": "gpt-test"}',
        )
        assert cassette_key(base) == cassette_key(shuffled)

    def test_key_distinguishes_distinct_requests(self):
        assert cassette_key(wire_request()) != cassette_key(
            wire_request(body={"model": "gpt-test", "messages": []})
        )
        assert cassette_key(wire_request()) != cassette_key(
            wire_request(url="https://api.example.test/v2/chat")
        )

    def test_key_is_stable_across_processes(self, tmp_path):
        """Same request hashes identically in a fresh interpreter.

        This is what makes recordings shareable between machines and CI
        runs: no per-process salt (PYTHONHASHSEED) may leak into keys.
        """
        here = cassette_key(wire_request())
        script = (
            "from repro.llm.cassette import cassette_key\n"
            "from repro.llm.http import HTTPRequest\n"
            "request = HTTPRequest.json_request(\n"
            "    'POST', 'https://api.example.test/v1/chat',\n"
            "    {'model': 'gpt-test', 'messages': [{'role': 'user', 'content': 'hi'}]},\n"
            ")\n"
            "print(cassette_key(request))\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "12345"},
            check=True,
        )
        assert result.stdout.strip() == here

    def test_path_for_names_files_by_key(self, tmp_path):
        cassette = CassetteTransport(tmp_path)
        request = wire_request()
        assert cassette.path_for(request) == tmp_path / f"{cassette_key(request)}.json"


class TestStrictMisses:
    def test_replay_miss_raises_cassette_miss_error(self, tmp_path):
        cassette = CassetteTransport(tmp_path)
        with pytest.raises(CassetteMissError) as info:
            cassette(wire_request())
        message = str(info.value)
        assert info.value.key == cassette_key(wire_request())
        assert "REPRO_LIVE=1" in message  # the fix is named in the error
        assert str(tmp_path) in message

    def test_miss_is_not_retried_by_the_http_client(self, tmp_path):
        calls = []
        cassette = CassetteTransport(tmp_path)

        def counting(request):
            calls.append(request)
            return cassette(request)

        with pytest.raises(CassetteMissError):
            HTTPClient(counting, max_attempts=3).send(wire_request())
        assert len(calls) == 1  # a miss is deterministic; retrying cannot help

    def test_corrupt_recording_is_a_miss_not_a_crash(self, tmp_path):
        cassette = CassetteTransport(tmp_path)
        path = cassette.path_for(wire_request())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"version": ', encoding="utf-8")  # truncated JSON
        with pytest.raises(CassetteMissError):
            cassette(wire_request())

    def test_stale_format_version_is_a_miss(self, tmp_path):
        recorder = CassetteTransport(
            tmp_path, mode="record", inner=ScriptedTransport([json_response({})])
        )
        request = wire_request()
        recorder(request)
        path = recorder.path_for(request)
        raw = json.loads(path.read_text(encoding="utf-8"))
        raw["version"] = CASSETTE_FORMAT_VERSION + 1
        path.write_text(json.dumps(raw), encoding="utf-8")
        with pytest.raises(CassetteMissError):
            CassetteTransport(tmp_path)(request)

    def test_record_mode_without_inner_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            CassetteTransport(tmp_path, mode="record")

    def test_unknown_mode_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            CassetteTransport(tmp_path, mode="playback")

    def test_auto_miss_without_inner_is_a_transport_error(self, tmp_path):
        with pytest.raises(TransportError):
            CassetteTransport(tmp_path, mode="auto")(wire_request())


class TestRedaction:
    SECRET = "sk-live-abc123-DO-NOT-LEAK"

    def recorded_file(self, tmp_path, request) -> dict:
        recorder = CassetteTransport(
            tmp_path,
            mode="record",
            inner=ScriptedTransport(
                [json_response({"ok": True}, headers={"Set-Cookie": "session=top-secret"})]
            ),
        )
        recorder(request)
        return json.loads(recorder.path_for(request).read_text(encoding="utf-8"))

    @pytest.mark.parametrize(
        "header",
        ["Authorization", "x-api-key", "X-Goog-Api-Key", "api-key", "OpenAI-Organization"],
    )
    def test_api_key_headers_never_reach_disk(self, tmp_path, header):
        raw = self.recorded_file(tmp_path, wire_request(headers={header: self.SECRET}))
        assert raw["request"]["headers"][header] == REDACTED
        assert self.SECRET not in json.dumps(raw)

    def test_response_cookie_headers_are_redacted_too(self, tmp_path):
        raw = self.recorded_file(tmp_path, wire_request())
        assert raw["response"]["headers"]["Set-Cookie"] == REDACTED
        assert "top-secret" not in json.dumps(raw)

    def test_query_parameter_keys_are_redacted_in_stored_urls(self, tmp_path):
        url = f"https://api.example.test/v1/models?key={self.SECRET}&alt=json"
        raw = self.recorded_file(tmp_path, wire_request(url=url))
        stored_url = raw["request"]["url"]
        assert self.SECRET not in stored_url
        assert "alt=json" in stored_url  # non-secret params survive
        assert self.SECRET not in json.dumps(raw)

    def test_key_matches_with_and_without_query_secret(self):
        """A keyless replay run must hit recordings made with a key."""
        keyed = wire_request(url=f"https://api.example.test/v1/chat?key={self.SECRET}")
        keyless = wire_request(url=f"https://api.example.test/v1/chat?key={REDACTED}")
        assert cassette_key(keyed) == cassette_key(keyless)

    def test_redact_helpers_preserve_non_secrets(self):
        headers = {"Content-Type": "application/json", "Authorization": "Bearer x"}
        cleaned = redact_headers(headers)
        assert cleaned["Content-Type"] == "application/json"
        assert cleaned["Authorization"] == REDACTED
        assert headers["Authorization"] == "Bearer x"  # input not mutated
        assert redact_url("https://x.test/path") == "https://x.test/path"
