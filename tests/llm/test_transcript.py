"""Tests for transcript recording at the model boundary."""

import json

import repro.types as t
from repro.core import config_override, define
from repro.llm import ChatClient, QUIET
from repro.llm.transcript import TranscriptRecorder


def _client_with_recorder(max_exchanges=None):
    recorder = TranscriptRecorder(max_exchanges)
    return ChatClient(noise_policy=QUIET, recorder=recorder), recorder


class TestRecording:
    def test_records_every_exchange(self):
        client, recorder = _client_with_recorder()
        client.chat_complete("sim-gpt-4", "hello")
        client.chat_complete("sim-gpt-4", "again")
        assert len(recorder) == 2
        assert recorder.exchanges[0].prompt == "hello"
        assert recorder.exchanges[1].index == 1

    def test_captures_usage_and_latency(self):
        client, recorder = _client_with_recorder()
        client.chat_complete("sim-gpt-4", "hello")
        exchange = recorder.exchanges[0]
        assert exchange.latency_s > 0
        assert exchange.prompt_tokens > 0
        assert exchange.model == "sim-gpt-4"

    def test_bounded_recorder_drops_oldest(self):
        client, recorder = _client_with_recorder(max_exchanges=2)
        for text in ("a", "b", "c"):
            client.chat_complete("sim-gpt-4", text)
        assert len(recorder) == 2
        assert recorder.exchanges[0].prompt == "b"

    def test_clear(self):
        client, recorder = _client_with_recorder()
        client.chat_complete("sim-gpt-4", "hello")
        recorder.clear()
        assert len(recorder) == 0

    def test_no_recorder_no_overhead(self):
        client = ChatClient(noise_policy=QUIET)
        client.chat_complete("sim-gpt-4", "hello")  # must not raise
        assert client.recorder is None


class TestRendering:
    def test_jsonl_round_trips(self):
        client, recorder = _client_with_recorder()
        client.chat_complete("sim-gpt-4", "hello")
        lines = recorder.to_jsonl().splitlines()
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["prompt"] == "hello"
        assert payload["model"] == "sim-gpt-4"

    def test_render_elides_long_payloads(self):
        client, recorder = _client_with_recorder()
        client.chat_complete("sim-gpt-4", "x" * 2000)
        text = recorder.render(max_chars=100)
        assert "chars elided" in text
        assert "exchange #0" in text


class TestPipelineVisibility:
    def test_full_ask_pipeline_recorded(self):
        """The recorder sees the exact Listing-2 prompt and JSON reply."""
        client, recorder = _client_with_recorder()
        with config_override(client=client, cache_dir=None):
            define(t.int, "Calculate the factorial of {{n}}.")(n=5)
        assert len(recorder) == 1
        exchange = recorder.exchanges[0]
        assert "You are a helpful assistant" in exchange.prompt
        assert "where 'n' = 5" in exchange.prompt
        assert "```json" in exchange.response

    def test_retries_visible_as_separate_exchanges(self):
        from repro.llm import NoisePolicy

        recorder = TranscriptRecorder()
        client = ChatClient(
            noise_policy=NoisePolicy(direct_corruption_rate=1.0, seed=4),
            recorder=recorder,
        )
        with config_override(client=client, cache_dir=None, max_retries=2):
            try:
                define(t.int, "What is 7 times 8?")()
            except Exception:  # noqa: BLE001 - the corruption may win
                pass
        assert len(recorder) >= 2  # original + at least one feedback retry
        assert "Your previous response was:" in recorder.exchanges[1].prompt
