"""Wire adapters: marshalling, registry routing, scheduler integration.

Three contracts:

* each adapter builds its provider's documented wire shape and parses
  the documented reply shape into a ``CompletionResult``;
* the registry routes ``gpt-``/``claude-``/``gemini-`` model names to
  the adapters while staying hermetic by default (offline transport);
* transport faults flow into the existing scheduler machinery -- 429s
  and 5xx requeue, ``ClientStats`` throttle counters tally -- exactly
  as they do for the simulated provider.
"""

import pytest

from repro.core.scheduler import RequestScheduler, SchedulerPolicy
from repro.errors import (
    AuthError,
    MalformedResponseError,
    ServerError,
    TransportError,
)
from repro.llm import ChatClient, WirePolicy
from repro.llm.base import ChatMessage, user_message
from repro.llm.http import HTTPClient
from repro.llm.providers import (
    AnthropicProvider,
    GeminiProvider,
    OpenAIProvider,
    OpenAIStubProvider,
    Provider,
    WIRE_PROVIDERS,
    resolve_factory,
)

from tests.llm.fakes import (
    ScriptedTransport,
    anthropic_reply,
    error_response,
    gemini_reply,
    json_response,
    no_sleep,
    openai_reply,
    truncated_json_response,
)

OFFLINE = WirePolicy(live=False, cassette_dir=None, env={})

AMBIENT_ENV_VARS = [
    "OPENAI_API_KEY",
    "OPENAI_BASE_URL",
    "ANTHROPIC_API_KEY",
    "ANTHROPIC_BASE_URL",
    "GEMINI_API_KEY",
    "GEMINI_BASE_URL",
    "GOOGLE_API_KEY",
]


@pytest.fixture(autouse=True)
def _no_ambient_provider_env(monkeypatch):
    """Strip provider env vars so defaults are what's under test."""
    for name in AMBIENT_ENV_VARS:
        monkeypatch.delenv(name, raising=False)

CONVERSATION = [
    ChatMessage("system", "You are terse."),
    user_message("What is 6 times 7?"),
    ChatMessage("assistant", "42."),
    user_message("And squared?"),
]


def provider_with(provider_class, script, **kwargs):
    transport = ScriptedTransport(script)
    provider = provider_class(
        None,
        api_key="test-key",
        policy=OFFLINE,
        http=HTTPClient(transport, sleep=no_sleep),
        **kwargs,
    )
    return provider, transport


class TestRegistryRouting:
    @pytest.mark.parametrize(
        "model,provider_class",
        [
            ("gpt-4o-mini", OpenAIProvider),
            ("openai-gpt-4o", OpenAIProvider),
            ("claude-3-5-haiku-20241022", AnthropicProvider),
            ("gemini-1.5-flash", GeminiProvider),
        ],
    )
    def test_wire_prefixes_resolve_to_adapters(self, model, provider_class):
        prefix, factory = resolve_factory(model)
        assert factory is provider_class
        assert prefix in WIRE_PROVIDERS

    def test_simulated_fallback_is_untouched(self):
        _, factory = resolve_factory("sim-gpt-4")
        assert factory is not OpenAIProvider
        _, fallback = resolve_factory("some-unknown-model")
        assert fallback.__name__ == "SimulatedProvider"

    def test_wire_providers_satisfy_the_protocol(self):
        for provider_class in (OpenAIProvider, AnthropicProvider, GeminiProvider):
            provider = provider_class(None, api_key="k", policy=OFFLINE)
            assert isinstance(provider, Provider)
            assert provider.deterministic is False

    def test_default_wire_provider_is_offline_not_live(self):
        client = ChatClient(wire_policy=OFFLINE)
        provider = client.provider_for("gpt-4o-mini")
        with pytest.raises(TransportError) as info:
            provider.complete("gpt-4o-mini", [user_message("hi")], 0.0)
        assert "REPRO_LIVE" in str(info.value)
        assert "REPRO_CASSETTE_DIR" in str(info.value)


class TestOpenAIAdapter:
    def test_request_shape(self):
        provider, transport = provider_with(
            OpenAIProvider, [json_response(openai_reply("1764."))]
        )
        provider.complete("gpt-4o-mini", CONVERSATION, 0.3)
        sent = transport.requests[0]
        assert sent.method == "POST"
        assert sent.url == "https://api.openai.com/v1/chat/completions"
        assert sent.headers["Authorization"] == "Bearer test-key"
        body = sent.json()
        assert body["model"] == "gpt-4o-mini"
        assert body["temperature"] == 0.3
        assert body["messages"][0] == {"role": "system", "content": "You are terse."}
        assert body["messages"][-1] == {"role": "user", "content": "And squared?"}

    def test_response_parsing_and_usage(self):
        provider, _ = provider_with(
            OpenAIProvider,
            [json_response(openai_reply("1764.", prompt_tokens=21, completion_tokens=3), elapsed_s=0.8)],
        )
        result = provider.complete("gpt-4o-mini", CONVERSATION, 0.3)
        assert result.text == "1764."
        assert result.usage.prompt_tokens == 21
        assert result.usage.completion_tokens == 3
        assert result.latency_s == pytest.approx(0.8)
        assert result.model == "gpt-4o-mini"

    def test_openai_namespace_prefix_is_stripped_on_the_wire(self):
        provider, transport = provider_with(
            OpenAIProvider, [json_response(openai_reply("ok"))]
        )
        result = provider.complete("openai-gpt-4o", CONVERSATION, 0.0)
        assert transport.requests[0].json()["model"] == "gpt-4o"
        assert result.model == "openai-gpt-4o"  # local name kept for stats

    def test_base_url_override(self):
        provider = OpenAIProvider(
            None,
            api_key="k",
            base_url="http://localhost:8000/v1/",
            policy=OFFLINE,
            http=HTTPClient(ScriptedTransport([json_response(openai_reply("x"))])),
        )
        provider.complete("gpt-local", [user_message("q")], 0.0)
        assert provider.http.transport.requests[0].url == (
            "http://localhost:8000/v1/chat/completions"
        )

    def test_missing_choices_is_malformed_response(self):
        provider, _ = provider_with(OpenAIProvider, [json_response({"usage": {}})])
        with pytest.raises(MalformedResponseError):
            provider.complete("gpt-4o-mini", CONVERSATION, 0.0)


class TestAnthropicAdapter:
    def test_request_shape_splits_system(self):
        provider, transport = provider_with(
            AnthropicProvider, [json_response(anthropic_reply("1764."))]
        )
        provider.complete("claude-3-5-haiku", CONVERSATION, 0.7)
        sent = transport.requests[0]
        assert sent.url == "https://api.anthropic.com/v1/messages"
        assert sent.headers["x-api-key"] == "test-key"
        assert sent.headers["anthropic-version"] == "2023-06-01"
        body = sent.json()
        assert body["system"] == "You are terse."
        assert body["max_tokens"] == AnthropicProvider.max_tokens
        assert all(m["role"] != "system" for m in body["messages"])
        assert body["messages"][0] == {"role": "user", "content": "What is 6 times 7?"}

    def test_response_parsing_joins_text_blocks(self):
        reply = anthropic_reply("17")
        reply["content"].append({"type": "text", "text": "64."})
        reply["content"].append({"type": "tool_use", "id": "x", "name": "n", "input": {}})
        provider, _ = provider_with(AnthropicProvider, [json_response(reply)])
        result = provider.complete("claude-3-5-haiku", CONVERSATION, 0.0)
        assert result.text == "1764."
        assert result.usage.prompt_tokens == 7
        assert result.usage.completion_tokens == 5

    def test_missing_content_is_malformed_response(self):
        provider, _ = provider_with(AnthropicProvider, [json_response({"usage": {}})])
        with pytest.raises(MalformedResponseError):
            provider.complete("claude-3-5-haiku", CONVERSATION, 0.0)


class TestGeminiAdapter:
    def test_request_shape_maps_roles_and_system_instruction(self):
        provider, transport = provider_with(
            GeminiProvider, [json_response(gemini_reply("1764."))]
        )
        provider.complete("gemini-1.5-flash", CONVERSATION, 0.2)
        sent = transport.requests[0]
        assert sent.url.endswith("/models/gemini-1.5-flash:generateContent")
        assert sent.headers["x-goog-api-key"] == "test-key"
        assert "key=" not in sent.url  # secrets ride in headers, never URLs
        body = sent.json()
        assert body["systemInstruction"] == {"parts": [{"text": "You are terse."}]}
        roles = [content["role"] for content in body["contents"]]
        assert roles == ["user", "model", "user"]
        assert body["generationConfig"] == {"temperature": 0.2}

    def test_response_parsing_concatenates_parts(self):
        reply = gemini_reply("17")
        reply["candidates"][0]["content"]["parts"].append({"text": "64."})
        provider, _ = provider_with(GeminiProvider, [json_response(reply)])
        result = provider.complete("gemini-1.5-flash", CONVERSATION, 0.0)
        assert result.text == "1764."

    def test_google_api_key_fallback(self, monkeypatch):
        monkeypatch.delenv("GEMINI_API_KEY", raising=False)
        monkeypatch.setenv("GOOGLE_API_KEY", "google-key")
        provider = GeminiProvider(None, policy=OFFLINE)
        assert provider.api_key() == "google-key"

    def test_missing_candidates_is_malformed_response(self):
        provider, _ = provider_with(GeminiProvider, [json_response({"usageMetadata": {}})])
        with pytest.raises(MalformedResponseError):
            provider.complete("gemini-1.5-flash", CONVERSATION, 0.0)


class TestKeyResolution:
    def test_env_key_is_used(self, monkeypatch):
        monkeypatch.setenv("OPENAI_API_KEY", "from-env")
        provider = OpenAIProvider(None, policy=OFFLINE)
        assert provider.api_key() == "from-env"

    def test_missing_key_in_live_mode_is_auth_error(self, monkeypatch):
        monkeypatch.delenv("OPENAI_API_KEY", raising=False)
        live = WirePolicy(live=True, cassette_dir=None, env={"REPRO_LIVE": "1"})
        provider = OpenAIProvider(
            None, policy=live, http=HTTPClient(ScriptedTransport([json_response({})]))
        )
        with pytest.raises(AuthError) as info:
            provider.api_key()
        assert "OPENAI_API_KEY" in str(info.value)

    def test_missing_key_in_replay_mode_gets_placeholder(self, monkeypatch):
        monkeypatch.delenv("OPENAI_API_KEY", raising=False)
        provider = OpenAIProvider(None, policy=OFFLINE)
        assert provider.api_key()  # placeholder, no raise


class TestSchedulerIntegration:
    """Transport faults drive the same requeue machinery as simulation."""

    def wired_client(self, provider_class, model, script) -> ChatClient:
        client = ChatClient(wire_policy=OFFLINE)
        provider, _ = provider_with(provider_class, script)
        client._providers[model.split("-")[0] + "-"] = provider
        return client

    def test_429_with_retry_after_requeues_and_charges_hint(self):
        client = self.wired_client(
            OpenAIProvider,
            "gpt-test",
            [
                error_response(429, headers={"Retry-After": "9"}),
                json_response(openai_reply("recovered")),
            ],
        )
        scheduler = RequestScheduler(SchedulerPolicy(max_requeues=3))
        result = client.chat_complete("gpt-test", "hello", scheduler=scheduler)
        assert result.text == "recovered"
        stats = client.stats
        assert stats.rate_limited == 1
        assert stats.requeued == 1
        assert stats.throttle_wait_s == pytest.approx(9.0)
        assert client.clock.elapsed_s == pytest.approx(9.0 + result.latency_s)

    def test_429_without_retry_after_uses_default_penalty(self):
        client = self.wired_client(
            OpenAIProvider,
            "gpt-test",
            [error_response(429), json_response(openai_reply("ok"))],
        )
        scheduler = RequestScheduler(SchedulerPolicy(max_requeues=3))
        client.chat_complete("gpt-test", "hello", scheduler=scheduler)
        assert client.stats.throttle_wait_s == pytest.approx(1.0)

    def test_5xx_requeues_through_scheduler_and_counts(self):
        client = self.wired_client(
            OpenAIProvider,
            "gpt-test",
            [
                error_response(503, headers={"Retry-After": "5"}),
                error_response(503, headers={"Retry-After": "5"}),
                error_response(503, headers={"Retry-After": "5"}),
                json_response(openai_reply("alive")),
            ],
        )
        # max_attempts=1 in the provider's HTTPClient would be needed to
        # see each 5xx individually; with the default the transport
        # itself retries.  Either way the scheduler path must cope: here
        # the transport's internal retries consume the first three
        # faults and the call succeeds without a scheduler requeue.
        scheduler = RequestScheduler(SchedulerPolicy(max_requeues=3))
        result = client.chat_complete("gpt-test", "hello", scheduler=scheduler)
        assert result.text == "alive"

    def test_5xx_that_survives_transport_retries_requeues(self):
        provider, transport = provider_with(
            OpenAIProvider,
            [
                error_response(500, "boom"),
                error_response(500, "boom"),
                error_response(500, "boom"),
                json_response(openai_reply("back")),
            ],
        )
        provider.http.max_attempts = 3  # transport burns its budget first
        client = ChatClient(wire_policy=OFFLINE)
        client._providers["gpt-"] = provider
        scheduler = RequestScheduler(SchedulerPolicy(max_requeues=2))
        result = client.chat_complete("gpt-test", "hello", scheduler=scheduler)
        assert result.text == "back"
        assert client.stats.server_errors == 1
        assert client.stats.requeued == 1
        assert transport.calls == 4

    def test_server_error_exhausts_requeue_budget_and_propagates(self):
        provider, _ = provider_with(OpenAIProvider, [error_response(500, "down")])
        client = ChatClient(wire_policy=OFFLINE)
        client._providers["gpt-"] = provider
        scheduler = RequestScheduler(SchedulerPolicy(max_requeues=1))
        with pytest.raises(ServerError):
            client.chat_complete("gpt-test", "hello", scheduler=scheduler)
        assert client.stats.server_errors == 2  # initial + one requeue
        assert client.stats.requeued == 1

    def test_unscheduled_429_falls_back_to_naive_backoff(self):
        client = self.wired_client(
            OpenAIProvider,
            "gpt-test",
            [
                error_response(429, headers={"Retry-After": "2"}),
                error_response(429, headers={"Retry-After": "2"}),
                json_response(openai_reply("eventually")),
            ],
        )
        result = client.chat_complete("gpt-test", "hello")
        assert result.text == "eventually"
        assert client.stats.rate_limited == 2
        # Naive exponential backoff: 2 * 2^0 + 2 * 2^1 virtual seconds.
        assert client.stats.throttle_wait_s == pytest.approx(6.0)

    def test_malformed_body_propagates_through_scheduler(self):
        client = self.wired_client(
            OpenAIProvider, "gpt-test", [truncated_json_response()]
        )
        scheduler = RequestScheduler(SchedulerPolicy())
        with pytest.raises(MalformedResponseError):
            client.chat_complete("gpt-test", "hello", scheduler=scheduler)

    def test_adaptive_window_shrinks_on_wire_429(self):
        client = self.wired_client(
            OpenAIProvider,
            "gpt-test",
            [error_response(429), json_response(openai_reply("ok"))],
        )
        scheduler = RequestScheduler(SchedulerPolicy(initial_window=8))
        client.chat_complete("gpt-test", "hello", scheduler=scheduler)
        assert scheduler.adaptive_state("gpt-test").window == pytest.approx(4.0)


class TestCassetteAcceptance:
    """The ISSUE acceptance criterion: a recorded cassette replays
    byte-identically through the OpenAI, Anthropic, and Gemini adapters
    -- the same ``CompletionResult`` comes back with zero live HTTP
    calls (sockets are blocked by the autouse conftest guard)."""

    CASES = [
        (OpenAIProvider, "gpt-4o-mini", openai_reply("recorded answer")),
        (AnthropicProvider, "claude-3-5-haiku", anthropic_reply("recorded answer")),
        (GeminiProvider, "gemini-1.5-flash", gemini_reply("recorded answer")),
    ]

    @pytest.mark.parametrize(
        "provider_class,model,reply",
        CASES,
        ids=[case[0].name for case in CASES],
    )
    def test_record_then_replay_yields_identical_completion(
        self, tmp_path, provider_class, model, reply
    ):
        from repro.llm.cassette import CassetteTransport

        inner = ScriptedTransport([json_response(reply, elapsed_s=0.6)])
        recorder = provider_class(
            None,
            api_key="recording-key",
            policy=OFFLINE,
            http=HTTPClient(CassetteTransport(tmp_path, mode="record", inner=inner)),
        )
        recorded = recorder.complete(model, CONVERSATION, 0.1)
        assert inner.calls == 1

        # A fresh provider, wired only through the policy: replay mode,
        # no API key, no inner transport -- nothing can reach the wire.
        replayer = provider_class(
            None,
            policy=WirePolicy(live=False, cassette_dir=str(tmp_path), env={}),
        )
        replayed = replayer.complete(model, CONVERSATION, 0.1)

        assert inner.calls == 1  # zero additional live exchanges
        assert replayed.text == recorded.text
        assert replayed.model == recorded.model
        assert replayed.usage.prompt_tokens == recorded.usage.prompt_tokens
        assert replayed.usage.completion_tokens == recorded.usage.completion_tokens
        assert replayed.latency_s == pytest.approx(recorded.latency_s)

    def test_replay_is_deterministic_across_provider_instances(self, tmp_path):
        from repro.llm.cassette import CassetteTransport

        inner = ScriptedTransport([json_response(openai_reply("stable"))])
        recorder = OpenAIProvider(
            None,
            api_key="k",
            policy=OFFLINE,
            http=HTTPClient(CassetteTransport(tmp_path, mode="record", inner=inner)),
        )
        recorder.complete("gpt-4o-mini", CONVERSATION, 0.0)
        policy = WirePolicy(live=False, cassette_dir=str(tmp_path), env={})
        results = [
            OpenAIProvider(None, policy=policy).complete("gpt-4o-mini", CONVERSATION, 0.0)
            for _ in range(3)
        ]
        assert len({(r.text, r.latency_s, r.usage.total_tokens) for r in results}) == 1


class TestSessionWiring:
    """`wire_policy` must survive every path to the provider."""

    def test_session_private_client_carries_the_wire_policy(self):
        from repro.core import Session

        policy = OFFLINE
        session = Session(model="gpt-4o-mini", cache_dir=None, wire_policy=policy)
        # Isolated sessions build a private ChatClient; the policy must
        # ride along or cassette/live opt-ins silently fall back to the
        # ambient environment.
        assert session.client.wire_policy is policy
        assert session.client.provider_for("gpt-4o-mini").policy is policy

    def test_session_replays_a_cassette_through_ask(self, tmp_path):
        import repro.types as t
        from repro.core import Session
        from repro.llm.cassette import CassetteTransport

        def answer(request):
            body = (
                '```json\n{"reason": "arithmetic", "answer": 42}\n```'
            )
            return json_response(openai_reply(body), elapsed_s=0.33)

        recorder = OpenAIProvider(
            None,
            api_key="sk-probe",
            policy=OFFLINE,
            http=HTTPClient(
                CassetteTransport(tmp_path, mode="record", inner=answer)
            ),
        )
        rec_client = ChatClient(wire_policy=OFFLINE)
        rec_client._providers["gpt-"] = recorder
        rec_session = Session(model="gpt-4o-mini", cache_dir=None, client=rec_client)
        assert rec_session.ask(t.int, "What is six times seven?") == 42

        replay_session = Session(
            model="gpt-4o-mini",
            cache_dir=None,
            wire_policy=WirePolicy(live=False, cassette_dir=tmp_path, env={}),
        )
        assert replay_session.ask(t.int, "What is six times seven?") == 42
        assert replay_session.clock.elapsed_s == pytest.approx(0.33)


class TestStubSubsumption:
    """The stub is the real adapter on a local transport -- one code path."""

    def test_stub_is_an_openai_provider(self):
        assert issubclass(OpenAIStubProvider, OpenAIProvider)

    def test_stub_uses_canonical_parsing(self):
        stub = OpenAIStubProvider()
        result = stub.complete("oai-stub-small", [user_message("hi")], 0.0)
        assert result.text.startswith("[stub:oai-stub-small]")
        assert result.latency_s == pytest.approx(0.01)

    def test_stub_request_body_matches_canonical_wire_body(self):
        stub = OpenAIStubProvider()
        messages = [user_message("compare me")]
        body = stub.build_request("oai-stub-x", messages, 0.5)
        canonical = OpenAIProvider(
            None, api_key="k", policy=OFFLINE
        ).build_request("oai-stub-x", messages, 0.5).json()
        assert body == canonical
