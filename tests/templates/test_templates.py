"""Unit tests for prompt template parsing and rendering."""

import pytest

from repro.errors import TemplateError
from repro.templates import (
    ParamSegment,
    PromptTemplate,
    TextSegment,
    parameter_names,
    parse_template,
)


class TestParseTemplate:
    def test_plain_text(self):
        segments = parse_template("no placeholders here")
        assert segments == [TextSegment("no placeholders here")]

    def test_single_placeholder(self):
        segments = parse_template("What is the sentiment of {{review}}?")
        assert segments == [
            TextSegment("What is the sentiment of "),
            ParamSegment("review"),
            TextSegment("?"),
        ]

    def test_multiple_placeholders(self):
        segments = parse_template("{{a}} + {{b}}")
        assert segments == [ParamSegment("a"), TextSegment(" + "), ParamSegment("b")]

    def test_adjacent_placeholders(self):
        segments = parse_template("{{a}}{{b}}")
        assert segments == [ParamSegment("a"), ParamSegment("b")]

    def test_whitespace_inside_braces(self):
        segments = parse_template("{{ name }}")
        assert segments == [ParamSegment("name")]

    def test_empty_template(self):
        assert parse_template("") == []

    def test_unterminated_open(self):
        with pytest.raises(TemplateError):
            parse_template("hello {{name")

    def test_stray_close(self):
        with pytest.raises(TemplateError):
            parse_template("hello }} there")

    def test_empty_placeholder(self):
        with pytest.raises(TemplateError):
            parse_template("hello {{}}")

    def test_invalid_identifier(self):
        with pytest.raises(TemplateError):
            parse_template("hello {{9lives}}")

    def test_identifier_with_spaces_rejected(self):
        with pytest.raises(TemplateError):
            parse_template("hello {{two words}}")

    def test_non_string_rejected(self):
        with pytest.raises(TemplateError):
            parse_template(42)


class TestParameterNames:
    def test_order_preserved(self):
        names = parameter_names(parse_template("{{b}} then {{a}}"))
        assert names == ["b", "a"]

    def test_duplicates_collapsed(self):
        names = parameter_names(parse_template("{{x}} and {{x}} again"))
        assert names == ["x"]


class TestPromptTemplate:
    def test_parameters(self):
        template = PromptTemplate("List {{n}} classic books on {{subject}}.")
        assert template.parameters == ("n", "subject")

    def test_quoted(self):
        template = PromptTemplate("List {{n}} classic books on {{subject}}.")
        assert template.quoted() == "List 'n' classic books on 'subject'."

    def test_where_clause(self):
        template = PromptTemplate("List {{n}} classic books on {{subject}}.")
        clause = template.where_clause({"n": 5, "subject": "computer science"})
        assert clause == "where 'n' = 5, 'subject' = \"computer science\""

    def test_where_clause_empty_for_no_params(self):
        template = PromptTemplate("What is 7 times 8?")
        assert template.where_clause({}) == ""

    def test_substituted(self):
        template = PromptTemplate("Calculate the factorial of {{n}}")
        assert template.substituted({"n": 10}) == "Calculate the factorial of 10"

    def test_substituted_quotes_strings(self):
        template = PromptTemplate("Reverse the string {{s}}.")
        assert template.substituted({"s": "abc"}) == 'Reverse the string "abc".'

    def test_missing_argument(self):
        template = PromptTemplate("{{a}} + {{b}}")
        with pytest.raises(TemplateError) as excinfo:
            template.where_clause({"a": 1})
        assert "b" in str(excinfo.value)

    def test_extra_argument(self):
        template = PromptTemplate("{{a}}")
        with pytest.raises(TemplateError):
            template.where_clause({"a": 1, "z": 2})

    def test_bind_positional(self):
        template = PromptTemplate("{{a}} + {{b}}")
        assert template.bind_positional([1, 2]) == {"a": 1, "b": 2}

    def test_bind_positional_arity_mismatch(self):
        template = PromptTemplate("{{a}}")
        with pytest.raises(TemplateError):
            template.bind_positional([1, 2])

    def test_equality(self):
        assert PromptTemplate("{{a}}") == PromptTemplate("{{a}}")
        assert PromptTemplate("{{a}}") != PromptTemplate("{{b}}")

    def test_repeated_parameter_renders_twice(self):
        template = PromptTemplate("{{x}} times {{x}}")
        assert template.substituted({"x": 3}) == "3 times 3"
