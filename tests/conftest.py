"""Shared fixtures: quiet/noisy AskIt configurations with isolated caches.

Also home of the tier-1 hermeticity guard: an autouse fixture blocks
every real socket connection, so an accidental live HTTP call from any
test fails loudly instead of flaking on (or leaking traffic to) the
network.  Wire-provider code paths are exercised through fakes and
recorded cassettes; only tests marked ``live`` *and* run with
``REPRO_LIVE=1`` may touch the wire.
"""

import os
import socket

import pytest

from repro.core import config_override
from repro.llm import ChatClient, NoisePolicy, QUIET

_BLOCK_MESSAGE = (
    "tier-1 tests are hermetic: network access is blocked (attempted "
    "connection to {address!r}). Route wire traffic through a recorded "
    "cassette (REPRO_CASSETTE_DIR) or a fake transport; genuinely live "
    "tests must carry @pytest.mark.live and run with REPRO_LIVE=1."
)


@pytest.fixture(autouse=True)
def _hermetic_network(request, monkeypatch):
    """Fail any test that opens a real network connection.

    Tests marked ``live`` keep their sockets only when the environment
    opts in with ``REPRO_LIVE=1`` -- without the flag they are expected
    to skip themselves before touching the network.
    """
    if (
        request.node.get_closest_marker("live") is not None
        and os.environ.get("REPRO_LIVE") == "1"
    ):
        yield
        return

    def _blocked_connect(self, address, *args, **kwargs):
        raise RuntimeError(_BLOCK_MESSAGE.format(address=address))

    def _blocked_create_connection(address, *args, **kwargs):
        raise RuntimeError(_BLOCK_MESSAGE.format(address=address))

    monkeypatch.setattr(socket.socket, "connect", _blocked_connect)
    monkeypatch.setattr(socket.socket, "connect_ex", _blocked_connect)
    monkeypatch.setattr(socket, "create_connection", _blocked_create_connection)
    yield


@pytest.fixture
def quiet_config(tmp_path):
    """A deterministic, noise-free configuration with a temp code cache."""
    client = ChatClient(noise_policy=QUIET)
    with config_override(client=client, cache_dir=tmp_path / "askit") as config:
        yield config


@pytest.fixture
def noisy_config(tmp_path):
    """A configuration with aggressive failure injection (seeded)."""
    policy = NoisePolicy(direct_corruption_rate=0.9, buggy_code_rate=0.9, seed=99)
    client = ChatClient(noise_policy=policy)
    with config_override(client=client, cache_dir=tmp_path / "askit") as config:
        yield config


@pytest.fixture
def uncached_config():
    """Quiet configuration with the on-disk cache disabled."""
    client = ChatClient(noise_policy=QUIET)
    with config_override(client=client, cache_dir=None) as config:
        yield config
