"""Shared fixtures: quiet/noisy AskIt configurations with isolated caches."""

import pytest

from repro.core import config_override
from repro.llm import ChatClient, NoisePolicy, QUIET


@pytest.fixture
def quiet_config(tmp_path):
    """A deterministic, noise-free configuration with a temp code cache."""
    client = ChatClient(noise_policy=QUIET)
    with config_override(client=client, cache_dir=tmp_path / "askit") as config:
        yield config


@pytest.fixture
def noisy_config(tmp_path):
    """A configuration with aggressive failure injection (seeded)."""
    policy = NoisePolicy(direct_corruption_rate=0.9, buggy_code_rate=0.9, seed=99)
    client = ChatClient(noise_policy=policy)
    with config_override(client=client, cache_dir=tmp_path / "askit") as config:
        yield config


@pytest.fixture
def uncached_config():
    """Quiet configuration with the on-disk cache disabled."""
    client = ChatClient(noise_policy=QUIET)
    with config_override(client=client, cache_dir=None) as config:
        yield config
