"""Unit tests for atomic types."""

import pytest

import repro.types as t
from repro.errors import TypeMismatchError


class TestIntType:
    def test_renders_as_number(self):
        assert t.INT.typescript() == "number"

    def test_accepts_int(self):
        assert t.INT.validate(5)
        assert t.INT.validate(-3)
        assert t.INT.validate(0)

    def test_accepts_integral_float(self):
        assert t.INT.validate(7.0)

    def test_rejects_fractional_float(self):
        assert not t.INT.validate(7.5)

    def test_rejects_bool(self):
        assert not t.INT.validate(True)
        assert not t.INT.validate(False)

    def test_rejects_string(self):
        assert not t.INT.validate("5")

    def test_coerces_integral_float_to_int(self):
        coerced = t.INT.coerce(7.0)
        assert coerced == 7
        assert isinstance(coerced, int)

    def test_coerce_raises_with_issues(self):
        with pytest.raises(TypeMismatchError) as excinfo:
            t.INT.coerce("five")
        assert excinfo.value.issues

    def test_tag(self):
        assert t.INT.tag == "number"


class TestFloatType:
    def test_renders_as_number(self):
        assert t.FLOAT.typescript() == "number"

    def test_accepts_int_and_float(self):
        assert t.FLOAT.validate(3)
        assert t.FLOAT.validate(3.25)

    def test_rejects_bool(self):
        assert not t.FLOAT.validate(True)

    def test_coerces_int_to_float(self):
        coerced = t.FLOAT.coerce(3)
        assert coerced == 3.0
        assert isinstance(coerced, float)


class TestBoolType:
    def test_renders_as_boolean(self):
        assert t.BOOL.typescript() == "boolean"

    def test_accepts_bools_only(self):
        assert t.BOOL.validate(True)
        assert t.BOOL.validate(False)
        assert not t.BOOL.validate(1)
        assert not t.BOOL.validate(0)
        assert not t.BOOL.validate("true")


class TestStrType:
    def test_renders_as_string(self):
        assert t.STR.typescript() == "string"

    def test_accepts_strings_only(self):
        assert t.STR.validate("hello")
        assert t.STR.validate("")
        assert not t.STR.validate(5)
        assert not t.STR.validate(None)


class TestNoneType:
    def test_renders_as_void(self):
        assert t.NONE.typescript() == "void"

    def test_accepts_none_only(self):
        assert t.NONE.validate(None)
        assert not t.NONE.validate(0)
        assert not t.NONE.validate("")

    def test_is_void(self):
        assert t.NONE.is_void()
        assert not t.INT.is_void()


class TestAnyType:
    def test_renders_as_any(self):
        assert t.ANY.typescript() == "any"

    @pytest.mark.parametrize("value", [None, 1, 1.5, "x", True, [1], {"a": 1}])
    def test_accepts_everything(self, value):
        assert t.ANY.validate(value)


class TestEquality:
    def test_atoms_are_interned_equal(self):
        import repro.types.atoms as atoms

        assert atoms.IntType() == t.INT
        assert atoms.IntType() is not t.INT
        assert hash(atoms.IntType()) == hash(t.INT)

    def test_int_and_float_differ(self):
        assert t.INT != t.FLOAT

    def test_not_equal_to_non_type(self):
        assert t.INT != "number"
