"""Unit tests for composite types: lists, records, unions, tuples."""

import pytest

import repro.types as t
from repro.errors import TypeMismatchError


class TestListType:
    def test_render(self):
        assert t.list(t.int).typescript() == "number[]"
        assert t.list(t.list(t.str)).typescript() == "string[][]"

    def test_union_element_is_parenthesized(self):
        elem = t.union(t.literal("a"), t.literal("b"))
        assert t.list(elem).typescript() == "('a' | 'b')[]"

    def test_validate(self):
        numbers = t.list(t.int)
        assert numbers.validate([1, 2, 3])
        assert numbers.validate([])
        assert not numbers.validate([1, "two"])
        assert not numbers.validate("not a list")

    def test_issue_paths_carry_indices(self):
        issues = t.list(t.int).check([1, "x", 3.5])
        paths = [issue.path for issue in issues]
        assert "$[1]" in paths
        assert "$[2]" in paths

    def test_coerce_elementwise(self):
        assert t.list(t.int).coerce([1.0, 2.0]) == [1, 2]

    def test_requires_type_element(self):
        with pytest.raises(TypeError):
            t.list("int")


class TestRecordType:
    def test_render(self):
        book = t.dict({"title": t.str, "year": t.int})
        assert book.typescript() == "{ title: string; year: number }"

    def test_validate(self):
        point = t.dict({"x": t.int, "y": t.int})
        assert point.validate({"x": 1, "y": 2})
        assert not point.validate({"x": 1})
        assert not point.validate([1, 2])
        assert not point.validate({"x": 1, "y": "two"})

    def test_extra_keys_tolerated_and_dropped(self):
        point = t.dict({"x": t.int, "y": t.int})
        value = {"x": 1, "y": 2, "comment": "llm chatter"}
        assert point.validate(value)
        assert point.coerce(value) == {"x": 1, "y": 2}

    def test_missing_field_reported_by_name(self):
        point = t.dict({"x": t.int, "y": t.int})
        issues = point.check({"x": 1})
        assert any("'y'" in str(issue) for issue in issues)

    def test_nested_paths(self):
        shape = t.dict({"inner": t.dict({"n": t.int})})
        issues = shape.check({"inner": {"n": "bad"}})
        assert issues[0].path == "$.inner.n"

    def test_rejects_empty(self):
        with pytest.raises(TypeError):
            t.dict({})

    def test_field_order_does_not_affect_equality(self):
        a = t.dict({"x": t.int, "y": t.str})
        b = t.dict({"y": t.str, "x": t.int})
        assert a == b
        assert hash(a) == hash(b)


class TestUnionType:
    def test_render(self):
        sentiment = t.union(t.literal("positive"), t.literal("negative"))
        assert sentiment.typescript() == "'positive' | 'negative'"

    def test_flattens_and_dedupes(self):
        inner = t.union(t.literal("a"), t.literal("b"))
        outer = t.union(inner, t.literal("b"), t.literal("c"))
        assert outer.typescript() == "'a' | 'b' | 'c'"

    def test_collapses_single_member(self):
        assert t.union(t.int, t.int) == t.INT

    def test_validate_any_member(self):
        mixed = t.union(t.int, t.str)
        assert mixed.validate(5)
        assert mixed.validate("five")
        assert not mixed.validate(None)

    def test_coerce_uses_first_matching_member(self):
        mixed = t.union(t.int, t.float)
        assert mixed.coerce(2.0) == 2
        assert isinstance(mixed.coerce(2.0), int)

    def test_enum_detection(self):
        enum = t.union(t.literal("yes"), t.literal("no"))
        assert enum.is_enum_of_literals()
        mixed = t.union(t.literal("yes"), t.int)
        assert not mixed.is_enum_of_literals()

    def test_order_matters_for_equality(self):
        a = t.union(t.int, t.str)
        b = t.union(t.str, t.int)
        assert a != b


def test_union_class_requires_two_distinct():
    from repro.types.composites import UnionType

    with pytest.raises(TypeError):
        UnionType([t.INT])


class TestTupleType:
    def test_render(self):
        pair = t.tuple_of(t.int, t.str)
        assert pair.typescript() == "[number, string]"

    def test_validate_length_and_members(self):
        pair = t.tuple_of(t.int, t.int)
        assert pair.validate([1, 2])
        assert not pair.validate([1])
        assert not pair.validate([1, 2, 3])
        assert not pair.validate([1, "x"])
        assert not pair.validate("nope")

    def test_coerce(self):
        pair = t.tuple_of(t.int, t.float)
        assert pair.coerce([1.0, 2]) == [1, 2.0]


class TestWalk:
    def test_walk_visits_all_components(self):
        shape = t.list(t.dict({"x": t.int, "tag": t.union(t.literal("a"), t.literal("b"))}))
        tags = [node.tag for node in shape.walk()]
        assert tags[0] == "Array"
        assert "object" in tags
        assert "number" in tags
        assert "union" in tags
        assert tags.count("literal") == 2
