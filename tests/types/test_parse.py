"""Unit tests for the TypeScript type-expression parser."""

import pytest

import repro.types as t
from repro.errors import TypeSyntaxError
from repro.types import parse_type


class TestAtoms:
    def test_number(self):
        assert parse_type("number") == t.FLOAT

    def test_string(self):
        assert parse_type("string") == t.STR

    def test_boolean(self):
        assert parse_type("boolean") == t.BOOL

    def test_any(self):
        assert parse_type("any") == t.ANY

    @pytest.mark.parametrize("spelling", ["void", "null", "undefined"])
    def test_void_spellings(self, spelling):
        assert parse_type(spelling) == t.NONE


class TestLiterals:
    def test_string_literal_single_quotes(self):
        assert parse_type("'positive'") == t.literal("positive")

    def test_string_literal_double_quotes(self):
        assert parse_type('"negative"') == t.literal("negative")

    def test_number_literal(self):
        assert parse_type("123") == t.literal(123)

    def test_negative_number_literal(self):
        assert parse_type("-4") == t.literal(-4)

    def test_float_literal(self):
        assert parse_type("1.5") == t.literal(1.5)

    def test_boolean_literals(self):
        assert parse_type("true") == t.literal(True)
        assert parse_type("false") == t.literal(False)

    def test_escaped_quote_in_literal(self):
        assert parse_type(r"'it\'s'") == t.literal("it's")


class TestComposites:
    def test_array(self):
        assert parse_type("number[]") == t.list(t.float)

    def test_nested_array(self):
        assert parse_type("string[][]") == t.list(t.list(t.str))

    def test_array_generic_syntax(self):
        assert parse_type("Array<number>") == t.list(t.float)

    def test_union(self):
        expected = t.union(t.literal("positive"), t.literal("negative"))
        assert parse_type("'positive' | 'negative'") == expected

    def test_union_dedupes(self):
        assert parse_type("'a' | 'a'") == t.literal("a")

    def test_parenthesized_union_array(self):
        parsed = parse_type("('a' | 'b')[]")
        assert parsed == t.list(t.union(t.literal("a"), t.literal("b")))

    def test_record(self):
        parsed = parse_type("{ x: number; y: number }")
        assert parsed == t.dict({"x": t.float, "y": t.float})

    def test_record_comma_separator(self):
        parsed = parse_type("{ x: number, y: string }")
        assert parsed == t.dict({"x": t.float, "y": t.str})

    def test_record_trailing_separator(self):
        parsed = parse_type("{ x: number; }")
        assert parsed == t.dict({"x": t.float})

    def test_listing2_response_type(self):
        text = "{ reason: string; answer: { title: string; author: string; year: number }[] }"
        parsed = parse_type(text)
        book = t.dict({"title": t.str, "author": t.str, "year": t.float})
        assert parsed == t.dict({"reason": t.str, "answer": t.list(book)})

    def test_tuple(self):
        assert parse_type("[number, string]") == t.tuple_of(t.float, t.str)

    def test_quoted_field_name(self):
        parsed = parse_type("{ 'weird key': number }")
        assert parsed == t.dict({"weird key": t.float})


class TestRoundTrip:
    """Rendering a parsed type reproduces the canonical spelling."""

    @pytest.mark.parametrize(
        "text",
        [
            "number",
            "string",
            "boolean",
            "any",
            "void",
            "number[]",
            "string[][]",
            "'positive' | 'negative'",
            "('a' | 'b')[]",
            "{ x: number; y: number }",
            "{ title: string; author: string; year: number }[]",
            "[number, string]",
            "123",
            "true",
            "number | string",
        ],
    )
    def test_round_trip(self, text):
        assert parse_type(text).typescript() == text


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "number[",
            "{ x: }",
            "{ }",
            "'unterminated",
            "number |",
            "mystery_type",
            "number]",
            "number number",
            "[“",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(TypeSyntaxError):
            parse_type(text)

    def test_error_carries_position(self):
        with pytest.raises(TypeSyntaxError) as excinfo:
            parse_type("number | | string")
        assert excinfo.value.position >= 0
