"""Unit tests for type inference from example values."""

import pytest

import repro.types as t
from repro.types import infer_type, unify, unify_all


class TestInferScalars:
    def test_int(self):
        assert infer_type(5) == t.INT

    def test_bool_before_int(self):
        assert infer_type(True) == t.BOOL

    def test_float(self):
        assert infer_type(2.5) == t.FLOAT

    def test_str(self):
        assert infer_type("hi") == t.STR

    def test_none(self):
        assert infer_type(None) == t.NONE


class TestInferContainers:
    def test_homogeneous_list(self):
        assert infer_type([1, 2, 3]) == t.list(t.int)

    def test_numeric_list_widens(self):
        assert infer_type([1, 2.5]) == t.list(t.float)

    def test_mixed_list_unions(self):
        assert infer_type([1, "a"]) == t.list(t.union(t.int, t.str))

    def test_empty_list(self):
        assert infer_type([]) == t.list(t.any)

    def test_dict(self):
        assert infer_type({"x": 1, "y": "a"}) == t.dict({"x": t.int, "y": t.str})

    def test_tuple(self):
        assert infer_type((1, "a")) == t.tuple_of(t.int, t.str)

    def test_nested(self):
        value = [{"title": "a", "year": 1}, {"title": "b", "year": 2}]
        assert infer_type(value) == t.list(t.dict({"title": t.str, "year": t.int}))

    def test_unsupported(self):
        with pytest.raises(TypeError):
            infer_type(object())


class TestUnify:
    def test_identical(self):
        assert unify(t.INT, t.INT) == t.INT

    def test_numeric_widening(self):
        assert unify(t.INT, t.FLOAT) == t.FLOAT
        assert unify(t.FLOAT, t.INT) == t.FLOAT

    def test_any_absorbs(self):
        assert unify(t.ANY, t.STR) == t.ANY

    def test_lists_unify_elementwise(self):
        assert unify(t.list(t.int), t.list(t.float)) == t.list(t.float)

    def test_records_with_same_fields(self):
        a = t.dict({"x": t.int})
        b = t.dict({"x": t.float})
        assert unify(a, b) == t.dict({"x": t.float})

    def test_records_with_different_fields_union(self):
        a = t.dict({"x": t.int})
        b = t.dict({"y": t.int})
        assert unify(a, b) == t.union(a, b)

    def test_fallback_union(self):
        assert unify(t.STR, t.BOOL) == t.union(t.str, t.bool)

    def test_unify_all(self):
        assert unify_all([t.INT, t.FLOAT, t.INT]) == t.FLOAT

    def test_unify_all_empty(self):
        with pytest.raises(ValueError):
            unify_all([])

    def test_inferred_examples_unify(self):
        outputs = [[1, 2], [3.5], []]
        unified = unify_all([infer_type(o) for o in outputs])
        assert unified == t.list(t.any)
