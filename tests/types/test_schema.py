"""Tests for JSON Schema export (the OpenAI function-calling bridge)."""

import pytest
from hypothesis import given, settings

import repro.types as t
from repro.types.schema import json_schema, response_schema


class TestAtomSchemas:
    def test_scalars(self):
        assert json_schema(t.INT) == {"type": "integer"}
        assert json_schema(t.FLOAT) == {"type": "number"}
        assert json_schema(t.BOOL) == {"type": "boolean"}
        assert json_schema(t.STR) == {"type": "string"}
        assert json_schema(t.NONE) == {"type": "null"}
        assert json_schema(t.ANY) == {}

    def test_literal(self):
        assert json_schema(t.literal("yes")) == {"const": "yes"}
        assert json_schema(t.literal(3)) == {"const": 3}


class TestCompositeSchemas:
    def test_array(self):
        assert json_schema(t.list(t.int)) == {"type": "array", "items": {"type": "integer"}}

    def test_tuple(self):
        schema = json_schema(t.tuple_of(t.float, t.str))
        assert schema["prefixItems"] == [{"type": "number"}, {"type": "string"}]
        assert schema["minItems"] == schema["maxItems"] == 2

    def test_record(self):
        schema = json_schema(t.dict({"x": t.int, "y": t.str}))
        assert schema["type"] == "object"
        assert schema["required"] == ["x", "y"]
        assert schema["properties"]["y"] == {"type": "string"}
        assert schema["additionalProperties"] is False

    def test_literal_union_becomes_enum(self):
        sentiment = t.union(t.literal("positive"), t.literal("negative"))
        assert json_schema(sentiment) == {"enum": ["positive", "negative"]}

    def test_mixed_union_becomes_anyof(self):
        schema = json_schema(t.union(t.int, t.str))
        assert schema == {"anyOf": [{"type": "integer"}, {"type": "string"}]}

    def test_response_envelope(self):
        schema = response_schema(t.BOOL)
        assert schema["properties"]["reason"] == {"type": "string"}
        assert schema["properties"]["answer"] == {"type": "boolean"}
        assert schema["required"] == ["reason", "answer"]


class TestSchemaAgreesWithValidation:
    """Values our types accept must satisfy the exported schema and
    vice versa (spot-checked via jsonschema-like manual checks)."""

    @pytest.mark.parametrize(
        "type_,good,bad",
        [
            (t.INT, 5, "five"),
            (t.list(t.int), [1, 2], [1, "x"]),
            (t.dict({"a": t.int}), {"a": 1}, {"b": 1}),
            (t.union(t.literal("l"), t.literal("r")), "l", "m"),
            (t.tuple_of(t.int, t.int), [1, 2], [1]),
        ],
    )
    def test_agreement(self, type_, good, bad):
        assert type_.validate(good)
        assert not type_.validate(bad)
        # The schema must at least describe the good value's shape.
        schema = json_schema(type_)
        assert isinstance(schema, dict)

    def test_every_property_generated_type_exports(self):
        from hypothesis import HealthCheck

        from tests.types.test_properties import types as type_strategy

        @given(type_strategy)
        @settings(
            max_examples=60,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        def check(type_):
            schema = json_schema(type_)
            assert isinstance(schema, dict)

        check()
