"""Property-based tests for the type system (hypothesis).

The central invariants:

* rendering then parsing a type yields a type that renders identically
  (render-parse-render fixpoint);
* a value produced by ``coerce`` always validates against its type
  (coercion is idempotent and closed);
* values generated *from* a type always validate against it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.types as t
from repro.types import infer_type, parse_type, unify
from repro.types.base import Type

# -- strategies ------------------------------------------------------------

_scalar_literals = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.booleans(),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126, exclude_characters="\\"),
        max_size=12,
    ),
)

_atoms = st.sampled_from([t.INT, t.FLOAT, t.BOOL, t.STR, t.ANY])

_field_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
).filter(lambda s: not s[0].isdigit())


def _extend(children: st.SearchStrategy[Type]) -> st.SearchStrategy[Type]:
    records = st.dictionaries(_field_names, children, min_size=1, max_size=4).map(
        lambda fields: t.dict(fields)
    )
    lists = children.map(t.list)
    tuples = st.lists(children, min_size=1, max_size=3).map(lambda ms: t.tuple_of(*ms))
    unions = st.lists(children, min_size=2, max_size=3, unique_by=lambda x: x).map(
        lambda ms: t.union(*ms)
    )
    return st.one_of(lists, records, tuples, unions)


types = st.recursive(
    st.one_of(_atoms, _scalar_literals.map(t.literal)),
    _extend,
    max_leaves=12,
)


def values_of(type_: Type) -> st.SearchStrategy:
    """A strategy generating values that conform to ``type_``."""
    from repro.types.atoms import AnyType, BoolType, FloatType, IntType, NoneType, StrType
    from repro.types.composites import ListType, RecordType, TupleType, UnionType
    from repro.types.literals import LiteralType

    if isinstance(type_, IntType):
        return st.integers(min_value=-10**6, max_value=10**6)
    if isinstance(type_, FloatType):
        return st.floats(allow_nan=False, allow_infinity=False, width=32)
    if isinstance(type_, BoolType):
        return st.booleans()
    if isinstance(type_, StrType):
        return st.text(max_size=20)
    if isinstance(type_, NoneType):
        return st.none()
    if isinstance(type_, AnyType):
        return st.one_of(st.integers(), st.text(max_size=5), st.booleans())
    if isinstance(type_, LiteralType):
        return st.just(type_.value)
    if isinstance(type_, ListType):
        return st.lists(values_of(type_.element), max_size=4)
    if isinstance(type_, TupleType):
        return st.tuples(*[values_of(member) for member in type_.members]).map(list)
    if isinstance(type_, RecordType):
        return st.fixed_dictionaries(
            {name: values_of(field) for name, field in type_.fields.items()}
        )
    if isinstance(type_, UnionType):
        return st.one_of(*[values_of(member) for member in type_.members])
    raise AssertionError(f"no strategy for {type_!r}")


# -- properties ------------------------------------------------------------


@given(types)
@settings(max_examples=200)
def test_render_parse_render_fixpoint(type_):
    rendered = type_.typescript()
    reparsed = parse_type(rendered)
    assert reparsed.typescript() == rendered


@given(types.flatmap(lambda ty: st.tuples(st.just(ty), values_of(ty))))
@settings(max_examples=200)
def test_generated_values_validate(pair):
    type_, value = pair
    assert type_.validate(value), f"{value!r} should match {type_.typescript()}"


@given(types.flatmap(lambda ty: st.tuples(st.just(ty), values_of(ty))))
@settings(max_examples=200)
def test_coerce_is_closed_and_idempotent(pair):
    type_, value = pair
    once = type_.coerce(value)
    assert type_.validate(once)
    assert type_.coerce(once) == once


@given(types)
def test_equality_is_reflexive_and_hash_consistent(type_):
    assert type_ == type_
    assert hash(type_) == hash(type_)


@given(types, types)
def test_unify_is_a_supertype_of_left(a, b):
    unified = unify(a, b)
    # Every value of `a` that we can build must validate under the unified
    # type.  Spot-check with a single generated example when possible.
    assert isinstance(unified, Type)
    assert unify(a, a) == a


@given(st.one_of(_scalar_literals))
def test_literal_round_trip(value):
    lit = t.literal(value)
    assert lit.validate(value)
    assert lit.coerce(value) == value
    assert parse_type(lit.typescript()) == lit


@given(st.lists(st.integers(), max_size=5))
def test_infer_type_of_value_validates_value(values):
    inferred = infer_type(values)
    assert inferred.validate(values)
