"""Unit tests for code-generation prompt synthesis (Figure 4)."""

import pytest

import repro.types as t
from repro.prompts import (
    build_codegen_prompt,
    python_signature,
    typescript_signature,
)
from repro.templates import PromptTemplate


class TestSignatures:
    def test_typescript_signature_with_types(self):
        sig = typescript_signature(
            "calculateFactorial", ["n"], {"n": t.INT}, t.INT
        )
        assert sig == "export function calculateFactorial({n}: {n: number}): number"

    def test_typescript_signature_defaults_to_any(self):
        sig = typescript_signature("f", ["a", "b"], {"a": t.STR}, t.BOOL)
        assert sig == "export function f({a, b}: {a: string, b: any}): boolean"

    def test_typescript_signature_no_parameters(self):
        sig = typescript_signature("f", [], None, t.STR)
        assert sig == "export function f(): string"

    def test_python_signature_is_untyped(self):
        assert python_signature("f", ["x", "y"]) == "def f(x, y):"


class TestFigure4Shape:
    def test_typescript_prompt_structure(self):
        template = PromptTemplate("Calculate the factorial of {{n}}")
        prompt = build_codegen_prompt(
            "typescript", "calculateFactorial", template, t.INT, {"n": t.INT}
        )
        # Segment 1: the fixed worked example question.
        assert prompt.startswith("Q: Implement the following function:")
        assert "export function func({x, y}: {x: number, y: number}): number" in prompt
        assert "// add 'x' and 'y'" in prompt
        # Segment 2: the fixed worked example answer.
        assert "A:" in prompt
        assert "return x + y;" in prompt
        # Segment 3: the real request.
        assert (
            "export function calculateFactorial({n}: {n: number}): number" in prompt
        )
        assert "// Calculate the factorial of 'n'" in prompt

    def test_one_shot_example_is_task_independent(self):
        t1 = build_codegen_prompt(
            "typescript", "a", PromptTemplate("Task one {{x}}"), t.INT, None
        )
        t2 = build_codegen_prompt(
            "typescript", "b", PromptTemplate("Task two {{y}}"), t.STR, None
        )
        split1 = t1.split("Q: Implement the following function:")
        split2 = t2.split("Q: Implement the following function:")
        assert split1[1] == split2[1]  # worked example identical

    def test_python_prompt_omits_parameter_types(self):
        template = PromptTemplate("Return the unique elements in {{xs}}")
        prompt = build_codegen_prompt(
            "python", "unique_elements", template, t.list(t.int), {"xs": t.list(t.int)}
        )
        assert "def unique_elements(xs):" in prompt
        assert "number[]" not in prompt  # no TS types leak into Python prompts
        assert "# Return the unique elements in 'xs'" in prompt

    def test_python_prompt_structure(self):
        template = PromptTemplate("Add {{a}} and {{b}}")
        prompt = build_codegen_prompt("python", "add", template, t.INT)
        assert "```python" in prompt
        assert "def add(a, b):" in prompt

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError):
            build_codegen_prompt("rust", "f", PromptTemplate("x"), t.INT)
