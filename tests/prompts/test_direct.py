"""Unit tests for direct-answer prompt synthesis (Listing 2)."""

import repro.types as t
from repro.prompts import FewShotExample, build_direct_prompt, response_type_fence
from repro.templates import PromptTemplate


class TestListing2Shape:
    def test_full_prompt_matches_listing2_structure(self):
        book = t.dict({"title": t.str, "author": t.str, "year": t.int})
        template = PromptTemplate("List {{n}} classic books on {{subject}}.")
        prompt = build_direct_prompt(
            template, t.list(book), {"n": 5, "subject": "computer science"}
        )
        assert prompt.startswith(
            "You are a helpful assistant that generates responses in JSON format"
        )
        assert "```json" in prompt
        assert '{ "reason": "Step-by-step reason for the answer"' in prompt
        assert "```ts" in prompt
        assert (
            "{ reason: string; answer: "
            "{ title: string; author: string; year: number }[] }" in prompt
        )
        assert "Explain your answer step-by-step in the 'reason' field." in prompt
        assert "List 'n' classic books on 'subject'." in prompt
        assert "where 'n' = 5, 'subject' = \"computer science\"" in prompt

    def test_no_where_clause_without_parameters(self):
        template = PromptTemplate("What is 7 times 8?")
        prompt = build_direct_prompt(template, t.INT, {})
        assert "where" not in prompt.splitlines()[-1]
        assert "What is 7 times 8?" in prompt

    def test_reason_field_always_string_typed(self):
        fence = response_type_fence(t.BOOL)
        assert fence == "```ts\n{ reason: string; answer: boolean }\n```\n"

    def test_fixed_preamble_is_task_independent(self):
        a = build_direct_prompt(PromptTemplate("Task A"), t.INT, {})
        b = build_direct_prompt(PromptTemplate("Task B {{x}}"), t.STR, {"x": 1})
        # The first five lines (preamble + example) must be identical.
        assert a.splitlines()[:5] == b.splitlines()[:5]


class TestFewShot:
    def test_examples_rendered(self):
        template = PromptTemplate("Is {{n}} even?")
        examples = [
            FewShotExample({"n": 2}, True),
            FewShotExample({"n": 3}, False),
        ]
        prompt = build_direct_prompt(template, t.BOOL, {"n": 10}, examples)
        assert "Examples:" in prompt
        assert "'n' = 2" in prompt
        assert '"answer": true' in prompt
        assert "'n' = 3" in prompt
        assert '"answer": false' in prompt

    def test_no_examples_section_when_empty(self):
        prompt = build_direct_prompt(PromptTemplate("Hello"), t.STR, {})
        assert "Examples:" not in prompt

    def test_parameterless_example(self):
        prompt = build_direct_prompt(
            PromptTemplate("Roll a die"),
            t.INT,
            {},
            [FewShotExample({}, 4)],
        )
        assert "Respond:" in prompt
