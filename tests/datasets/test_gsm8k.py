"""Tests for the synthetic GSM8K corpus."""

import pytest

from repro.datasets import gsm8k
from repro.errors import DatasetError
from repro.llm.knowledge import KnowledgeBase, mask_numbers


class TestFamilies:
    def test_family_count(self):
        assert len(gsm8k.families()) == 36

    def test_skeletons_are_unique(self):
        skeletons = [family.skeleton() for family in gsm8k.families()]
        assert len(set(skeletons)) == len(skeletons)

    def test_askit_template_has_placeholders(self):
        family = gsm8k.families()[0]
        template = family.askit_template()
        for slot in family.slot_names:
            assert "{{" + slot + "}}" in template

    def test_positional_expression_matches_named(self):
        for family in gsm8k.families():
            values = family.sampler(__import__("random").Random(1))
            _, expected = family.instantiate(values)
            env = {
                f"n{index}": float(values[slot])
                for index, slot in enumerate(family.slot_names)
            }
            assert family.positional_expression().evaluate(env) == pytest.approx(expected)

    def test_samplers_produce_clean_answers(self):
        """Across many draws every family yields finite, non-negative,
        integral answers (the GSM8K style)."""
        import random

        rng = random.Random(7)
        for family in gsm8k.families():
            for _ in range(25):
                values = family.sampler(rng)
                _, answer = family.instantiate(values)
                assert answer >= 0, family.name
                assert float(answer).is_integer(), (family.name, values, answer)

    def test_instantiate_requires_all_slots(self):
        family = gsm8k.families()[0]
        with pytest.raises(DatasetError):
            family.instantiate({})


class TestGeneration:
    def test_default_count(self):
        problems = gsm8k.generate_dataset(count=70, knowledge=KnowledgeBase())
        assert len(problems) == 70

    def test_deterministic_for_seed(self):
        a = gsm8k.generate_dataset(count=50, seed=42, knowledge=KnowledgeBase())
        b = gsm8k.generate_dataset(count=50, seed=42, knowledge=KnowledgeBase())
        assert [p.text for p in a] == [p.text for p in b]
        assert [p.answer for p in a] == [p.answer for p in b]

    def test_different_seeds_differ(self):
        a = gsm8k.generate_dataset(count=50, seed=1, knowledge=KnowledgeBase())
        b = gsm8k.generate_dataset(count=50, seed=2, knowledge=KnowledgeBase())
        assert [p.text for p in a] != [p.text for p in b]

    def test_problems_cycle_families(self):
        size = len(gsm8k.families())
        problems = gsm8k.generate_dataset(count=size + 1, knowledge=KnowledgeBase())
        assert problems[0].family.name == problems[size].family.name

    def test_registration_teaches_the_model(self):
        knowledge = KnowledgeBase()
        problems = gsm8k.generate_dataset(count=10, knowledge=knowledge)
        for problem in problems:
            found = knowledge.find_family(problem.text)
            assert found is not None, problem.text
            family, numbers = found
            env = {f"n{i}": v for i, v in enumerate(numbers)}
            assert family.expression.evaluate(env) == pytest.approx(problem.answer)

    def test_template_args_match_text(self):
        problems = gsm8k.generate_dataset(count=35, knowledge=KnowledgeBase())
        for problem in problems:
            rendered = problem.template
            for name, value in problem.args.items():
                rendered = rendered.replace("{{" + name + "}}", str(value))
            assert rendered == problem.text

    def test_invalid_count(self):
        with pytest.raises(DatasetError):
            gsm8k.generate_dataset(count=0, knowledge=KnowledgeBase())

    def test_mask_round_trip(self):
        problems = gsm8k.generate_dataset(count=35, knowledge=KnowledgeBase())
        for problem in problems:
            masked, numbers = mask_numbers(problem.text)
            assert masked == problem.family.skeleton()
            assert len(numbers) == len(problem.family.slot_names)


class TestScoring:
    def test_answers_match(self):
        assert gsm8k.answers_match(10, 10.0)
        assert gsm8k.answers_match(10, 10.0000000001)
        assert not gsm8k.answers_match(10, 11)
        assert not gsm8k.answers_match(10, "ten")
