"""Tests for the OpenAI-Evals-style corpus."""

import pytest

from repro.datasets import openai_evals
from repro.errors import DatasetError
from repro.types.base import Type


class TestCorpusShape:
    def test_fifty_benchmarks(self):
        assert len(openai_evals.all_benchmarks()) == 50

    def test_unique_names(self):
        names = [benchmark.name for benchmark in openai_evals.all_benchmarks()]
        assert len(set(names)) == len(names)

    def test_every_benchmark_has_a_type(self):
        for benchmark in openai_evals.all_benchmarks():
            assert isinstance(benchmark.answer_type, Type)

    def test_get_benchmark(self):
        benchmark = openai_evals.get_benchmark("2d_movement")
        assert "grid" in benchmark.original
        with pytest.raises(DatasetError):
            openai_evals.get_benchmark("nope")


class TestReductionStructure:
    def test_askit_prompt_is_a_prefix_of_original(self):
        """The conversion only *deletes* the trailing format directive."""
        for benchmark in openai_evals.all_benchmarks():
            assert benchmark.original.startswith(benchmark.askit), benchmark.name

    def test_every_reduction_is_positive(self):
        for benchmark in openai_evals.all_benchmarks():
            assert benchmark.reduction_chars > 0, benchmark.name

    def test_mean_reduction_matches_paper(self):
        assert openai_evals.mean_reduction_percent() == pytest.approx(16.14, abs=1.5)

    def test_shared_system_preamble(self):
        for benchmark in openai_evals.all_benchmarks():
            assert benchmark.askit.startswith(openai_evals.SYSTEM_PREAMBLE)

    def test_reduction_distribution_has_a_tail(self):
        """Figure 6's histogram: most reductions modest, a few large."""
        reductions = sorted(b.reduction_chars for b in openai_evals.all_benchmarks())
        assert reductions[len(reductions) // 2] < 100  # median modest
        assert reductions[-1] > 200  # tail exists

    def test_directives_sound_like_format_instructions(self):
        """Each deleted span should contain format-directive vocabulary."""
        keywords = (
            "only", "exactly", "format", "single", "nothing", "lowercase",
            "capital", "must", "alone", "no ", "digits", "one word", "list",
            "just the", "plain", "without",
        )
        for benchmark in openai_evals.all_benchmarks():
            directive = benchmark.original[len(benchmark.askit):].lower()
            assert any(keyword in directive for keyword in keywords), benchmark.name
