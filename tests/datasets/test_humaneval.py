"""Tests for the HumanEval-style corpus.

The invariants here protect the Figure 5 experiment: canonical solutions
must pass their own tests, the model's bodies must pass for solvable
tasks, and must *fail* at least one test for unsolvable tasks.
"""

import pytest

from repro.datasets import humaneval
from repro.errors import DatasetError
from repro.ioexample import outputs_equal
from repro.templates import PromptTemplate


def _run(source: str, entry_point: str, inputs: dict):
    namespace: dict = {}
    exec(source, namespace)  # noqa: S102 - dataset-authored code
    return namespace[entry_point](**inputs)


def _stub_plus_body(task: humaneval.HumanEvalTask) -> str:
    params = ", ".join(task.params)
    body = "\n".join("    " + line if line.strip() else "" for line in task.llm_body.splitlines())
    return f"def {task.entry_point}({params}):\n{body}\n"


class TestCorpusShape:
    def test_corpus_size(self):
        assert len(humaneval.all_tasks()) == 81

    def test_task_ids_sequential(self):
        ids = [task.task_id for task in humaneval.all_tasks()]
        assert ids == [f"SynthEval/{i}" for i in range(len(ids))]

    def test_solvable_fraction_near_paper(self):
        """Paper: 84.8 % of tasks generated successfully."""
        assert humaneval.solvable_fraction() == pytest.approx(0.848, abs=0.03)

    def test_descriptions_have_all_params(self):
        for task in humaneval.all_tasks():
            template = PromptTemplate(task.description)
            assert set(template.parameters) == set(task.params), task.task_id

    def test_every_task_has_tests(self):
        for task in humaneval.all_tasks():
            assert len(task.tests) >= 3, task.task_id

    def test_get_task(self):
        task = humaneval.get_task("SynthEval/0")
        assert task.entry_point == "has_close_elements"
        with pytest.raises(DatasetError):
            humaneval.get_task("SynthEval/999")


class TestCanonicalSolutions:
    @pytest.mark.parametrize("task", humaneval.all_tasks(), ids=lambda t: t.task_id)
    def test_canonical_passes_all_tests(self, task):
        for example in task.tests:
            actual = _run(task.canonical_solution, task.entry_point, example.inputs)
            assert outputs_equal(actual, example.output), (
                f"{task.task_id}: canonical({example.inputs}) = {actual!r}, "
                f"expected {example.output!r}"
            )


class TestModelBodies:
    @pytest.mark.parametrize(
        "task",
        [task for task in humaneval.all_tasks() if task.llm_solvable],
        ids=lambda t: t.task_id,
    )
    def test_solvable_body_passes_all_tests(self, task):
        source = _stub_plus_body(task)
        for example in task.tests:
            actual = _run(source, task.entry_point, example.inputs)
            assert outputs_equal(actual, example.output), (
                f"{task.task_id}: llm({example.inputs}) = {actual!r}, "
                f"expected {example.output!r}"
            )

    @pytest.mark.parametrize(
        "task",
        [task for task in humaneval.all_tasks() if not task.llm_solvable],
        ids=lambda t: t.task_id,
    )
    def test_unsolvable_body_fails_some_test(self, task):
        source = _stub_plus_body(task)
        failures = 0
        for example in task.tests:
            try:
                actual = _run(source, task.entry_point, example.inputs)
            except Exception:  # noqa: BLE001 - failing loudly also counts
                failures += 1
                continue
            if not outputs_equal(actual, example.output):
                failures += 1
        assert failures > 0, f"{task.task_id}: the 'unsolvable' body passed every test"
