"""Tests for the Table II task suite and its catalog implementations."""

import pytest

from repro.datasets import common_tasks
from repro.errors import DatasetError
from repro.ioexample import outputs_equal
from repro.llm.knowledge import global_knowledge
from repro.templates import PromptTemplate


class TestSuiteShape:
    def test_fifty_tasks(self):
        assert len(common_tasks.all_tasks()) == 50

    def test_numbers_sequential(self):
        numbers = [task.number for task in common_tasks.all_tasks()]
        assert numbers == list(range(1, 51))

    def test_get_task_bounds(self):
        assert common_tasks.get_task(1).number == 1
        with pytest.raises(DatasetError):
            common_tasks.get_task(0)
        with pytest.raises(DatasetError):
            common_tasks.get_task(51)

    def test_param_types_cover_template_params(self):
        for task in common_tasks.all_tasks():
            params = set(PromptTemplate(task.template).parameters)
            assert set(task.param_types) == params, task.number

    def test_every_task_has_two_examples(self):
        for task in common_tasks.all_tasks():
            assert len(task.examples) == 2, task.number

    def test_paper_rows_match(self):
        """Spot-check the rows printed in the paper's Table II."""
        assert common_tasks.get_task(1).template == "Reverse the string {{s}}."
        assert common_tasks.get_task(14).template == (
            "Generate the Fibonacci sequence up to {{n}}."
        )
        assert 11 in common_tasks.PYTHON_FAILING_TASKS
        assert 24 in common_tasks.PYTHON_FAILING_TASKS


class TestCatalogConsistency:
    """The simulated model's knowledge must agree with the dataset."""

    def test_every_task_registered(self):
        knowledge = global_knowledge()
        for task in common_tasks.all_tasks():
            quoted = PromptTemplate(task.template).quoted()
            assert knowledge.find_task(quoted) is not None, task.number

    @pytest.mark.parametrize("task", common_tasks.all_tasks(), ids=lambda t: f"task{t.number}")
    def test_answer_fn_matches_examples(self, task):
        knowledge = global_knowledge()
        implementation = knowledge.find_task(PromptTemplate(task.template).quoted())
        for example in task.examples:
            actual = implementation.python_fn(**example.inputs)
            assert outputs_equal(actual, example.output), (
                f"task #{task.number}: answer_fn({example.inputs}) = {actual!r}, "
                f"expected {example.output!r}"
            )
