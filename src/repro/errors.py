"""Exception hierarchy for the AskIt reproduction.

Every error raised by the library derives from :class:`AskItError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class AskItError(Exception):
    """Base class for all errors raised by this library."""


class TypeSyntaxError(AskItError):
    """A TypeScript type expression could not be parsed.

    Raised by :func:`repro.types.parse_type` when the input text is not a
    valid type expression of the supported TypeScript subset.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class TypeMismatchError(AskItError):
    """A runtime value does not conform to the expected type.

    ``issues`` carries the individual path-qualified problems discovered
    during checking, which is useful for building feedback prompts.
    """

    def __init__(self, message: str, issues: list[str] | None = None) -> None:
        super().__init__(message)
        self.issues = list(issues or [])


class TemplateError(AskItError):
    """A prompt template is malformed or was rendered with bad arguments."""


class ResponseFormatError(AskItError):
    """An LLM response did not contain a well-formed answer.

    Carries the criterion (1-3 in the paper's Section III-E) that failed so
    the feedback loop can point the model at the offending part.
    """

    CRITERION_NO_JSON = 1
    CRITERION_NO_ANSWER_FIELD = 2
    CRITERION_BAD_TYPE = 3

    def __init__(self, message: str, criterion: int, response: str = "") -> None:
        super().__init__(message)
        self.criterion = criterion
        self.response = response


class CodeExtractionError(AskItError):
    """A code block could not be extracted from an LLM response."""


class CodeValidationError(AskItError):
    """Generated code failed syntactic or semantic (example-based) checks."""

    def __init__(self, message: str, failures: list[str] | None = None) -> None:
        super().__init__(message)
        self.failures = list(failures or [])


class CodeGenerationError(AskItError):
    """Code generation failed after exhausting all retries."""

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class MaxRetriesExceededError(AskItError):
    """The direct-answer loop exhausted its retry budget."""

    def __init__(self, message: str, attempts: int = 0, last_response: str = "") -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_response = last_response


class RateLimitError(AskItError):
    """A provider refused a request because a rate limit was exceeded.

    ``retry_after_s`` carries the provider's suggested wait (seconds of
    virtual time) before the request may be retried -- the scheduler's
    requeue path and the client's naive backoff both honour it.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0, model: str = "") -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.model = model


class TransportError(AskItError):
    """A wire-level transport failure: DNS, connect, TLS, resets.

    Base of the HTTP transport taxonomy raised by
    :class:`repro.llm.http.HTTPClient` and everything built on it (the
    wire providers, the cassette transport).  ``url`` is the request
    target with credentials redacted; ``cause`` keeps the underlying
    OS-level exception for diagnostics.
    """

    def __init__(
        self, message: str, *, url: str = "", cause: BaseException | None = None
    ) -> None:
        super().__init__(message)
        self.url = url
        self.cause = cause
        #: Whether retrying the exchange could plausibly succeed.  True
        #: for genuine network faults; cassette misses and deliberately
        #: offline transports set it False so nothing sleeps on them.
        self.retryable = True


class TransportTimeoutError(TransportError):
    """A request timed out before the response arrived.

    ``phase`` distinguishes ``"connect"`` from ``"read"`` timeouts when
    the transport can tell them apart (``"request"`` when it cannot).
    Re-exported as ``repro.llm.http.TimeoutError``.
    """

    def __init__(
        self,
        message: str,
        *,
        timeout_s: float = 0.0,
        phase: str = "request",
        url: str = "",
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message, url=url, cause=cause)
        self.timeout_s = timeout_s
        self.phase = phase


class HTTPStatusError(TransportError):
    """The server answered with a non-success HTTP status.

    Subclasses carve out the statuses with dedicated handling (401/403
    auth failures, 5xx retryables); a 429 maps to
    :class:`RateLimitError` instead so the scheduler machinery applies.
    ``body_preview`` holds the first few hundred bytes of the error
    body, which is where providers put their diagnostic message.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 0,
        body_preview: str = "",
        url: str = "",
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message, url=url, cause=cause)
        self.status = status
        self.body_preview = body_preview


class AuthError(HTTPStatusError):
    """The provider rejected the request's credentials (401/403).

    Never retried: a bad key stays bad.  The message names the missing
    or refused environment variable when the wire provider knows it.
    """


class ServerError(HTTPStatusError):
    """The provider failed server-side (HTTP 5xx).

    Retryable: :class:`~repro.llm.http.HTTPClient` retries it with
    backoff, and the request scheduler requeues it the way it requeues
    a 429, charging ``retry_after_s`` (the ``Retry-After`` header when
    the server sent one, else a default penalty).
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 500,
        retry_after_s: float = 1.0,
        body_preview: str = "",
        url: str = "",
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(
            message, status=status, body_preview=body_preview, url=url, cause=cause
        )
        self.retry_after_s = retry_after_s


class MalformedResponseError(TransportError):
    """A success response whose body the adapter could not interpret.

    Covers truncated/invalid JSON and JSON missing the fields the wire
    shape guarantees (``choices``, ``content``, ``candidates``...).
    Not retryable by the transport -- the bytes arrived fine.
    """


class CassetteMissError(TransportError):
    """Strict cassette replay found no recording for a request.

    Carries the content-addressed ``key`` the request hashed to, so the
    fix (record the interaction, or point ``REPRO_CASSETTE_DIR`` at the
    right directory) is one file name away.
    """

    def __init__(self, message: str, *, key: str = "", url: str = "") -> None:
        super().__init__(message, url=url)
        self.key = key
        self.retryable = False


class DeadlineExceededError(AskItError):
    """A request could not be served within its virtual-time deadline.

    Raised by the scheduler *before* spending wait budget that would blow
    the deadline (admission control fails fast), and while requeueing
    rate-limited requests whose accumulated delay has exceeded it.
    """

    def __init__(
        self, message: str, deadline_s: float = 0.0, projected_s: float = 0.0
    ) -> None:
        super().__init__(message)
        #: The configured per-request deadline, in virtual seconds.
        self.deadline_s = deadline_s
        #: The delay the request would have accumulated had it proceeded.
        self.projected_s = projected_s


class QuotaExceededError(AskItError):
    """A tenant's cumulative request or token quota is exhausted.

    Raised by the serving gateway's admission layer
    (:class:`~repro.core.scheduler.WeightedFairTurnstile`) before any
    budget is spent; unlike :class:`RateLimitError` this is not a pacing
    problem that waiting cures -- the tenant's allowance is gone until an
    operator raises it.
    """

    def __init__(
        self,
        message: str,
        tenant: str = "",
        resource: str = "requests",
        used: float = 0.0,
        limit: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        #: ``"requests"`` or ``"tokens"`` -- which allowance ran out.
        self.resource = resource
        self.used = used
        self.limit = limit


class SolverError(AskItError):
    """The simulated LLM could not understand or solve a task."""


class TsSyntaxError(AskItError):
    """The TypeScript-subset front end rejected a program."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})" if line else message)
        self.line = line
        self.column = column


class TsRuntimeError(AskItError):
    """The TypeScript-subset interpreter hit a runtime failure."""


class DatasetError(AskItError):
    """A dataset was asked for an unknown task or invalid parameters."""


class ConfigError(AskItError):
    """Invalid library configuration."""
