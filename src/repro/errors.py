"""Exception hierarchy for the AskIt reproduction.

Every error raised by the library derives from :class:`AskItError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class AskItError(Exception):
    """Base class for all errors raised by this library."""


class TypeSyntaxError(AskItError):
    """A TypeScript type expression could not be parsed.

    Raised by :func:`repro.types.parse_type` when the input text is not a
    valid type expression of the supported TypeScript subset.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class TypeMismatchError(AskItError):
    """A runtime value does not conform to the expected type.

    ``issues`` carries the individual path-qualified problems discovered
    during checking, which is useful for building feedback prompts.
    """

    def __init__(self, message: str, issues: list[str] | None = None) -> None:
        super().__init__(message)
        self.issues = list(issues or [])


class TemplateError(AskItError):
    """A prompt template is malformed or was rendered with bad arguments."""


class ResponseFormatError(AskItError):
    """An LLM response did not contain a well-formed answer.

    Carries the criterion (1-3 in the paper's Section III-E) that failed so
    the feedback loop can point the model at the offending part.
    """

    CRITERION_NO_JSON = 1
    CRITERION_NO_ANSWER_FIELD = 2
    CRITERION_BAD_TYPE = 3

    def __init__(self, message: str, criterion: int, response: str = "") -> None:
        super().__init__(message)
        self.criterion = criterion
        self.response = response


class CodeExtractionError(AskItError):
    """A code block could not be extracted from an LLM response."""


class CodeValidationError(AskItError):
    """Generated code failed syntactic or semantic (example-based) checks."""

    def __init__(self, message: str, failures: list[str] | None = None) -> None:
        super().__init__(message)
        self.failures = list(failures or [])


class CodeGenerationError(AskItError):
    """Code generation failed after exhausting all retries."""

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class MaxRetriesExceededError(AskItError):
    """The direct-answer loop exhausted its retry budget."""

    def __init__(self, message: str, attempts: int = 0, last_response: str = "") -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_response = last_response


class RateLimitError(AskItError):
    """A provider refused a request because a rate limit was exceeded.

    ``retry_after_s`` carries the provider's suggested wait (seconds of
    virtual time) before the request may be retried -- the scheduler's
    requeue path and the client's naive backoff both honour it.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0, model: str = "") -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.model = model


class DeadlineExceededError(AskItError):
    """A request could not be served within its virtual-time deadline.

    Raised by the scheduler *before* spending wait budget that would blow
    the deadline (admission control fails fast), and while requeueing
    rate-limited requests whose accumulated delay has exceeded it.
    """

    def __init__(
        self, message: str, deadline_s: float = 0.0, projected_s: float = 0.0
    ) -> None:
        super().__init__(message)
        #: The configured per-request deadline, in virtual seconds.
        self.deadline_s = deadline_s
        #: The delay the request would have accumulated had it proceeded.
        self.projected_s = projected_s


class SolverError(AskItError):
    """The simulated LLM could not understand or solve a task."""


class TsSyntaxError(AskItError):
    """The TypeScript-subset front end rejected a program."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})" if line else message)
        self.line = line
        self.column = column


class TsRuntimeError(AskItError):
    """The TypeScript-subset interpreter hit a runtime failure."""


class DatasetError(AskItError):
    """A dataset was asked for an unknown task or invalid parameters."""


class ConfigError(AskItError):
    """Invalid library configuration."""
