"""Arithmetic expression trees shared by the GSM8K substrate.

A word problem's ground truth is an expression tree over named quantities.
The same tree is used three ways:

* the dataset evaluates it to produce the reference answer;
* the simulated LLM's solver evaluates it to "reason" about a problem;
* the code synthesizer emits it as Python or TypeScript source.

Emission produces straight-line arithmetic with conventional operator
precedence and minimal parenthesization.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SolverError

_PREC = {"+": 1, "-": 1, "*": 2, "/": 2}


class Expr:
    """Base class of expression nodes."""

    def evaluate(self, env: Mapping[str, float]) -> float:
        raise NotImplementedError

    def emit(self, prec: int = 0) -> str:
        """Render as source (valid in both Python and TypeScript)."""
        raise NotImplementedError

    def variables(self) -> list[str]:
        """Free variables in first-use order."""
        seen: list[str] = []
        self._collect(seen)
        return seen

    def _collect(self, seen: list[str]) -> None:
        pass

    def __repr__(self) -> str:
        return f"<Expr {self.emit()}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and other.emit() == self.emit()

    def __hash__(self) -> int:
        return hash(self.emit())


class Num(Expr):
    """A numeric constant."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def evaluate(self, env: Mapping[str, float]) -> float:
        return self.value

    def emit(self, prec: int = 0) -> str:
        if self.value.is_integer():
            return str(int(self.value))
        return repr(self.value)

    def _collect(self, seen: list[str]) -> None:
        pass


class Var(Expr):
    """A named quantity (one of the problem's numeric slots)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, env: Mapping[str, float]) -> float:
        if self.name not in env:
            raise SolverError(f"unbound variable {self.name!r}")
        return float(env[self.name])

    def emit(self, prec: int = 0) -> str:
        return self.name

    def _collect(self, seen: list[str]) -> None:
        if self.name not in seen:
            seen.append(self.name)


class BinOp(Expr):
    """A binary arithmetic operation."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _PREC:
            raise ValueError(f"unsupported operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Mapping[str, float]) -> float:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if right == 0:
            raise SolverError("division by zero in word problem")
        return left / right

    def emit(self, prec: int = 0) -> str:
        own = _PREC[self.op]
        left = self.left.emit(own)
        # Right operand of - and / needs parens at equal precedence.
        right = self.right.emit(own + (1 if self.op in "-/" else 0))
        text = f"{left} {self.op} {right}"
        if own < prec:
            return f"({text})"
        return text

    def _collect(self, seen: list[str]) -> None:
        self.left._collect(seen)
        self.right._collect(seen)


def num(value: float) -> Num:
    return Num(value)


def var(name: str) -> Var:
    return Var(name)


def add(left: Expr, right: Expr) -> BinOp:
    return BinOp("+", left, right)


def sub(left: Expr, right: Expr) -> BinOp:
    return BinOp("-", left, right)


def mul(left: Expr, right: Expr) -> BinOp:
    return BinOp("*", left, right)


def div(left: Expr, right: Expr) -> BinOp:
    return BinOp("/", left, right)


def perturb(expr: Expr) -> Expr:
    """A subtly wrong variant of ``expr`` (models an LLM slip).

    Swaps the top-most operation for a near-miss: ``+`` drops its right
    operand's last term, ``-`` flips to ``+``, ``*`` gains an off-by-one,
    ``/`` inverts.  The result is always *different* from the original on
    generic inputs.
    """
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return sub(expr.left, expr.right)
        if expr.op == "-":
            return add(expr.left, expr.right)
        if expr.op == "*":
            return add(mul(expr.left, expr.right), Num(1))
        return div(expr.right, expr.left)
    return add(expr, Num(1))
