"""Feedback refinement messages for the retry loop (Section III-E).

When a response fails one of the three validation criteria, the runtime
re-prompts with the original prompt, the model's offending response, and a
pointed instruction naming the failed criterion.  The instruction text per
criterion lives here so the runtime, tests, and the simulated LLM (which
must *recognize* a feedback prompt to model models-doing-better-on-retry)
share one definition.
"""

from __future__ import annotations

from repro.errors import CodeValidationError, ResponseFormatError

FEEDBACK_MARKER = "Your previous response was:"

_INSTRUCTIONS: dict[int, str] = {
    ResponseFormatError.CRITERION_NO_JSON: (
        "The response did not contain a valid JSON code block. Respond "
        "again with the answer in a JSON code block enclosed with ```json "
        "and ```."
    ),
    ResponseFormatError.CRITERION_NO_ANSWER_FIELD: (
        "The JSON object did not include the 'answer' field. Respond again "
        "with a JSON object that has both 'reason' and 'answer' fields."
    ),
    ResponseFormatError.CRITERION_BAD_TYPE: (
        "The 'answer' field did not match the expected type. Respond again "
        "making sure the 'answer' field conforms to the type in the ```ts "
        "code block."
    ),
}


def refine_direct_prompt(original_prompt: str, error: ResponseFormatError) -> str:
    """Original prompt + offending response + corrective instruction."""
    instruction = _INSTRUCTIONS[error.criterion]
    detail = str(error)
    return (
        f"{original_prompt}\n"
        f"{FEEDBACK_MARKER}\n"
        f"{error.response}\n"
        f"That response was not acceptable: {detail}\n"
        f"{instruction}\n"
    )


CODEGEN_FEEDBACK_MARKER = "Your previous implementation was:"


def refine_codegen_prompt(
    original_prompt: str, previous_code: str, error: Exception
) -> str:
    """Codegen retry prompt carrying the failing code and its failures.

    For semantic (example-test) failures the individual mismatches are
    included so the model can see which inputs went wrong.
    """
    lines = [original_prompt, CODEGEN_FEEDBACK_MARKER, previous_code]
    if isinstance(error, CodeValidationError) and error.failures:
        lines.append("It failed the following checks:")
        lines.extend(f"- {failure}" for failure in error.failures[:10])
    else:
        lines.append(f"It was rejected: {error}")
    lines.append("Implement the function again, fixing these problems.")
    return "\n".join(lines) + "\n"


def is_feedback_prompt(prompt: str) -> bool:
    """True when ``prompt`` is a refinement of an earlier attempt."""
    return FEEDBACK_MARKER in prompt or CODEGEN_FEEDBACK_MARKER in prompt
