"""Prompt synthesis: direct-answer (Listing 2) and codegen (Figure 4)."""

from repro.prompts.codegen import (
    PYTHON,
    TYPESCRIPT,
    build_codegen_prompt,
    python_signature,
    typescript_signature,
)
from repro.prompts.direct import (
    PREAMBLE,
    REASON_INSTRUCTION,
    FewShotExample,
    build_direct_prompt,
    response_type_fence,
)
from repro.prompts.feedback import (
    CODEGEN_FEEDBACK_MARKER,
    FEEDBACK_MARKER,
    is_feedback_prompt,
    refine_codegen_prompt,
    refine_direct_prompt,
)

__all__ = [
    "build_direct_prompt",
    "build_codegen_prompt",
    "FewShotExample",
    "response_type_fence",
    "typescript_signature",
    "python_signature",
    "refine_direct_prompt",
    "refine_codegen_prompt",
    "is_feedback_prompt",
    "PREAMBLE",
    "REASON_INSTRUCTION",
    "FEEDBACK_MARKER",
    "CODEGEN_FEEDBACK_MARKER",
    "TYPESCRIPT",
    "PYTHON",
]
