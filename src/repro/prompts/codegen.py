"""Prompt synthesis for codable tasks (Figure 4 of the paper).

The prompt is one-shot: a fixed worked example (implementing an
``add 'x' and 'y'`` function) followed by the real request.  The function
signature is derived from the ``define`` call's type information and the
task description becomes a comment inside the empty body for the LLM to
fill in.

The TypeScript flavour carries full parameter types; the Python flavour
deliberately does *not* (the paper's pyaskit passes no parameter types to
code generation, which is exactly why its tasks #11 and #21-24 failed --
we reproduce that asymmetry).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.templates import PromptTemplate
from repro.types.base import Type

TYPESCRIPT = "typescript"
PYTHON = "python"


def typescript_signature(
    name: str,
    parameters: Sequence[str],
    parameter_types: Mapping[str, Type] | None,
    return_type: Type,
) -> str:
    """Render ``export function name({a, b}: {a: T; b: U}): R``.

    Parameters without a declared type fall back to ``any``.  AskIt uses a
    destructured named-parameter object so that generated functions are
    insensitive to parameter order in the template prompt.
    """
    names = ", ".join(parameters)
    if parameter_types is None:
        parameter_types = {}
    annotations = ", ".join(
        f"{param}: {parameter_types[param].typescript() if param in parameter_types else 'any'}"
        for param in parameters
    )
    rendered_return = return_type.typescript()
    if parameters:
        return (
            f"export function {name}({{{names}}}: {{{annotations}}}): {rendered_return}"
        )
    return f"export function {name}(): {rendered_return}"


def python_signature(name: str, parameters: Sequence[str]) -> str:
    """Render ``def name(a, b):`` -- untyped, as in the paper's pyaskit."""
    names = ", ".join(parameters)
    return f"def {name}({names}):"


def _typescript_stub(signature: str, task_comment: str) -> str:
    return f"{signature} {{\n    // {task_comment}\n}}"


def _python_stub(signature: str, task_comment: str) -> str:
    return f"{signature}\n    # {task_comment}\n    ..."


_ONE_SHOT_TS_QUESTION = _typescript_stub(
    "export function func({x, y}: {x: number, y: number}): number",
    "add 'x' and 'y'",
)
_ONE_SHOT_TS_ANSWER = (
    "export function func({x, y}: {x: number, y: number}): number {\n"
    "    // add 'x' and 'y'\n"
    "    return x + y;\n"
    "}"
)
_ONE_SHOT_PY_QUESTION = _python_stub("def func(x, y):", "add 'x' and 'y'")
_ONE_SHOT_PY_ANSWER = "def func(x, y):\n    # add 'x' and 'y'\n    return x + y"


def build_codegen_prompt(
    language: str,
    name: str,
    template: PromptTemplate,
    return_type: Type,
    parameter_types: Mapping[str, Type] | None = None,
) -> str:
    """Assemble the complete Figure-4 prompt asking the LLM to code a task.

    ``language`` is ``"typescript"`` or ``"python"``.  The first two
    segments are the fixed worked example; the third carries the actual
    task, whose description is the template with placeholders quoted.
    """
    task_comment = template.quoted()
    if language == TYPESCRIPT:
        question = _ONE_SHOT_TS_QUESTION
        answer = _ONE_SHOT_TS_ANSWER
        signature = typescript_signature(
            name, template.parameters, parameter_types, return_type
        )
        stub = _typescript_stub(signature, task_comment)
        tag = TYPESCRIPT
    elif language == PYTHON:
        question = _ONE_SHOT_PY_QUESTION
        answer = _ONE_SHOT_PY_ANSWER
        signature = python_signature(name, template.parameters)
        stub = _python_stub(signature, task_comment)
        tag = PYTHON
    else:
        raise ValueError(f"unsupported code generation language {language!r}")

    return (
        f"Q: Implement the following function:\n"
        f"```{tag}\n{question}\n```\n"
        f"\n"
        f"A:\n"
        f"```{tag}\n{answer}\n```\n"
        f"\n"
        f"Q: Implement the following function:\n"
        f"```{tag}\n{stub}\n```\n"
    )
