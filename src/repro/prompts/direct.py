"""Prompt synthesis for directly answerable tasks (Listing 2 of the paper).

The generated prompt has the fixed shape::

    You are a helpful assistant that generates responses in JSON format
    enclosed with ```json and ``` like:
    ```json
    { "reason": "...", "answer": "..." }
    ```
    The response in the JSON code block should match the type defined as
    follows:
    ```ts
    { reason: string; answer: <TYPE> }
    ```
    Explain your answer step-by-step in the 'reason' field.

    <task with placeholders quoted>
    where 'param' = value, ...

Lines 1-4 and the reason-field instruction are fixed; only the ``answer``
type and the task lines vary.  Constraining answers to typed JSON is what
the paper calls *type-guided output control*; the mandatory ``reason``
field elicits chain-of-thought.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from repro.templates import PromptTemplate
from repro.types.base import Type

PREAMBLE = (
    "You are a helpful assistant that generates responses in JSON format "
    "enclosed with ```json and ``` like:\n"
    "```json\n"
    '{ "reason": "Step-by-step reason for the answer", '
    '"answer": "Final answer or result" }\n'
    "```\n"
)

TYPE_INTRO = (
    "The response in the JSON code block should match the type defined as "
    "follows:\n"
)

REASON_INSTRUCTION = "Explain your answer step-by-step in the 'reason' field.\n"


def response_type_fence(answer_type: Type) -> str:
    """The ```` ```ts ```` fence declaring the full response type."""
    response_type = "{ reason: string; answer: " + answer_type.typescript() + " }"
    return f"```ts\n{response_type}\n```\n"


def render_examples(examples: Sequence["FewShotExample"]) -> str:
    """Render few-shot demonstrations appended after the instructions.

    Each example shows the parameter bindings and the exact JSON reply the
    model is expected to produce, so the demonstrations double as format
    anchors.
    """
    if not examples:
        return ""
    parts = ["Examples:\n"]
    for example in examples:
        bindings = ", ".join(
            f"'{name}' = {json.dumps(value)}" for name, value in example.inputs.items()
        )
        reply = json.dumps({"reason": example.reason, "answer": example.output})
        if bindings:
            parts.append(f"For {bindings} respond:\n```json\n{reply}\n```\n")
        else:
            parts.append(f"Respond:\n```json\n{reply}\n```\n")
    return "".join(parts)


class FewShotExample:
    """One input/output demonstration for few-shot prompting."""

    __slots__ = ("inputs", "output", "reason")

    def __init__(self, inputs: Mapping[str, Any], output: Any, reason: str = "...") -> None:
        self.inputs = dict(inputs)
        self.output = output
        self.reason = reason

    def __repr__(self) -> str:
        return f"FewShotExample({self.inputs!r} -> {self.output!r})"


def build_direct_prompt(
    template: PromptTemplate,
    answer_type: Type,
    args: Mapping[str, Any],
    examples: Sequence[FewShotExample] = (),
) -> str:
    """Assemble the complete Listing-2 prompt for one task invocation."""
    task_line = template.quoted()
    where = template.where_clause(args)
    parts = [
        PREAMBLE,
        TYPE_INTRO,
        response_type_fence(answer_type),
        REASON_INSTRUCTION,
        render_examples(examples),
        "\n",
        task_line,
        "\n",
    ]
    if where:
        parts.append(where + "\n")
    return "".join(parts)
