"""The serving gateway: a zero-dependency ASGI application.

``GatewayApp`` is a plain ASGI 3 callable -- run it under uvicorn,
hypercorn, daphne, or (hermetically, as the test suite does) the stdlib
:class:`~repro.serve.testclient.ASGITestClient`.  Endpoints:

``POST /v1/ask``
    One typed question.  Body: ``{"type": "number", "template":
    "{{a}} + {{b}}?", "args": {"a": 2, "b": 3}}``.  ``"stream": true``
    switches the response to NDJSON event lines (``accepted`` then
    ``result``) so callers see admission before completion.
``POST /v1/map``
    A batch over ``"items"`` (a list of args bindings), streamed back as
    one NDJSON line per item in input order plus a trailing summary.
``GET /healthz``
    Liveness + tenant census.  Unauthenticated.
``GET /metrics``
    Prometheus text: the gateway's own registry plus every tenant
    session's registry stamped with a ``tenant`` label.  Because the
    per-tenant series are rendered from the same
    :class:`~repro.llm.client.ClientStats` registry the sessions write,
    the scrape matches the in-process stats by construction.

Authentication is an ``x-api-key`` header resolved through the
:class:`~repro.serve.tenants.TenantRegistry`; admission is weighted-fair
(see :class:`~repro.core.scheduler.WeightedFairTurnstile`), with
per-tenant rate budgets charged to the tenant's virtual clock and
cumulative quotas answered with HTTP 429.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable, Mapping

import repro.types as t
from repro.core.scheduler import admission_tenant
from repro.errors import (
    AskItError,
    QuotaExceededError,
    TemplateError,
    TypeSyntaxError,
)
from repro.llm.tokenizer import count_tokens
from repro.obs.metrics import MetricsRegistry
from repro.serve.tenants import TenantRegistry, TenantRuntime
from repro.types import parse_type

#: Python-flavoured aliases accepted in the wire ``"type"`` field next to
#: the TypeScript syntax ``parse_type`` understands ("number", "string",
#: "{name: string}[]", ...).
TYPE_ALIASES: Mapping[str, Any] = {
    "int": t.int,
    "float": t.float,
    "str": t.str,
    "bool": t.bool,
}

#: Flat completion-token allowance added to every request's token
#: estimate (the prompt side is counted from the actual text).
COMPLETION_TOKEN_ESTIMATE = 64

_JSON = "application/json"
_NDJSON = "application/x-ndjson"
_PROM = "text/plain; version=0.0.4; charset=utf-8"

Send = Callable[[Mapping[str, Any]], Awaitable[None]]
Receive = Callable[[], Awaitable[Mapping[str, Any]]]


class _HTTPError(Exception):
    """Internal short-circuit carrying a ready-to-send error response."""

    def __init__(self, status: int, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


def resolve_wire_type(text: str) -> Any:
    """Map a wire ``"type"`` string to a :mod:`repro.types` type object."""
    alias = TYPE_ALIASES.get(text.strip())
    if alias is not None:
        return alias
    return parse_type(text)


def estimate_request_tokens(template: str, args: Mapping[str, Any]) -> int:
    """Token cost estimate used for TPM budgets and token quotas."""
    prompt = count_tokens(template) + sum(
        count_tokens(str(value)) for value in args.values()
    )
    return prompt + COMPLETION_TOKEN_ESTIMATE


class GatewayApp:
    """Multi-tenant ASGI front end over per-tenant AskIt sessions."""

    def __init__(self, registry: TenantRegistry) -> None:
        self.registry = registry
        #: Gateway-level metrics (request counts, admission waits); the
        #: per-tenant LLM metrics live on each tenant's own registry.
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "askit_gateway_requests_total",
            "Gateway HTTP requests by tenant, route, and status.",
        )
        self._admission_wait = self.metrics.histogram(
            "askit_gateway_admission_wait_seconds",
            "Virtual seconds requests waited for rate budget at admission.",
        )
        self._inflight = self.metrics.gauge(
            "askit_gateway_inflight_requests",
            "Requests currently executing, by tenant.",
        )

    # ----- ASGI plumbing --------------------------------------------------

    async def __call__(
        self, scope: Mapping[str, Any], receive: Receive, send: Send
    ) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - websockets etc.
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")
        method = scope["method"].upper()
        path = scope["path"]
        headers = {
            key.decode("latin-1").lower(): value.decode("latin-1")
            for key, value in scope.get("headers", ())
        }
        tenant_label = "-"
        try:
            if path == "/healthz" and method == "GET":
                await self._send_json(send, 200, self._health())
                status = 200
            elif path == "/metrics" and method == "GET":
                await self._send_text(send, 200, self._render_metrics(), _PROM)
                status = 200
            elif path in ("/v1/ask", "/v1/map"):
                if method != "POST":
                    raise _HTTPError(405, f"{path} only accepts POST")
                runtime = self._authenticate(headers)
                tenant_label = runtime.name
                body = await self._read_json(receive)
                if path == "/v1/ask":
                    status = await self._handle_ask(runtime, body, send)
                else:
                    status = await self._handle_map(runtime, body, send)
            else:
                raise _HTTPError(404, f"no route for {method} {path}")
        except _HTTPError as exc:
            await self._send_json(send, exc.status, exc.payload)
            status = exc.status
        self._requests.inc(tenant=tenant_label, route=path, status=str(status))

    async def _lifespan(self, receive: Receive, send: Send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _read_json(self, receive: Receive) -> dict[str, Any]:
        chunks: list[bytes] = []
        while True:
            message = await receive()
            if message["type"] != "http.request":  # pragma: no cover
                raise _HTTPError(400, "unexpected ASGI message during body read")
            chunks.append(message.get("body", b""))
            if not message.get("more_body", False):
                break
        raw = b"".join(chunks)
        if not raw:
            raise _HTTPError(400, "request body must be a JSON object")
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise _HTTPError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return body

    async def _send_json(
        self, send: Send, status: int, payload: Mapping[str, Any]
    ) -> None:
        await self._send_text(send, status, json.dumps(payload), _JSON)

    async def _send_text(
        self, send: Send, status: int, text: str, content_type: str
    ) -> None:
        body = text.encode("utf-8")
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (b"content-type", content_type.encode("latin-1")),
                    (b"content-length", str(len(body)).encode("latin-1")),
                ],
            }
        )
        await send({"type": "http.response.body", "body": body})

    async def _start_stream(self, send: Send, status: int = 200) -> None:
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [(b"content-type", _NDJSON.encode("latin-1"))],
            }
        )

    async def _stream_line(self, send: Send, payload: Mapping[str, Any]) -> None:
        await send(
            {
                "type": "http.response.body",
                "body": (json.dumps(payload) + "\n").encode("utf-8"),
                "more_body": True,
            }
        )

    async def _end_stream(self, send: Send) -> None:
        await send({"type": "http.response.body", "body": b""})

    # ----- request handling -----------------------------------------------

    def _authenticate(self, headers: Mapping[str, str]) -> TenantRuntime:
        runtime = self.registry.authenticate(headers.get("x-api-key"))
        if runtime is None:
            raise _HTTPError(401, "unknown or missing x-api-key")
        return runtime

    def _parse_task(
        self, body: Mapping[str, Any]
    ) -> tuple[Any, str, dict[str, Any]]:
        template = body.get("template")
        if not isinstance(template, str) or not template:
            raise _HTTPError(400, 'request needs a non-empty "template" string')
        args = body.get("args", {})
        if not isinstance(args, dict):
            raise _HTTPError(400, '"args" must be an object')
        type_text = body.get("type", "string")
        if not isinstance(type_text, str):
            raise _HTTPError(400, '"type" must be a string')
        try:
            return_type = resolve_wire_type(type_text)
        except TypeSyntaxError as exc:
            raise _HTTPError(400, f"bad type {type_text!r}: {exc}")
        return return_type, template, args

    def _admit(self, runtime: TenantRuntime, tokens: int) -> float:
        """Charge quota and rate budget; the returned wait is already
        charged to the tenant's virtual clock."""
        turnstile = self.registry.turnstile
        try:
            turnstile.charge_quota(runtime.name, tokens=tokens)
        except QuotaExceededError as exc:
            raise _HTTPError(
                429,
                str(exc),
                tenant=exc.tenant,
                resource=exc.resource,
                used=exc.used,
                limit=exc.limit,
            )
        clock = runtime.session.clock
        wait = turnstile.reserve_budget(runtime.name, clock.now(), tokens=tokens)
        if wait > 0.0:
            clock.charge(wait)
            runtime.session.stats.record_throttle(runtime.config.model, wait)
        self._admission_wait.observe(wait, tenant=runtime.name)
        return wait

    def _execute_ask(
        self,
        runtime: TenantRuntime,
        return_type: Any,
        template: str,
        args: dict[str, Any],
    ) -> Any:
        with runtime.checkout() as session:
            with admission_tenant(runtime.name):
                return session.ask(return_type, template, **args)

    async def _handle_ask(
        self, runtime: TenantRuntime, body: Mapping[str, Any], send: Send
    ) -> int:
        return_type, template, args = self._parse_task(body)
        wait = self._admit(runtime, estimate_request_tokens(template, args))
        stream = bool(body.get("stream", False))
        self._inflight.add(1.0, tenant=runtime.name)
        try:
            if stream:
                await self._start_stream(send)
                await self._stream_line(
                    send,
                    {"event": "accepted", "tenant": runtime.name, "wait_s": wait},
                )
            try:
                value = await asyncio.to_thread(
                    self._execute_ask, runtime, return_type, template, args
                )
            except AskItError as exc:
                if stream:
                    await self._stream_line(
                        send,
                        {"event": "error", "error": str(exc),
                         "kind": type(exc).__name__},
                    )
                    await self._end_stream(send)
                    return 200
                status = 400 if isinstance(exc, TemplateError) else 502
                raise _HTTPError(status, str(exc), kind=type(exc).__name__)
            payload = {
                "tenant": runtime.name,
                "value": value,
                "wait_s": wait,
                "virtual_s": round(runtime.session.clock.now(), 6),
            }
            if stream:
                await self._stream_line(send, {"event": "result", **payload})
                await self._end_stream(send)
            else:
                await self._send_json(send, 200, payload)
            return 200
        finally:
            self._inflight.add(-1.0, tenant=runtime.name)

    def _execute_map(
        self,
        runtime: TenantRuntime,
        return_type: Any,
        template: str,
        items: list[dict[str, Any]],
        max_concurrency: int,
    ) -> Any:
        with runtime.checkout() as session:
            with admission_tenant(runtime.name):
                fn = session.define(return_type, template)
                return fn.map(items, max_concurrency=max_concurrency)

    async def _handle_map(
        self, runtime: TenantRuntime, body: Mapping[str, Any], send: Send
    ) -> int:
        return_type, template, _ = self._parse_task(body)
        items = body.get("items")
        if not isinstance(items, list) or not all(
            isinstance(item, dict) for item in items
        ):
            raise _HTTPError(400, '"items" must be a list of args objects')
        max_concurrency = body.get("max_concurrency", 8)
        if not isinstance(max_concurrency, int) or max_concurrency < 1:
            raise _HTTPError(400, '"max_concurrency" must be a positive integer')
        tokens = sum(estimate_request_tokens(template, item) for item in items)
        wait = self._admit(runtime, tokens)
        self._inflight.add(1.0, tenant=runtime.name)
        try:
            result = await asyncio.to_thread(
                self._execute_map,
                runtime,
                return_type,
                template,
                list(items),
                max_concurrency,
            )
        except AskItError as exc:
            raise _HTTPError(502, str(exc), kind=type(exc).__name__)
        finally:
            self._inflight.add(-1.0, tenant=runtime.name)
        await self._start_stream(send)
        for outcome in result.outcomes:
            line: dict[str, Any] = {"index": outcome.index, "ok": outcome.ok}
            if outcome.ok:
                line["value"] = outcome.value
            else:
                line["error"] = str(outcome.error)
                line["kind"] = type(outcome.error).__name__
            await self._stream_line(send, line)
        await self._stream_line(
            send,
            {
                "event": "summary",
                "tenant": runtime.name,
                "items": len(result),
                "failures": len(result.failures),
                "wait_s": wait,
                "wall_s": round(result.wall_s, 6),
            },
        )
        await self._end_stream(send)
        return 200

    # ----- observability --------------------------------------------------

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "tenants": [runtime.snapshot() for runtime in self.registry.tenants()],
            "admitted": dict(self.registry.turnstile.admitted),
        }

    def _render_metrics(self) -> str:
        """Gateway + per-tenant Prometheus text with deduplicated headers.

        Rendering each tenant session's *own* registry (stamped with a
        ``tenant`` label at scrape time) is what makes the scrape agree
        with ``ClientStats`` by construction -- there is no second set of
        counters to drift.
        """
        sections: list[str] = [self.metrics.prometheus_text()]
        for runtime in self.registry.tenants():
            sections.append(
                runtime.session.stats.registry.prometheus_text(
                    extra_labels={"tenant": runtime.name}
                )
            )
        seen_headers: set[str] = set()
        lines: list[str] = []
        for section in sections:
            for line in section.splitlines():
                if line.startswith("#"):
                    if line in seen_headers:
                        continue
                    seen_headers.add(line)
                lines.append(line)
        return "\n".join(lines) + "\n"
