"""A hermetic, stdlib-only ASGI test client.

Drives any ASGI 3 application in-process -- no sockets, no server, no
third-party HTTP stack -- so the gateway's tier-1 tests stay hermetic
under the suite's socket-blocking fixture.  Each request runs the app
coroutine to completion on a private event loop (``asyncio.run``), which
also exercises the app's ``asyncio.to_thread`` offloading for real::

    client = ASGITestClient(app)
    response = client.post("/v1/ask", json={...}, headers={"x-api-key": key})
    assert response.status == 200 and response.json()["value"] == 5

Responses keep the individual body frames in ``chunks`` so streaming
endpoints can be asserted frame-by-frame (``ndjson()`` parses them back
into objects).  For concurrency tests, run ``client.post`` calls from a
thread pool -- every call owns its loop, so calls are independent.
"""

from __future__ import annotations

import asyncio
import json as jsonlib
from typing import Any, Mapping


class Response:
    """One in-process HTTP exchange's outcome."""

    def __init__(
        self, status: int, headers: list[tuple[str, str]], chunks: list[bytes]
    ) -> None:
        self.status = status
        #: Response headers, lower-cased names, in send order.
        self.headers = headers
        #: Individual ``http.response.body`` frames (empty frames dropped).
        self.chunks = [chunk for chunk in chunks if chunk]
        self.body = b"".join(chunks)

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def header(self, name: str) -> str | None:
        wanted = name.lower()
        for key, value in self.headers:
            if key == wanted:
                return value
        return None

    def json(self) -> Any:
        return jsonlib.loads(self.body)

    def ndjson(self) -> list[Any]:
        """Parse an NDJSON body back into a list of objects."""
        return [
            jsonlib.loads(line)
            for line in self.text.splitlines()
            if line.strip()
        ]

    def __repr__(self) -> str:
        return f"Response(status={self.status}, bytes={len(self.body)})"


class ASGITestClient:
    """Synchronous facade over an ASGI 3 application."""

    def __init__(self, app: Any) -> None:
        self.app = app

    # ----- convenience verbs ----------------------------------------------

    def get(self, path: str, headers: Mapping[str, str] | None = None) -> Response:
        return self.request("GET", path, headers=headers)

    def post(
        self,
        path: str,
        json: Any | None = None,
        body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> Response:
        return self.request("POST", path, json=json, body=body, headers=headers)

    def request(
        self,
        method: str,
        path: str,
        json: Any | None = None,
        body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> Response:
        if json is not None:
            body = jsonlib.dumps(json).encode("utf-8")
            headers = {**(headers or {}), "content-type": "application/json"}
        return asyncio.run(self._exchange(method, path, body or b"", headers or {}))

    # ----- the exchange ---------------------------------------------------

    async def _exchange(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str],
    ) -> Response:
        if "?" in path:
            path, _, query = path.partition("?")
        else:
            query = ""
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "root_path": "",
            "headers": [
                (key.lower().encode("latin-1"), value.encode("latin-1"))
                for key, value in headers.items()
            ],
            "client": ("testclient", 0),
            "server": ("testserver", 80),
        }
        request_messages: list[dict[str, Any]] = [
            {"type": "http.request", "body": body, "more_body": False}
        ]
        sent = iter(request_messages)

        async def receive() -> dict[str, Any]:
            try:
                return next(sent)
            except StopIteration:
                # The app over-read; park it the way a server would.
                return {"type": "http.disconnect"}

        status: list[int] = []
        response_headers: list[tuple[str, str]] = []
        chunks: list[bytes] = []
        complete = asyncio.Event()

        async def send(message: Mapping[str, Any]) -> None:
            kind = message["type"]
            if kind == "http.response.start":
                status.append(int(message["status"]))
                for key, value in message.get("headers", ()):
                    response_headers.append(
                        (key.decode("latin-1").lower(), value.decode("latin-1"))
                    )
            elif kind == "http.response.body":
                chunks.append(bytes(message.get("body", b"")))
                if not message.get("more_body", False):
                    complete.set()
            else:  # pragma: no cover - trailers etc.
                raise AssertionError(f"unexpected ASGI message {kind!r}")

        await self.app(scope, receive, send)
        if not status or not complete.is_set():
            raise AssertionError(
                "ASGI app returned without completing the response"
            )
        return Response(status[0], response_headers, chunks)


def run_lifespan(app: Any) -> None:
    """Drive a full startup/shutdown lifespan cycle through ``app``."""

    async def _cycle() -> None:
        inbox: "asyncio.Queue[dict[str, str]]" = asyncio.Queue()
        await inbox.put({"type": "lifespan.startup"})
        await inbox.put({"type": "lifespan.shutdown"})
        acks: list[str] = []

        async def send(message: Mapping[str, Any]) -> None:
            acks.append(message["type"])

        await app({"type": "lifespan", "asgi": {"version": "3.0"}}, inbox.get, send)
        assert acks == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ], acks

    asyncio.run(_cycle())
