"""Tenant model for the serving gateway.

A *tenant* is one API-key-holding customer of the gateway.  Each tenant
owns an isolated :class:`~repro.core.session.Session` pool -- its own
:class:`~repro.core.config.Config`, :class:`~repro.llm.client.ChatClient`
(and with it stats, virtual clock, and telemetry) -- so no tenant can
observe or perturb another tenant's accounting.  What tenants *share* is
admission: every tenant session's scheduler is rewired (via
:meth:`~repro.core.scheduler.RequestScheduler.set_turnstile`) onto one
process-wide :class:`~repro.core.scheduler.WeightedFairTurnstile`, which
arbitrates dispatch slots by weighted deficit round robin and enforces
per-tenant rate budgets and quotas.

::

    registry = TenantRegistry()
    registry.add(TenantSpec("acme", api_key="sk-acme", weight=3.0))
    registry.add(TenantSpec("beta", api_key="sk-beta", weight=1.0))
    runtime = registry.authenticate("sk-acme")
    with runtime.checkout() as session:
        session.ask(t.int, "{{a}} + {{b}}?", a=2, b=3)
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

import contextlib

from repro.core.config import Config
from repro.core.scheduler import TenantBudget, WeightedFairTurnstile
from repro.core.session import Session
from repro.errors import ConfigError
from repro.llm.client import ChatClient


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant.

    ``weight`` is the tenant's fair share: under contention a tenant with
    weight 3 is admitted three times for every admission of a weight-1
    tenant.  ``requests_per_minute`` / ``tokens_per_minute`` cap the
    tenant's *rate* (GCRA pacing, waits cure it); ``max_requests`` /
    ``max_tokens`` cap the tenant's *cumulative quota* (HTTP 429, only an
    operator cures it).  ``pool_size`` bounds the tenant's in-process
    concurrency.
    """

    name: str
    api_key: str
    weight: float = 1.0
    model: str | None = None
    requests_per_minute: float | None = None
    tokens_per_minute: float | None = None
    max_requests: int | None = None
    max_tokens: int | None = None
    pool_size: int = 4
    priority: int = 0
    config_overrides: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if not self.api_key:
            raise ConfigError(f"tenant {self.name!r} needs a non-empty api_key")
        if self.weight <= 0:
            raise ConfigError(f"tenant {self.name!r} weight must be > 0")
        if self.pool_size < 1:
            raise ConfigError(f"tenant {self.name!r} pool_size must be >= 1")


class TenantRuntime:
    """Live state for one tenant: session pool + budget handle.

    All sessions in the pool share one isolated config (hence one client,
    one stats object, one virtual clock) so the tenant's accounting is a
    single coherent surface; the pool itself is the tenant's concurrency
    bound.  Check sessions out with :meth:`checkout` -- it blocks when the
    pool is exhausted, which is deliberate back-pressure.
    """

    def __init__(self, spec: TenantSpec, config: Config, budget: TenantBudget) -> None:
        self.spec = spec
        self.config = config
        self.budget = budget
        self._sessions: "queue.LifoQueue[Session]" = queue.LifoQueue()
        for _ in range(spec.pool_size):
            self._sessions.put(Session(config))
        # Any pooled session exposes the shared client/stats/clock.
        self._probe = Session(config)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def session(self) -> Session:
        """A read-only view session (shared stats/clock/telemetry)."""
        return self._probe

    @contextlib.contextmanager
    def checkout(self, timeout: float | None = None) -> Iterator[Session]:
        """Borrow a pooled session; blocks until one is free."""
        session = self._sessions.get(timeout=timeout)
        try:
            yield session
        finally:
            self._sessions.put(session)

    def snapshot(self) -> dict[str, Any]:
        """Operator-facing summary: spec knobs + live quota usage."""
        stats = self._probe.stats
        return {
            "tenant": self.spec.name,
            "weight": self.spec.weight,
            "model": self.config.model,
            "pool_size": self.spec.pool_size,
            "calls": stats.calls,
            "virtual_s": round(self._probe.clock.now(), 6),
            "quota": self.budget.snapshot(),
        }


class TenantRegistry:
    """API key -> tenant resolution plus the shared fairness turnstile.

    The registry owns the one :class:`WeightedFairTurnstile` all tenant
    schedulers share.  ``defaults`` are config keyword arguments applied
    to every tenant (a spec's ``config_overrides`` win); the gateway's
    hermetic tests use them to force simulated models and quiet noise.
    """

    def __init__(
        self,
        default_weight: float = 1.0,
        noise_policy: Any | None = None,
        **defaults: Any,
    ) -> None:
        self.turnstile = WeightedFairTurnstile(default_weight=default_weight)
        #: Noise policy for the per-tenant clients this registry builds
        #: (e.g. ``repro.llm.QUIET`` for exactly-one-call-per-request
        #: accounting in tests); ``None`` keeps the simulated default.
        self.noise_policy = noise_policy
        self._defaults = dict(defaults)
        self._defaults.setdefault("cache_dir", None)
        self._defaults.setdefault("scheduler", "adaptive")
        self._tenants: dict[str, TenantRuntime] = {}
        self._by_key: dict[str, TenantRuntime] = {}
        self._lock = threading.Lock()

    def add(self, spec: TenantSpec) -> TenantRuntime:
        """Register a tenant and build its isolated runtime."""
        with self._lock:
            if spec.name in self._tenants:
                raise ConfigError(f"tenant {spec.name!r} already registered")
            if spec.api_key in self._by_key:
                raise ConfigError(
                    f"api key for tenant {spec.name!r} collides with an existing tenant"
                )
            kwargs = dict(self._defaults)
            kwargs.update(spec.config_overrides)
            if spec.model is not None:
                kwargs["model"] = spec.model
            # The tenant's RPM/TPM limits are enforced once, at gateway
            # admission (TenantBudget) -- not also as per-model pacing
            # inside the session's scheduler, which would double-charge
            # every wait.  Per-model pacing stays available through
            # ``config_overrides``.
            config = Config(**kwargs)
            # Isolated client: Session(config) would build one lazily, but
            # the registry wants it *now* so every pooled session shares
            # it (one stats surface, one virtual clock per tenant).
            if config._client is None:
                config = config.replace(
                    client=ChatClient(
                        noise_policy=self.noise_policy,
                        wire_policy=config.wire_policy,
                    )
                )
            seed = Session(config)
            config = seed.config
            scheduler = config.request_scheduler
            if scheduler is not None:
                scheduler.set_turnstile(self.turnstile)
            budget = self.turnstile.configure_tenant(
                spec.name,
                weight=spec.weight,
                requests_per_minute=spec.requests_per_minute,
                tokens_per_minute=spec.tokens_per_minute,
                max_requests=spec.max_requests,
                max_tokens=spec.max_tokens,
            )
            runtime = TenantRuntime(spec, config, budget)
            self._tenants[spec.name] = runtime
            self._by_key[spec.api_key] = runtime
            return runtime

    def authenticate(self, api_key: str | None) -> TenantRuntime | None:
        """The tenant owning ``api_key``, or ``None`` (-> HTTP 401)."""
        if not api_key:
            return None
        with self._lock:
            return self._by_key.get(api_key)

    def get(self, name: str) -> TenantRuntime | None:
        with self._lock:
            return self._tenants.get(name)

    def tenants(self) -> list[TenantRuntime]:
        with self._lock:
            return list(self._tenants.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)
