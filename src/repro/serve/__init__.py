"""``repro.serve``: the multi-tenant serving gateway.

Turns the single-process AskIt runtime into a service: an ASGI app
(:class:`GatewayApp`) exposing ``/v1/ask``, ``/v1/map``, ``/healthz``,
and ``/metrics``; a tenant model (:class:`TenantSpec` /
:class:`TenantRegistry`) where every API key owns an isolated session
pool but all tenants share one weighted-fair admission turnstile; a
hermetic stdlib test client (:class:`ASGITestClient`); and a
deterministic virtual-time load generator (:class:`LoadGenerator`) that
proves the fairness guarantees at 10k-request scale.  See
``docs/serving.md``.
"""

from repro.serve.app import (
    COMPLETION_TOKEN_ESTIMATE,
    TYPE_ALIASES,
    GatewayApp,
    estimate_request_tokens,
    resolve_wire_type,
)
from repro.serve.loadgen import (
    DISCIPLINES,
    FairnessReport,
    LoadGenerator,
    RequestRecord,
    TenantLoad,
    skewed_mix,
)
from repro.serve.tenants import TenantRegistry, TenantRuntime, TenantSpec
from repro.serve.testclient import ASGITestClient, Response, run_lifespan

__all__ = [
    "ASGITestClient",
    "COMPLETION_TOKEN_ESTIMATE",
    "DISCIPLINES",
    "FairnessReport",
    "GatewayApp",
    "LoadGenerator",
    "RequestRecord",
    "Response",
    "TenantLoad",
    "TenantRegistry",
    "TenantRuntime",
    "TenantSpec",
    "TYPE_ALIASES",
    "estimate_request_tokens",
    "resolve_wire_type",
    "run_lifespan",
    "skewed_mix",
]
