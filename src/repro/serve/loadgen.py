"""Deterministic virtual-time load generator for admission fairness.

Real threads cannot drive 10k concurrent requests deterministically (or
affordably), so this module simulates the gateway's admission layer as a
discrete-event system on a virtual clock: arrivals and departures are
events on a heap, ``capacity`` dispatch slots play the provider's
concurrency limit, and -- crucially -- admission order is decided by the
**real** :class:`~repro.core.scheduler.DeficitRoundRobin` structure the
:class:`~repro.core.scheduler.WeightedFairTurnstile` uses in production.
The harness therefore exercises the exact fairness logic the gateway
runs, with zero nondeterminism: same spec + seed -> same report, byte
for byte.

::

    report = LoadGenerator(
        tenants=[
            TenantLoad("hot", weight=1.0, requests=9000),
            TenantLoad("a", weight=1.0, requests=500),
            TenantLoad("b", weight=1.0, requests=500),
        ],
        capacity=8,
        discipline="weighted-fair",
    ).run()
    report.admitted_share("hot")   # ~1/3 under equal weights
    report.wait_percentile("a", 0.99)

``discipline="fifo"`` swaps the DRR for a plain arrival-order queue --
the baseline the benchmarks compare against, where one hot tenant's
backlog starves everyone behind it.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.scheduler import DeficitRoundRobin
from repro.errors import ConfigError

DISCIPLINES = ("weighted-fair", "fifo")


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's offered load.

    ``rate_rps`` spaces arrivals evenly at that rate; ``None`` means the
    whole backlog arrives at time zero (the all-backlogged regime where
    fairness is hardest).  ``service_s`` is the simulated per-request
    dispatch time; ``priority`` feeds DRR's intra-tenant ordering.
    """

    name: str
    weight: float = 1.0
    requests: int = 100
    rate_rps: float | None = None
    service_s: float = 1.0
    priority: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"tenant {self.name!r} weight must be > 0")
        if self.requests < 0:
            raise ConfigError(f"tenant {self.name!r} requests must be >= 0")
        if self.service_s <= 0:
            raise ConfigError(f"tenant {self.name!r} service_s must be > 0")


@dataclass
class RequestRecord:
    """One simulated request's life cycle, in virtual seconds."""

    tenant: str
    arrival_s: float
    admitted_s: float = -1.0
    completed_s: float = -1.0

    @property
    def wait_s(self) -> float:
        """Time spent queued between arrival and admission."""
        return self.admitted_s - self.arrival_s


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class FairnessReport:
    """Per-tenant admission statistics from one simulated run."""

    discipline: str
    capacity: int
    records: list[RequestRecord]
    weights: dict[str, float]
    #: Virtual time at which each tenant's *last* request was admitted --
    #: past this point the tenant no longer competes for slots.
    exhausted_at: dict[str, float]
    makespan_s: float
    #: Virtual seconds dispatch slots sat idle while work was queued
    #: (work conservation means this stays exactly 0).
    idle_while_backlogged_s: float

    _waits: dict[str, list[float]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for record in self.records:
            self._waits.setdefault(record.tenant, []).append(record.wait_s)
        for waits in self._waits.values():
            waits.sort()

    # ----- shares ---------------------------------------------------------

    @property
    def contended_window_s(self) -> float:
        """End of the window in which *every* tenant still had backlog."""
        return min(self.exhausted_at.values()) if self.exhausted_at else 0.0

    def admissions_in_window(self) -> dict[str, int]:
        """Admissions per tenant while all tenants were still competing."""
        window = self.contended_window_s
        counts: dict[str, int] = {name: 0 for name in self.weights}
        for record in self.records:
            if record.admitted_s <= window:
                counts[record.tenant] += 1
        return counts

    def admitted_share(self, tenant: str) -> float:
        """``tenant``'s fraction of admissions in the contended window."""
        counts = self.admissions_in_window()
        total = sum(counts.values())
        return counts.get(tenant, 0) / total if total else 0.0

    def weight_share(self, tenant: str) -> float:
        """The share DRR owes ``tenant``: weight over total weight."""
        total = sum(self.weights.values())
        return self.weights.get(tenant, 0.0) / total if total else 0.0

    def fairness_error(self, tenant: str) -> float:
        """|admitted share - weight share| (0 is perfect fairness)."""
        return abs(self.admitted_share(tenant) - self.weight_share(tenant))

    # ----- waits ----------------------------------------------------------

    def wait_percentile(self, tenant: str, q: float) -> float:
        """The ``q``-percentile admission wait for ``tenant``."""
        return _percentile(self._waits.get(tenant, []), q)

    def max_wait(self, tenant: str) -> float:
        waits = self._waits.get(tenant, [])
        return waits[-1] if waits else 0.0

    def summary(self) -> dict[str, dict[str, float]]:
        """Machine-readable per-tenant digest (benchmarks snapshot this)."""
        out: dict[str, dict[str, float]] = {}
        for name in sorted(self.weights):
            out[name] = {
                "weight": self.weights[name],
                "requests": float(len(self._waits.get(name, []))),
                "admitted_share": round(self.admitted_share(name), 6),
                "weight_share": round(self.weight_share(name), 6),
                "wait_p50_s": round(self.wait_percentile(name, 0.50), 6),
                "wait_p99_s": round(self.wait_percentile(name, 0.99), 6),
                "wait_max_s": round(self.max_wait(name), 6),
            }
        return out


class LoadGenerator:
    """Discrete-event simulator over the real DRR admission structure."""

    def __init__(
        self,
        tenants: Iterable[TenantLoad],
        capacity: int = 8,
        discipline: str = "weighted-fair",
        seed: int = 0,
    ) -> None:
        self.tenants = list(tenants)
        if not self.tenants:
            raise ConfigError("LoadGenerator needs at least one tenant")
        if len({load.name for load in self.tenants}) != len(self.tenants):
            raise ConfigError("tenant names must be unique")
        if capacity < 1:
            raise ConfigError("capacity must be >= 1")
        if discipline not in DISCIPLINES:
            raise ConfigError(
                f"discipline must be one of {DISCIPLINES}, got {discipline!r}"
            )
        self.capacity = capacity
        self.discipline = discipline
        self.seed = seed

    # ----- arrival plan ---------------------------------------------------

    def _arrivals(self) -> list[tuple[float, int, TenantLoad, RequestRecord]]:
        """The full arrival schedule, deterministically tie-broken.

        Same-instant arrivals are shuffled with a seeded RNG so FIFO's
        arrival order interleaves tenants the way independent callers
        would, instead of following tenant declaration order.
        """
        rng = random.Random(self.seed)
        plan: list[tuple[float, TenantLoad, RequestRecord]] = []
        for load in self.tenants:
            for index in range(load.requests):
                arrival = index / load.rate_rps if load.rate_rps else 0.0
                plan.append((arrival, load, RequestRecord(load.name, arrival)))
        rng.shuffle(plan)
        plan.sort(key=lambda item: item[0])
        return [
            (arrival, order, load, record)
            for order, (arrival, load, record) in enumerate(plan)
        ]

    # ----- simulation -----------------------------------------------------

    def run(self) -> FairnessReport:
        """Simulate the run to completion and report fairness statistics."""
        drr = DeficitRoundRobin()
        fifo: list[tuple[float, RequestRecord, TenantLoad]] = []
        weights = {load.name: load.weight for load in self.tenants}
        for load in self.tenants:
            drr.set_weight(load.name, load.weight)
        by_record: dict[int, TenantLoad] = {}

        ARRIVE, DEPART = 0, 1
        events: list[tuple[float, int, int, RequestRecord | None]] = []
        for arrival, order, load, record in self._arrivals():
            by_record[id(record)] = load
            heapq.heappush(events, (arrival, ARRIVE, order, record))
        seq = len(events)

        free_slots = self.capacity
        pending = 0
        now = 0.0
        idle_while_backlogged = 0.0
        records: list[RequestRecord] = []
        exhausted_at: dict[str, float] = {}
        remaining = {load.name: load.requests for load in self.tenants}

        def admit_next() -> None:
            nonlocal free_slots, pending, seq
            while free_slots > 0 and pending > 0:
                if self.discipline == "weighted-fair":
                    record = drr.pop()
                else:
                    record = heapq.heappop(fifo)[1]
                assert isinstance(record, RequestRecord)
                load = by_record[id(record)]
                record.admitted_s = now
                remaining[record.tenant] -= 1
                if remaining[record.tenant] == 0:
                    exhausted_at[record.tenant] = now
                free_slots -= 1
                pending -= 1
                seq += 1
                heapq.heappush(
                    events, (now + load.service_s, DEPART, seq, record)
                )

        while events:
            now, kind, order, record = heapq.heappop(events)
            if kind == ARRIVE:
                assert record is not None
                load = by_record[id(record)]
                if self.discipline == "weighted-fair":
                    drr.enqueue(load.name, record, load.priority)
                else:
                    heapq.heappush(fifo, (order, record, load))
                pending += 1
            else:
                assert record is not None
                record.completed_s = now
                records.append(record)
                free_slots += 1
            admit_next()
            # Work conservation by construction: admit_next() drains until
            # either slots or backlog run out, so both cannot be positive.
            assert not (pending > 0 and free_slots > 0)

        records.sort(key=lambda r: (r.admitted_s, r.tenant))
        for load in self.tenants:
            if load.requests == 0:
                exhausted_at[load.name] = 0.0
        return FairnessReport(
            discipline=self.discipline,
            capacity=self.capacity,
            records=records,
            weights=weights,
            exhausted_at=exhausted_at,
            makespan_s=now,
            idle_while_backlogged_s=idle_while_backlogged,
        )


def skewed_mix(
    hot_fraction: float = 0.9,
    total_requests: int = 10_000,
    light_tenants: int = 4,
    hot_weight: float = 1.0,
    light_weight: float = 1.0,
    service_s: float = 1.0,
) -> list[TenantLoad]:
    """The canonical skewed workload: one hot tenant vs several light ones.

    ``hot_fraction`` of the offered load comes from the hot tenant; the
    remainder is split evenly over ``light_tenants`` light tenants.
    """
    if not 0.0 < hot_fraction < 1.0:
        raise ConfigError("hot_fraction must be in (0, 1)")
    if light_tenants < 1:
        raise ConfigError("need at least one light tenant")
    hot = int(total_requests * hot_fraction)
    per_light = (total_requests - hot) // light_tenants
    loads = [
        TenantLoad("hot", weight=hot_weight, requests=hot, service_s=service_s)
    ]
    for index in range(light_tenants):
        loads.append(
            TenantLoad(
                f"light{index}",
                weight=light_weight,
                requests=per_light,
                service_s=service_s,
            )
        )
    return loads
