"""Hierarchical spans with ambient context propagation.

A :class:`Tracer` produces :class:`Span` trees describing one request's
journey through the runtime: ``askit.map.item`` at the root, then
``askit.ask`` -> ``askit.bind`` / ``askit.request`` ->
``askit.cache`` / ``askit.admission`` / ``askit.transport`` /
``askit.parse``.  Every span carries

* identity -- ``trace_id`` shared by the whole tree, ``span_id``, and
  ``parent_id`` linking child to parent;
* both clocks -- wall time (``time.time``) for correlation with the
  outside world and the session's *virtual* clock
  (:meth:`~repro.llm.latency.VirtualClock.now`) for deterministic
  durations that match what benchmarks assert on;
* ``attributes`` (set at creation or via :meth:`Span.set_attribute`),
  timestamped ``events``, and a terminal ``status`` of ``"ok"`` or
  ``"error"`` (the error message is preserved and the exception still
  propagates).

The *current* span rides a :mod:`contextvars` variable, so parenthood
follows the code path: nested ``with tracer.span(...)`` blocks nest
spans, ``async`` code inherits context automatically, and ``map()``
worker threads start fresh roots per item (each item is its own trace
by design -- nothing leaks between pool threads).

Instrumented modules that should not depend on a tracer instance use
the module-level helpers :func:`current_span`, :func:`annotate`, and
:func:`add_event`: they act on whatever span is ambient and are no-ops
when tracing is off, which keeps the disabled path allocation-free.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator

#: The ambient span for the current thread/task, if any.
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_current_span", default=None)

#: How many finished spans a tracer retains in memory by default.
DEFAULT_CAPACITY = 10_000


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


def current_span() -> "Span | None":
    """The span ambient on this thread/task, or ``None``."""
    return _CURRENT.get()


def annotate(**attributes: Any) -> None:
    """Set attributes on the ambient span; no-op when none is active."""
    span = _CURRENT.get()
    if span is not None:
        for name, value in attributes.items():
            span.set_attribute(name, value)


def add_event(name: str, **attributes: Any) -> None:
    """Append a timestamped event to the ambient span; no-op when none."""
    span = _CURRENT.get()
    if span is not None:
        span.event(name, **attributes)


class Span:
    """One timed operation inside a trace.

    Spans are created through :meth:`Tracer.span`; they record both the
    virtual clock (``start_v``/``end_v``, whose difference is
    :meth:`duration_s`) and wall clock (``start_wall``/``end_wall``).
    A span is mutable while open and effectively frozen once its
    context manager exits.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attributes",
        "events",
        "status",
        "error",
        "start_wall",
        "end_wall",
        "start_v",
        "end_v",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.events: list[dict[str, Any]] = []
        self.status = "ok"
        self.error: str | None = None
        self.start_wall = tracer.wall_now()
        self.end_wall: float | None = None
        self.start_v = tracer.virtual_time()
        self.end_v: float | None = None
        self._tracer = tracer

    def set_attribute(self, name: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[name] = value

    def event(self, name: str, **attributes: Any) -> None:
        """Append a named event stamped with both clocks."""
        self.events.append(
            {
                "name": name,
                "wall": self._tracer.wall_now(),
                "virtual": self._tracer.virtual_time(),
                **attributes,
            }
        )

    @property
    def finished(self) -> bool:
        """Whether the span's context manager has exited."""
        return self.end_v is not None

    def duration_s(self) -> float:
        """Virtual-clock duration (0.0 while still open)."""
        if self.end_v is None:
            return 0.0
        return self.end_v - self.start_v

    def wall_duration_s(self) -> float:
        """Wall-clock duration (0.0 while still open)."""
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    def to_dict(self) -> dict[str, Any]:
        """The span as a JSON-able dict (the JSONL exporter's row)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "status": self.status,
            "error": self.error,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "start_v": self.start_v,
            "end_v": self.end_v,
            "duration_s": self.duration_s(),
            "attributes": dict(self.attributes),
            "events": list(self.events),
        }

    @classmethod
    def from_dict(cls, row: dict[str, Any]) -> "Span":
        """Rebuild a finished span from :meth:`to_dict` output."""
        span = cls.__new__(cls)
        span.trace_id = row["trace_id"]
        span.span_id = row["span_id"]
        span.parent_id = row.get("parent_id")
        span.name = row["name"]
        span.attributes = dict(row.get("attributes") or {})
        span.events = list(row.get("events") or [])
        span.status = row.get("status", "ok")
        span.error = row.get("error")
        span.start_wall = row.get("start_wall", 0.0)
        span.end_wall = row.get("end_wall")
        span.start_v = row.get("start_v", 0.0)
        span.end_v = row.get("end_v")
        span._tracer = None  # type: ignore[assignment]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}, "
            f"status={self.status!r}, duration={self.duration_s():.4f}s)"
        )


class Tracer:
    """Produces spans and retains the finished ones for querying.

    ``virtual_now`` supplies the deterministic clock (normally the
    session's :meth:`~repro.llm.latency.VirtualClock.now`); ``wall_now``
    supplies real time.  Finished spans land in a bounded ring
    (``capacity`` newest kept) and are offered to every ``on_end`` hook
    -- that is how the telemetry layer feeds histograms and the JSONL
    sink without the tracer knowing about either.
    """

    def __init__(
        self,
        virtual_now: Callable[[], float] | None = None,
        wall_now: Callable[[], float] = time.time,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.virtual_now = virtual_now
        self.wall_now = wall_now
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._hooks: list[Callable[[Span], None]] = []
        self._lock = threading.Lock()

    def virtual_time(self) -> float:
        """The current virtual-clock reading (0.0 when no clock is set)."""
        return self.virtual_now() if self.virtual_now is not None else 0.0

    def on_end(self, hook: Callable[[Span], None]) -> None:
        """Register a callback fired with every finished span."""
        with self._lock:
            self._hooks.append(hook)

    @contextmanager
    def span(
        self,
        name: str,
        attributes: dict[str, Any] | None = None,
        root: bool = False,
    ) -> Iterator[Span]:
        """Open a span as the ambient context for the ``with`` body.

        The new span parents onto the ambient span unless ``root=True``
        (or none is active), in which case it starts a fresh trace.  An
        exception raised in the body marks the span ``status="error"``
        with the message preserved, then propagates unchanged.
        """
        parent = None if root else _CURRENT.get()
        if parent is not None:
            span = Span(
                self, name, parent.trace_id, _new_id(), parent.span_id, attributes
            )
        else:
            span = Span(self, name, _new_id(), _new_id(), None, attributes)
        token = _CURRENT.set(span)
        try:
            yield span
        except BaseException as error:
            span.status = "error"
            span.error = f"{type(error).__name__}: {error}"
            raise
        finally:
            _CURRENT.reset(token)
            span.end_wall = self.wall_now()
            span.end_v = self.virtual_time()
            with self._lock:
                self._finished.append(span)
                hooks = list(self._hooks)
            for hook in hooks:
                hook(span)

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Finished spans, oldest first, optionally for one trace."""
        with self._lock:
            held = list(self._finished)
        if trace_id is None:
            return held
        return [span for span in held if span.trace_id == trace_id]

    def traces(self) -> dict[str, list[Span]]:
        """Finished spans grouped by ``trace_id`` (insertion-ordered)."""
        grouped: dict[str, list[Span]] = {}
        for span in self.spans():
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def reset(self) -> None:
        """Drop every retained span (hooks stay registered)."""
        with self._lock:
            self._finished.clear()

    def __repr__(self) -> str:
        return f"Tracer({len(self._finished)} finished spans)"


__all__ = [
    "Span",
    "Tracer",
    "current_span",
    "annotate",
    "add_event",
    "DEFAULT_CAPACITY",
]
