"""A zero-dependency metrics registry: counters, gauges, histograms.

The runtime's latency/throughput facts used to live in ad-hoc
lock-protected tallies (``ClientStats``, scheduler throttle counters,
cache hit counts) with no export path.  This module gives them a single
home: a :class:`MetricsRegistry` of named instruments, each holding one
time series per label set, thread-safe and deterministic (no wall-clock
reads, no background threads).

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` -- a monotonically increasing sum per label set
  (``askit_provider_calls_total{model="sim-gpt-4"}``).
* :class:`Gauge` -- a value that can go up and down (window sizes,
  queue depths).
* :class:`Histogram` -- observations bucketed over fixed boundaries,
  with per-series count and sum, supporting percentile estimates.

:class:`~repro.llm.client.ClientStats` is a *view* over one registry --
every counter it reports is backed by an instrument here -- so a
Prometheus dump (:meth:`MetricsRegistry.prometheus_text`) and the
``ClientStats`` API can never disagree.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Mapping

from repro.errors import ConfigError

#: One label set, canonicalized: sorted ``(name, value)`` pairs.
LabelKey = tuple

#: Default histogram boundaries, in (virtual) seconds.  Spans in this
#: runtime range from microsecond parse steps to multi-minute throttle
#: waits, so the grid is log-ish and wide.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
    600.0,
)


def label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonicalize one label mapping into a hashable, sorted key."""
    return tuple(sorted((str(name), str(value)) for name, value in labels.items()))


def _matches(key: LabelKey, subset: Mapping[str, Any]) -> bool:
    """Whether a series key carries every label of ``subset``."""
    if not subset:
        return True
    held = dict(key)
    return all(held.get(name) == str(value) for name, value in subset.items())


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Instrument:
    """Base of all instruments: a name, help text, and a series lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def reset(self) -> None:
        """Drop every series (subclasses hold the storage)."""
        raise NotImplementedError

    def prometheus_lines(
        self, extra: tuple[tuple[str, str], ...] = ()
    ) -> list[str]:
        """This instrument rendered in the Prometheus text format.

        ``extra`` label pairs are appended to every series -- how the
        serving gateway stamps one tenant's registry with its
        ``tenant="..."`` label at scrape time.
        """
        raise NotImplementedError

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(Instrument):
    """A monotonically increasing sum, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (>= 0) to the series for ``labels``.

        An increment of zero still materializes the series, so a label
        value (e.g. a model name) becomes visible the moment it is
        first touched.
        """
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """The exact series value for ``labels`` (0.0 when absent)."""
        with self._lock:
            return self._series.get(label_key(labels), 0.0)

    def total(self, **labels: Any) -> float:
        """The sum over every series matching the ``labels`` subset."""
        with self._lock:
            return sum(
                value for key, value in self._series.items() if _matches(key, labels)
            )

    def series(self) -> dict[LabelKey, float]:
        """A consistent copy of every series."""
        with self._lock:
            return dict(self._series)

    def label_values(self, label: str) -> set[str]:
        """Every distinct value the series hold for ``label``."""
        with self._lock:
            found = set()
            for key in self._series:
                for name, value in key:
                    if name == label:
                        found.add(value)
            return found

    def reset(self) -> None:
        """Zero the counter by dropping every series."""
        with self._lock:
            self._series.clear()

    def prometheus_lines(
        self, extra: tuple[tuple[str, str], ...] = ()
    ) -> list[str]:
        """Render ``name{labels} value`` lines, sorted for stable diffs."""
        lines = self._header()
        series = self.series()
        for key in sorted(series):
            lines.append(
                f"{self.name}{_format_labels(key, extra)} "
                f"{_format_value(series[key])}"
            )
        return lines


class Gauge(Instrument):
    """A point-in-time value that may go up or down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the series for ``labels`` to ``value``."""
        with self._lock:
            self._series[label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        """Adjust the series for ``labels`` by ``amount`` (may be negative)."""
        key = label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """The series value for ``labels`` (0.0 when absent)."""
        with self._lock:
            return self._series.get(label_key(labels), 0.0)

    def series(self) -> dict[LabelKey, float]:
        """A consistent copy of every series."""
        with self._lock:
            return dict(self._series)

    def reset(self) -> None:
        """Drop every series."""
        with self._lock:
            self._series.clear()

    def prometheus_lines(
        self, extra: tuple[tuple[str, str], ...] = ()
    ) -> list[str]:
        """Render ``name{labels} value`` lines, sorted for stable diffs."""
        lines = self._header()
        series = self.series()
        for key in sorted(series):
            lines.append(
                f"{self.name}{_format_labels(key, extra)} "
                f"{_format_value(series[key])}"
            )
        return lines


class _HistogramSeries:
    """Bucket counts, sum, and count for one label set."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, buckets: int) -> None:
        # One slot per finite boundary plus the +Inf overflow bucket.
        self.bucket_counts = [0] * (buckets + 1)
        self.total = 0.0
        self.count = 0


class Histogram(Instrument):
    """Observations over fixed bucket boundaries, one series per label set.

    Boundaries are upper-inclusive (`le`), Prometheus-style; everything
    above the last finite boundary lands in the implicit ``+Inf``
    bucket.  Percentiles are estimated by linear interpolation inside
    the bucket holding the target rank -- exact enough for latency
    reporting, and entirely deterministic.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(buckets)) if buckets is not None else DEFAULT_BUCKETS
        if not bounds:
            raise ConfigError(f"histogram {name} needs at least one bucket boundary")
        self.bounds = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the series for ``labels``."""
        key = label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds))
            index = len(self.bounds)  # +Inf by default
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            series.bucket_counts[index] += 1
            series.total += value
            series.count += 1

    def count(self, **labels: Any) -> int:
        """Observations recorded across series matching ``labels``."""
        with self._lock:
            return sum(
                series.count
                for key, series in self._series.items()
                if _matches(key, labels)
            )

    def sum(self, **labels: Any) -> float:
        """Sum of observations across series matching ``labels``."""
        with self._lock:
            return sum(
                series.total
                for key, series in self._series.items()
                if _matches(key, labels)
            )

    def _merged_counts(self, labels: Mapping[str, Any]) -> list[int]:
        with self._lock:
            merged = [0] * (len(self.bounds) + 1)
            for key, series in self._series.items():
                if _matches(key, labels):
                    for i, held in enumerate(series.bucket_counts):
                        merged[i] += held
            return merged

    def percentile(self, q: float, **labels: Any) -> float:
        """Estimate the ``q``-th percentile (0-100) over matching series.

        Returns 0.0 when no observations match.  The estimate
        interpolates linearly within the winning bucket; ranks landing
        in the ``+Inf`` bucket report the last finite boundary.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile q must be in [0, 100]")
        counts = self._merged_counts(labels)
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = (q / 100.0) * total
        cumulative = 0
        for i, held in enumerate(counts):
            previous = cumulative
            cumulative += held
            if cumulative >= rank and held > 0:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                fraction = (rank - previous) / held if held else 0.0
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.bounds[-1]  # pragma: no cover - defensive

    def series_keys(self) -> list[LabelKey]:
        """Every label set currently holding observations."""
        with self._lock:
            return sorted(self._series)

    def reset(self) -> None:
        """Drop every series."""
        with self._lock:
            self._series.clear()

    def prometheus_lines(
        self, extra: tuple[tuple[str, str], ...] = ()
    ) -> list[str]:
        """Cumulative ``_bucket``/``_sum``/``_count`` lines per series."""
        lines = self._header()
        with self._lock:
            items = sorted(self._series.items())
            for key, series in items:
                cumulative = 0
                for bound, held in zip(self.bounds, series.bucket_counts):
                    cumulative += held
                    labels = _format_labels(
                        key, (*extra, ("le", _format_value(bound)))
                    )
                    lines.append(f"{self.name}_bucket{labels} {cumulative}")
                cumulative += series.bucket_counts[-1]
                labels = _format_labels(key, (*extra, ("le", "+Inf")))
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
                lines.append(
                    f"{self.name}_sum{_format_labels(key, extra)} "
                    f"{_format_value(series.total)}"
                )
                lines.append(
                    f"{self.name}_count{_format_labels(key, extra)} {series.count}"
                )
        return lines


class MetricsRegistry:
    """A named collection of instruments with one export surface.

    Instruments are created on first use and memoized by name --
    requesting an existing name returns the same object, and requesting
    it as a different kind raises :class:`~repro.errors.ConfigError`.
    One registry is the single source of truth for one client/session:
    :class:`~repro.llm.client.ClientStats` writes its counters here, a
    :class:`~repro.obs.telemetry.Telemetry` adds span/stage series, and
    :meth:`prometheus_text` exports everything at once.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, factory) -> Any:
        with self._lock:
            held = self._instruments.get(name)
            if held is not None:
                if not isinstance(held, kind):
                    raise ConfigError(
                        f"metric {name!r} already registered as {held.kind}, "
                        f"not {kind.kind}"
                    )
                return held
            created = factory()
            self._instruments[name] = created
            return created

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] | None = None
    ) -> Histogram:
        """The histogram named ``name`` (created on first use).

        ``buckets`` only applies on creation; later calls return the
        existing instrument with its original boundaries.
        """
        return self._get(name, Histogram, lambda: Histogram(name, help, buckets))

    def instruments(self) -> list[Instrument]:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def reset(self) -> None:
        """Zero every instrument (the instruments themselves survive)."""
        for instrument in self.instruments():
            instrument.reset()

    def prometheus_text(self, extra_labels: Mapping[str, Any] | None = None) -> str:
        """The whole registry in the Prometheus text exposition format.

        ``extra_labels`` are stamped onto every series -- the serving
        gateway renders each tenant's registry with
        ``extra_labels={"tenant": name}``, so one scrape carries every
        tenant's counters as distinct label sets of the same metrics.
        """
        extra = label_key(extra_labels) if extra_labels else ()
        lines: list[str] = []
        for instrument in self.instruments():
            lines.extend(instrument.prometheus_lines(extra))
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able dump: ``{name: {kind, series: {labels: value}}}``."""
        dump: dict[str, Any] = {}
        for instrument in self.instruments():
            if isinstance(instrument, (Counter, Gauge)):
                series = {
                    _format_labels(key) or "{}": value
                    for key, value in instrument.series().items()
                }
                dump[instrument.name] = {"kind": instrument.kind, "series": series}
            elif isinstance(instrument, Histogram):
                series = {
                    _format_labels(key)
                    or "{}": {
                        "count": instrument.count(**dict(key)),
                        "sum": instrument.sum(**dict(key)),
                    }
                    for key in instrument.series_keys()
                }
                dump[instrument.name] = {
                    "kind": instrument.kind,
                    "buckets": list(instrument.bounds),
                    "series": series,
                }
        return dump

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"
