"""The telemetry facade: policy knob, tracer wiring, query surface.

:class:`Telemetry` is what the rest of the runtime sees.  One instance
binds together a :class:`~repro.obs.trace.Tracer`, the session's
:class:`~repro.obs.metrics.MetricsRegistry` (the same one backing
:class:`~repro.llm.client.ClientStats`, via :meth:`Telemetry.attach`),
and an optional :class:`~repro.obs.export.JsonLinesSpanSink`.  Every
finished span is folded into two registry series --

* ``askit_spans_total{stage, status}`` -- span counts, and
* ``askit_stage_virtual_seconds{stage}`` -- a histogram of
  virtual-clock durations per lifecycle stage --

and, when a trace directory is configured, appended to
``spans.jsonl``.  On top of the retained spans the class offers the
in-process query surface the ISSUE asks for: per-stage latency
percentiles (:meth:`percentile`, :meth:`stage_summary`) and a
slowest-span top-k (:meth:`slowest`).

Everything is off by default.  ``Config(telemetry="on")`` (or a full
:class:`TelemetryPolicy`) enables it per session, and the
``REPRO_TRACE_DIR`` environment variable both enables telemetry and
points the JSONL/Prometheus exporters at a directory.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import ConfigError
from repro.obs.export import JsonLinesSpanSink, write_prometheus
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.trace import DEFAULT_CAPACITY, Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.llm.client import ChatClient

#: Valid values for ``Config(telemetry=...)``.
TELEMETRY_MODES = ("off", "on")

#: Environment variable that switches telemetry on and selects where
#: the JSONL span sink and Prometheus dump land.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: File names written under the trace directory.
SPANS_FILENAME = "spans.jsonl"
PROMETHEUS_FILENAME = "metrics.prom"


class TelemetryPolicy:
    """The knobs one :class:`Telemetry` instance is built from.

    ``trace_dir=None`` keeps everything in process (no files); setting
    it enables the JSONL span sink and gives :meth:`Telemetry.dump` a
    home for the Prometheus text dump.
    """

    __slots__ = ("trace_dir", "max_spans", "sink_max_bytes", "stage_buckets")

    def __init__(
        self,
        trace_dir: str | Path | None = None,
        max_spans: int = DEFAULT_CAPACITY,
        sink_max_bytes: int = 16 * 1024 * 1024,
        stage_buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        if max_spans < 1:
            raise ConfigError("max_spans must be >= 1")
        if sink_max_bytes < 1:
            raise ConfigError("sink_max_bytes must be >= 1")
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.max_spans = max_spans
        self.sink_max_bytes = sink_max_bytes
        self.stage_buckets = tuple(stage_buckets)

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> "TelemetryPolicy":
        """A policy honouring ``REPRO_TRACE_DIR`` (may still be dir-less)."""
        env = os.environ if environ is None else environ
        trace_dir = env.get(TRACE_DIR_ENV) or None
        return cls(trace_dir=trace_dir)

    def __repr__(self) -> str:
        return (
            f"TelemetryPolicy(trace_dir={self.trace_dir!r}, "
            f"max_spans={self.max_spans})"
        )


def _stage_of(span: Span) -> str:
    """The lifecycle-stage label for a span (``askit.cache`` -> ``cache``)."""
    name = span.name
    return name[len("askit.") :] if name.startswith("askit.") else name


class Telemetry:
    """Tracing + metrics + exporters for one session, behind one handle.

    Build one with a policy, then :meth:`attach` it to a
    :class:`~repro.llm.client.ChatClient`: attaching points the tracer
    at the client's virtual clock, adopts the client's stats registry
    (so spans and :class:`~repro.llm.client.ClientStats` export
    through the same Prometheus text), and makes the client emit spans
    for every request.  :class:`~repro.core.config.Config` does this
    automatically when ``telemetry`` is enabled.
    """

    def __init__(self, policy: TelemetryPolicy | None = None) -> None:
        self.policy = policy or TelemetryPolicy()
        self.registry = MetricsRegistry()
        self.tracer = Tracer(capacity=self.policy.max_spans)
        self.sink: JsonLinesSpanSink | None = None
        if self.policy.trace_dir is not None:
            self.sink = JsonLinesSpanSink(
                self.policy.trace_dir / SPANS_FILENAME,
                max_bytes=self.policy.sink_max_bytes,
            )
        self.tracer.on_end(self._on_span_end)

    def attach(self, client: "ChatClient") -> "Telemetry":
        """Bind to ``client``: adopt its clock and registry, start tracing."""
        self.registry = client.stats.registry
        self.tracer.virtual_now = client.clock.now
        client.telemetry = self
        return self

    def _on_span_end(self, span: Span) -> None:
        """Fold one finished span into metrics and the sink."""
        stage = _stage_of(span)
        # Re-fetch instruments each time: attach() swaps the registry.
        self.registry.counter(
            "askit_spans_total", "Finished spans by lifecycle stage and status."
        ).inc(stage=stage, status=span.status)
        self.registry.histogram(
            "askit_stage_virtual_seconds",
            "Virtual-clock span duration per lifecycle stage.",
            buckets=self.policy.stage_buckets,
        ).observe(span.duration_s(), stage=stage)
        if self.sink is not None:
            self.sink(span)

    # ----- query surface -------------------------------------------------

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Finished spans, oldest first, optionally for one trace."""
        return self.tracer.spans(trace_id)

    def traces(self) -> dict[str, list[Span]]:
        """Finished spans grouped by ``trace_id``."""
        return self.tracer.traces()

    def slowest(self, k: int = 10, stage: str | None = None) -> list[Span]:
        """The top-``k`` spans by virtual duration (optionally one stage)."""
        held = self.tracer.spans()
        if stage is not None:
            held = [span for span in held if _stage_of(span) == stage]
        return sorted(held, key=lambda span: span.duration_s(), reverse=True)[:k]

    def percentile(self, stage: str, q: float) -> float:
        """The ``q``-th percentile of a stage's virtual duration."""
        return self.registry.histogram(
            "askit_stage_virtual_seconds",
            buckets=self.policy.stage_buckets,
        ).percentile(q, stage=stage)

    def stage_summary(self) -> dict[str, dict[str, float]]:
        """Per-stage ``{count, total_s, p50_s, p95_s, max_s}`` rollup.

        Counts and totals come from the histogram (exact); the
        percentiles are bucket-interpolated estimates; ``max_s`` is
        exact, read from the retained spans.
        """
        histogram = self.registry.histogram(
            "askit_stage_virtual_seconds", buckets=self.policy.stage_buckets
        )
        maxima: dict[str, float] = {}
        for span in self.tracer.spans():
            stage = _stage_of(span)
            maxima[stage] = max(maxima.get(stage, 0.0), span.duration_s())
        summary: dict[str, dict[str, float]] = {}
        for key in histogram.series_keys():
            stage = dict(key).get("stage", "")
            summary[stage] = {
                "count": float(histogram.count(stage=stage)),
                "total_s": histogram.sum(stage=stage),
                "p50_s": histogram.percentile(50, stage=stage),
                "p95_s": histogram.percentile(95, stage=stage),
                "max_s": maxima.get(stage, 0.0),
            }
        return summary

    def summary(self) -> dict[str, Any]:
        """One JSON-able overview: trace/span counts + stage rollup."""
        traces = self.traces()
        return {
            "traces": len(traces),
            "spans": sum(len(spans) for spans in traces.values()),
            "stages": self.stage_summary(),
        }

    def prometheus_text(self) -> str:
        """The attached registry in Prometheus text format."""
        return self.registry.prometheus_text()

    def dump(self, trace_dir: str | Path | None = None) -> Path:
        """Write the Prometheus dump under the trace directory.

        Uses ``trace_dir`` when given, else the policy's; raises
        :class:`~repro.errors.ConfigError` when neither is set.
        """
        target = Path(trace_dir) if trace_dir is not None else self.policy.trace_dir
        if target is None:
            raise ConfigError(
                "no trace directory configured; pass trace_dir= or set "
                f"{TRACE_DIR_ENV}"
            )
        return write_prometheus(self.registry, target / PROMETHEUS_FILENAME)

    def reset(self) -> None:
        """Drop retained spans (metrics stay with the registry owner)."""
        self.tracer.reset()

    def __repr__(self) -> str:
        return f"Telemetry({len(self.tracer.spans())} spans retained)"


def resolve_telemetry_mode(value: Any) -> tuple[str, TelemetryPolicy | None]:
    """Normalize ``Config(telemetry=...)`` input to ``(mode, policy)``.

    Accepts a mode string (``"off"``/``"on"``) or a full
    :class:`TelemetryPolicy` (implies ``"on"``).  A ``REPRO_TRACE_DIR``
    in the environment upgrades ``"off"`` to ``"on"`` with that
    directory, and supplies the directory when a mode string enabled
    telemetry without one.
    """
    if isinstance(value, TelemetryPolicy):
        return "on", value
    if not isinstance(value, str) or value not in TELEMETRY_MODES:
        raise ConfigError(
            f"telemetry must be one of {TELEMETRY_MODES} or a TelemetryPolicy, "
            f"got {value!r}"
        )
    env_dir = os.environ.get(TRACE_DIR_ENV) or None
    if value == "off":
        if env_dir:
            return "on", TelemetryPolicy(trace_dir=env_dir)
        return "off", None
    return "on", TelemetryPolicy(trace_dir=env_dir)


__all__ = [
    "Telemetry",
    "TelemetryPolicy",
    "TELEMETRY_MODES",
    "TRACE_DIR_ENV",
    "SPANS_FILENAME",
    "PROMETHEUS_FILENAME",
    "resolve_telemetry_mode",
]
