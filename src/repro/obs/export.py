"""Span and metrics exporters: JSON-lines sink and Prometheus dump.

Two machine-readable surfaces, both zero-dependency:

* :class:`JsonLinesSpanSink` -- one JSON object per finished span,
  appended as a single atomic ``write()`` under a lock so concurrent
  ``map()`` workers never interleave partial lines.  Rotation is
  size-capped: when the file would exceed ``max_bytes`` it is renamed
  to ``<name>.1`` (replacing any previous rotation) and a fresh file
  starts, bounding disk use at roughly twice the cap.
  :func:`read_spans` round-trips the file back into
  :class:`~repro.obs.trace.Span` objects.
* :func:`write_prometheus` -- dumps a
  :class:`~repro.obs.metrics.MetricsRegistry` in the text exposition
  format, atomically (temp file + rename), for scrape-by-file setups.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

#: Default rotation threshold for the JSONL sink, in bytes.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024


class JsonLinesSpanSink:
    """Appends finished spans to a JSONL file with size-capped rotation.

    Designed to be registered as a tracer ``on_end`` hook (it is
    callable).  Every span becomes exactly one line; the encode happens
    outside the lock, the single ``write()`` inside it.
    """

    def __init__(self, path: str | Path, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def __call__(self, span: Span) -> None:
        """Append one span (the tracer hook entry point)."""
        self.write(span.to_dict())

    def write(self, row: dict) -> None:
        """Append one JSON-able row as a single line."""
        line = json.dumps(row, ensure_ascii=False, default=str) + "\n"
        encoded = line.encode("utf-8")
        with self._lock:
            self._rotate_if_needed(len(encoded))
            # O_APPEND + one write() call: atomic on POSIX, so parallel
            # writers (or a second sink on the same path) never shear a
            # line.
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, encoded)
            finally:
                os.close(fd)

    def _rotate_if_needed(self, incoming: int) -> None:
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size + incoming <= self.max_bytes:
            return
        os.replace(self.path, self.path.with_name(self.path.name + ".1"))

    def __repr__(self) -> str:
        return f"JsonLinesSpanSink({self.path}, max_bytes={self.max_bytes})"


def read_spans(path: str | Path) -> list[Span]:
    """Load every span from a JSONL sink file, oldest first."""
    spans: list[Span] = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    """Dump ``registry`` as Prometheus text, atomically; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    staging = target.with_name(target.name + ".tmp")
    staging.write_text(registry.prometheus_text(), encoding="utf-8")
    os.replace(staging, target)
    return target


__all__ = [
    "JsonLinesSpanSink",
    "read_spans",
    "write_prometheus",
    "DEFAULT_MAX_BYTES",
]
