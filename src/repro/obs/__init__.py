"""Observability: tracing, metrics, and exporters for the runtime.

The package is zero-dependency and off by default.  Four modules:

* :mod:`repro.obs.trace` -- hierarchical :class:`Span` trees with
  virtual + wall clocks and ambient context propagation.
* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms; the single source of truth
  behind :class:`~repro.llm.client.ClientStats`.
* :mod:`repro.obs.export` -- JSON-lines span sink (atomic append,
  size-capped rotation) and Prometheus text dumps.
* :mod:`repro.obs.telemetry` -- the :class:`Telemetry` facade wiring
  the above to a session, plus the in-process query surface
  (percentiles, slowest-span top-k) reachable as
  ``Session.telemetry``.

Enable with ``Config(telemetry="on")``, a full
:class:`TelemetryPolicy`, or the ``REPRO_TRACE_DIR`` environment
variable.
"""

from repro.obs.export import JsonLinesSpanSink, read_spans, write_prometheus
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.telemetry import (
    TELEMETRY_MODES,
    TRACE_DIR_ENV,
    Telemetry,
    TelemetryPolicy,
    resolve_telemetry_mode,
)
from repro.obs.trace import Span, Tracer, add_event, annotate, current_span

__all__ = [
    "Span",
    "Tracer",
    "current_span",
    "annotate",
    "add_event",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "JsonLinesSpanSink",
    "read_spans",
    "write_prometheus",
    "Telemetry",
    "TelemetryPolicy",
    "TELEMETRY_MODES",
    "TRACE_DIR_ENV",
    "resolve_telemetry_mode",
]
