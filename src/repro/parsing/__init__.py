"""Response parsing: fenced blocks, relaxed JSON, and answer extraction."""

from repro.parsing.answers import ParsedAnswer, extract_answer
from repro.parsing.blocks import CodeBlock, extract_block, extract_json_block, find_blocks
from repro.parsing.json_relaxed import JsonParseError, loads_relaxed

__all__ = [
    "ParsedAnswer",
    "extract_answer",
    "CodeBlock",
    "find_blocks",
    "extract_block",
    "extract_json_block",
    "loads_relaxed",
    "JsonParseError",
]
