"""Extraction of fenced code blocks from LLM responses.

LLM replies wrap payloads in markdown fences -- ``` ```json ... ``` ``` for
direct answers and ``` ```typescript ... ``` ``` / ``` ```python ... ``` ```
for generated code.  Real models are sloppy about fences, so extraction is
deliberately forgiving: language tags are case-insensitive, alias tags
(``ts``, ``py``) are accepted, and fences may be preceded/followed by prose.
"""

from __future__ import annotations

import re

from repro.errors import CodeExtractionError

_FENCE_RE = re.compile(
    r"```[ \t]*([A-Za-z0-9_+-]*)[ \t]*\r?\n(.*?)```",
    re.DOTALL,
)

_LANGUAGE_ALIASES: dict[str, set[str]] = {
    "json": {"json", "jsonc", "json5"},
    "typescript": {"typescript", "ts", "tsx"},
    "python": {"python", "py", "python3"},
    "javascript": {"javascript", "js"},
}


class CodeBlock:
    """One fenced block: its language tag (lowercased) and body text."""

    __slots__ = ("language", "body")

    def __init__(self, language: str, body: str) -> None:
        self.language = language
        self.body = body

    def __repr__(self) -> str:
        return f"CodeBlock({self.language!r}, {len(self.body)} chars)"


def find_blocks(text: str) -> list[CodeBlock]:
    """All fenced blocks in ``text``, in order of appearance."""
    blocks: list[CodeBlock] = []
    for match in _FENCE_RE.finditer(text):
        language = match.group(1).lower()
        blocks.append(CodeBlock(language, match.group(2)))
    return blocks


def _matches_language(tag: str, wanted: str) -> bool:
    aliases = _LANGUAGE_ALIASES.get(wanted, {wanted})
    return tag in aliases


def extract_block(text: str, language: str, allow_untagged: bool = False) -> str:
    """Body of the first fenced block tagged with ``language``.

    With ``allow_untagged``, an untagged block is accepted as a fallback
    when no tagged block exists (models frequently drop the tag).  Raises
    :class:`CodeExtractionError` when nothing suitable is found.
    """
    wanted = language.lower()
    blocks = find_blocks(text)
    for block in blocks:
        if _matches_language(block.language, wanted):
            return block.body
    if allow_untagged:
        for block in blocks:
            if not block.language:
                return block.body
    raise CodeExtractionError(
        f"no ```{language} code block found in response ({len(blocks)} block(s) present)"
    )


def extract_json_block(text: str) -> str:
    """The first JSON payload in a response.

    Tries a tagged ```` ```json ```` fence, then an untagged fence, then --
    as a last resort for fenceless replies -- the outermost balanced
    ``{...}`` or ``[...]`` region of the raw text.
    """
    try:
        return extract_block(text, "json", allow_untagged=True)
    except CodeExtractionError:
        region = _balanced_json_region(text)
        if region is not None:
            return region
        raise


def _balanced_json_region(text: str) -> str | None:
    """Outermost balanced brace/bracket region of ``text``, if any.

    String literals are skipped so braces inside them do not confuse the
    balance count.
    """
    start = None
    for index, char in enumerate(text):
        if char in "{[":
            start = index
            break
    if start is None:
        return None
    opener = text[start]
    closer = "}" if opener == "{" else "]"
    depth = 0
    in_string: str | None = None
    index = start
    while index < len(text):
        char = text[index]
        if in_string:
            if char == "\\":
                index += 2
                continue
            if char == in_string:
                in_string = None
        elif char in "'\"":
            in_string = char
        elif char == opener:
            depth += 1
        elif char == closer:
            depth -= 1
            if depth == 0:
                return text[start:index + 1]
        index += 1
    return None
