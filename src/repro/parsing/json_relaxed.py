"""A relaxed JSON parser for LLM output.

Strict :func:`json.loads` rejects a lot of almost-JSON that language models
emit: single-quoted strings, trailing commas, ``//`` and ``/* */``
comments, unquoted object keys, and Python-style ``True``/``None``
spellings.  This module implements a small hand-written lexer and
recursive-descent parser that accepts that dialect while still producing
plain Python values, and reports precise positions on failure.

The strict path is tried first (it is both faster and stricter), so valid
JSON never changes meaning.
"""

from __future__ import annotations

import json
from typing import Any


class JsonParseError(ValueError):
    """Raised when even the relaxed dialect cannot parse the text."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} at position {position}")
        self.position = position


_PUNCT = {"{", "}", "[", "]", ",", ":"}

_WORD_VALUES: dict[str, Any] = {
    "true": True,
    "false": False,
    "null": None,
    # Python spellings that models sometimes leak into "JSON".
    "True": True,
    "False": False,
    "None": None,
    "NaN": float("nan"),
    "Infinity": float("inf"),
}

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "/": "/",
    "\\": "\\",
    '"': '"',
    "'": "'",
}


class _Lexer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    def skip_trivia(self) -> None:
        text = self.text
        length = len(text)
        while self.position < length:
            char = text[self.position]
            if char.isspace():
                self.position += 1
            elif char == "/" and self.position + 1 < length:
                nxt = text[self.position + 1]
                if nxt == "/":
                    end = text.find("\n", self.position)
                    self.position = length if end == -1 else end + 1
                elif nxt == "*":
                    end = text.find("*/", self.position + 2)
                    if end == -1:
                        raise JsonParseError("unterminated block comment", self.position)
                    self.position = end + 2
                else:
                    return
            else:
                return

    def peek(self) -> str:
        """Next non-trivia character, or '' at end of input."""
        self.skip_trivia()
        if self.position >= len(self.text):
            return ""
        return self.text[self.position]

    def expect(self, char: str) -> None:
        got = self.peek()
        if got != char:
            raise JsonParseError(f"expected {char!r}, found {got!r}", self.position)
        self.position += 1

    def read_string(self) -> str:
        quote = self.text[self.position]
        self.position += 1
        chars: list[str] = []
        text = self.text
        length = len(text)
        while self.position < length:
            char = text[self.position]
            if char == quote:
                self.position += 1
                return "".join(chars)
            if char == "\\":
                if self.position + 1 >= length:
                    break
                escape = text[self.position + 1]
                if escape == "u":
                    hex_digits = text[self.position + 2:self.position + 6]
                    if len(hex_digits) != 4:
                        raise JsonParseError("bad \\u escape", self.position)
                    try:
                        chars.append(chr(int(hex_digits, 16)))
                    except ValueError:
                        raise JsonParseError("bad \\u escape", self.position) from None
                    self.position += 6
                else:
                    chars.append(_ESCAPES.get(escape, escape))
                    self.position += 2
            else:
                chars.append(char)
                self.position += 1
        raise JsonParseError("unterminated string", self.position)

    def read_number(self) -> int | float:
        start = self.position
        text = self.text
        length = len(text)
        if text[self.position] in "+-":
            self.position += 1
        is_float = False
        while self.position < length:
            char = text[self.position]
            if char.isdigit():
                self.position += 1
            elif char in ".eE" or (char in "+-" and text[self.position - 1] in "eE"):
                is_float = is_float or char in ".eE"
                self.position += 1
            else:
                break
        raw = text[start:self.position]
        try:
            return float(raw) if is_float else int(raw)
        except ValueError:
            raise JsonParseError(f"bad number {raw!r}", start) from None

    def read_word(self) -> str:
        start = self.position
        text = self.text
        length = len(text)
        while self.position < length and (text[self.position].isalnum() or text[self.position] in "_$"):
            self.position += 1
        if self.position == start:
            raise JsonParseError(
                f"unexpected character {text[start]!r}", start
            )
        return text[start:self.position]


class _Parser:
    def __init__(self, text: str) -> None:
        self.lexer = _Lexer(text)

    def parse(self) -> Any:
        value = self._value()
        if self.lexer.peek():
            raise JsonParseError("trailing data after JSON value", self.lexer.position)
        return value

    def _value(self) -> Any:
        char = self.lexer.peek()
        if char == "":
            raise JsonParseError("unexpected end of input", self.lexer.position)
        if char == "{":
            return self._object()
        if char == "[":
            return self._array()
        if char in "'\"":
            return self.lexer.read_string()
        if char.isdigit() or char in "+-.":
            return self.lexer.read_number()
        word = self.lexer.read_word()
        if word in _WORD_VALUES:
            return _WORD_VALUES[word]
        raise JsonParseError(f"unexpected token {word!r}", self.lexer.position)

    def _object(self) -> dict:
        self.lexer.expect("{")
        result: dict[str, Any] = {}
        while True:
            char = self.lexer.peek()
            if char == "}":
                self.lexer.position += 1
                return result
            if char == "":
                raise JsonParseError("unterminated object", self.lexer.position)
            key = self._object_key()
            self.lexer.expect(":")
            result[key] = self._value()
            char = self.lexer.peek()
            if char == ",":
                self.lexer.position += 1
                continue
            if char == "}":
                self.lexer.position += 1
                return result
            raise JsonParseError(f"expected ',' or '}}', found {char!r}", self.lexer.position)

    def _object_key(self) -> str:
        char = self.lexer.peek()
        if char in "'\"":
            return self.lexer.read_string()
        return self.lexer.read_word()

    def _array(self) -> list:
        self.lexer.expect("[")
        result: list[Any] = []
        while True:
            char = self.lexer.peek()
            if char == "]":
                self.lexer.position += 1
                return result
            if char == "":
                raise JsonParseError("unterminated array", self.lexer.position)
            result.append(self._value())
            char = self.lexer.peek()
            if char == ",":
                self.lexer.position += 1
                continue
            if char == "]":
                self.lexer.position += 1
                return result
            raise JsonParseError(f"expected ',' or ']', found {char!r}", self.lexer.position)


def loads_relaxed(text: str) -> Any:
    """Parse ``text`` as JSON, falling back to the relaxed dialect.

    Raises :class:`JsonParseError` when both strict and relaxed parsing
    fail.
    """
    try:
        return json.loads(text)
    except (json.JSONDecodeError, ValueError):
        pass
    return _Parser(text).parse()
