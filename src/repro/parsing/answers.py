"""Extraction and validation of ``{reason, answer}`` payloads.

Section III-E of the paper defines three criteria a direct-answer response
must satisfy:

1. the response contains a JSON object;
2. the JSON object includes an ``answer`` field;
3. the ``answer`` field matches the expected type.

``extract_answer`` implements exactly this, raising
:class:`ResponseFormatError` with the failed criterion number so the
feedback loop can tell the model what to fix.
"""

from __future__ import annotations

from typing import Any

from repro.errors import CodeExtractionError, ResponseFormatError
from repro.parsing.blocks import extract_json_block
from repro.parsing.json_relaxed import JsonParseError, loads_relaxed
from repro.types.base import Type


class ParsedAnswer:
    """A validated answer plus the model's stated reasoning."""

    __slots__ = ("value", "reason", "raw")

    def __init__(self, value: Any, reason: str, raw: Any) -> None:
        self.value = value
        self.reason = reason
        self.raw = raw

    def __repr__(self) -> str:
        return f"ParsedAnswer({self.value!r})"


def extract_answer(response: str, expected: Type) -> ParsedAnswer:
    """Pull a type-conforming answer out of an LLM response.

    The returned value is coerced to canonical Python form (integral
    floats to ``int`` for integer types, extra record keys dropped, and so
    on).
    """
    try:
        payload_text = extract_json_block(response)
    except CodeExtractionError as error:
        raise ResponseFormatError(
            "the response does not contain a JSON code block",
            ResponseFormatError.CRITERION_NO_JSON,
            response,
        ) from error

    try:
        payload = loads_relaxed(payload_text)
    except JsonParseError as error:
        raise ResponseFormatError(
            f"the JSON code block is not valid JSON: {error}",
            ResponseFormatError.CRITERION_NO_JSON,
            response,
        ) from error

    if not isinstance(payload, dict):
        raise ResponseFormatError(
            "the JSON payload is not an object with 'reason' and 'answer' fields",
            ResponseFormatError.CRITERION_NO_ANSWER_FIELD,
            response,
        )
    if "answer" not in payload:
        raise ResponseFormatError(
            "the JSON object is missing the 'answer' field",
            ResponseFormatError.CRITERION_NO_ANSWER_FIELD,
            response,
        )

    answer = payload["answer"]
    issues = expected.check(answer, path="$.answer")
    if issues:
        detail = "; ".join(str(issue) for issue in issues[:5])
        raise ResponseFormatError(
            f"the 'answer' field does not match the expected type "
            f"{expected.typescript()}: {detail}",
            ResponseFormatError.CRITERION_BAD_TYPE,
            response,
        )

    reason = payload.get("reason", "")
    if not isinstance(reason, str):
        reason = str(reason)
    return ParsedAnswer(expected.coerce(answer), reason, payload)
