"""Static safety analysis of generated code (the paper's §VI future work).

AskIt "does not guarantee the safety of the generated code ... the
generated function might unexpectedly contain code that deletes all files
in a directory.  Possible approaches include using a sandbox or a static
analysis tool."  This module implements the static-analysis approach:

* Python candidates are scanned over their ``ast`` for dangerous imports
  (``os``, ``subprocess``, ``socket``...), dangerous calls (``eval``,
  ``exec``, ``open`` for writing, ``__import__``), and dunder attribute
  escapes;
* TypeScript candidates are scanned over the tslang AST for forbidden
  globals (there is no ambient authority in the interpreter, so the check
  is a belt-and-braces denylist).

A :class:`SafetyPolicy` decides what happens on findings: ``"off"``
reproduces the paper's published behaviour (user reviews the cached
file), ``"warn"`` records findings on the generated function, and
``"enforce"`` rejects the candidate -- which feeds the regeneration loop
like any other validation failure.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.errors import CodeValidationError

OFF = "off"
WARN = "warn"
ENFORCE = "enforce"

POLICIES = (OFF, WARN, ENFORCE)

#: Modules whose import is flagged.  File-system modules are allowed only
#: when the task legitimately needs them (the allow_files flag).
_DANGEROUS_MODULES = frozenset(
    {
        "subprocess",
        "socket",
        "shutil",
        "ctypes",
        "multiprocessing",
        "signal",
        "webbrowser",
        "urllib",
        "requests",
        "http",
        "ftplib",
        "telnetlib",
        "smtplib",
        "pty",
        "pickle",
        "marshal",
        "importlib",
    }
)

_FILE_MODULES = frozenset({"os", "pathlib", "tempfile", "glob"})

_DANGEROUS_CALLS = frozenset({"eval", "exec", "compile", "__import__", "input", "breakpoint"})

_DANGEROUS_OS_MEMBERS = frozenset(
    {"system", "popen", "remove", "unlink", "rmdir", "removedirs", "rename", "kill", "fork", "execv", "execvp"}
)


class SafetyFinding:
    """One flagged construct, with its location."""

    __slots__ = ("message", "line")

    def __init__(self, message: str, line: int = 0) -> None:
        self.message = message
        self.line = line

    def __str__(self) -> str:
        if self.line:
            return f"line {self.line}: {self.message}"
        return self.message

    def __repr__(self) -> str:
        return f"SafetyFinding({str(self)!r})"


class SafetyPolicy:
    """How to treat safety findings in generated code."""

    def __init__(self, mode: str = OFF, allow_files: bool = False) -> None:
        if mode not in POLICIES:
            raise ValueError(f"unknown safety mode {mode!r}; pick one of {POLICIES}")
        self.mode = mode
        #: Permit file I/O (``open`` for writing, ``os``/``pathlib``
        #: imports).  Tasks like the paper's append-to-CSV example need it.
        self.allow_files = allow_files

    def apply(self, findings: list[SafetyFinding]) -> list[SafetyFinding]:
        """Enforce the policy; returns the findings for reporting.

        Raises :class:`CodeValidationError` in ``enforce`` mode when any
        finding exists.
        """
        if findings and self.mode == ENFORCE:
            raise CodeValidationError(
                "generated code failed the safety check",
                [str(finding) for finding in findings],
            )
        return findings

    def __repr__(self) -> str:
        return f"SafetyPolicy({self.mode!r}, allow_files={self.allow_files})"


def scan_python(source: str, allow_files: bool = False) -> list[SafetyFinding]:
    """Scan Python source; returns findings (empty means clean)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [SafetyFinding(f"does not parse: {error}", getattr(error, "lineno", 0) or 0)]
    findings: list[SafetyFinding] = []
    for node in ast.walk(tree):
        findings.extend(_scan_python_node(node, allow_files))
    return findings


def _scan_python_node(node: ast.AST, allow_files: bool) -> Iterable[SafetyFinding]:
    line = getattr(node, "lineno", 0)
    if isinstance(node, ast.Import):
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _DANGEROUS_MODULES:
                yield SafetyFinding(f"imports dangerous module '{alias.name}'", line)
            elif root in _FILE_MODULES and not allow_files:
                yield SafetyFinding(
                    f"imports file-system module '{alias.name}' (allow_files is off)", line
                )
    elif isinstance(node, ast.ImportFrom):
        root = (node.module or "").split(".")[0]
        if root in _DANGEROUS_MODULES:
            yield SafetyFinding(f"imports dangerous module '{node.module}'", line)
        elif root in _FILE_MODULES and not allow_files:
            yield SafetyFinding(
                f"imports file-system module '{node.module}' (allow_files is off)", line
            )
    elif isinstance(node, ast.Call):
        name = _call_name(node)
        if name in _DANGEROUS_CALLS:
            yield SafetyFinding(f"calls '{name}'", line)
        elif name == "open" and not allow_files:
            if _open_mode_writes(node):
                yield SafetyFinding("opens a file for writing (allow_files is off)", line)
        elif name and "." in name:
            head, _, member = name.rpartition(".")
            if head.split(".")[0] == "os" and member in _DANGEROUS_OS_MEMBERS:
                yield SafetyFinding(f"calls 'os.{member}'", line)
    elif isinstance(node, ast.Attribute):
        if node.attr.startswith("__") and node.attr.endswith("__") and node.attr not in (
            "__len__",
            "__name__",
            "__doc__",
        ):
            yield SafetyFinding(f"accesses dunder attribute '{node.attr}'", line)


def _call_name(node: ast.Call) -> str:
    target = node.func
    parts: list[str] = []
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
    return ".".join(reversed(parts))


def _open_mode_writes(node: ast.Call) -> bool:
    mode = None
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        mode = node.args[1].value
    for keyword in node.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            mode = keyword.value.value
    if mode is None:
        return False  # default 'r'
    return isinstance(mode, str) and any(ch in mode for ch in "wax+")


#: Globals the TS subset exposes that could matter if the interpreter ever
#: grows ambient authority; flagged defensively.
_TS_FORBIDDEN_GLOBALS = frozenset({"require", "process", "fetch", "XMLHttpRequest", "Deno", "Bun"})


def scan_typescript(source: str) -> list[SafetyFinding]:
    """Scan TypeScript-subset source for forbidden global references."""
    from repro.errors import TsSyntaxError
    from repro.tslang import nodes as ts_nodes
    from repro.tslang.parser import parse_program

    try:
        program = parse_program(source)
    except TsSyntaxError as error:
        return [SafetyFinding(f"does not parse: {error}")]

    findings: list[SafetyFinding] = []

    def walk(node) -> None:
        if isinstance(node, ts_nodes.Identifier) and node.name in _TS_FORBIDDEN_GLOBALS:
            findings.append(SafetyFinding(f"references forbidden global '{node.name}'", node.line))
        for slot in node.__slots__:
            value = getattr(node, slot, None)
            if isinstance(value, ts_nodes.Node):
                walk(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ts_nodes.Node):
                        walk(item)
                    elif isinstance(item, tuple):
                        for part in item:
                            if isinstance(part, ts_nodes.Node):
                                walk(part)

    walk(program)
    return findings


def scan(source: str, language: str, allow_files: bool = False) -> list[SafetyFinding]:
    """Scan ``source`` in the given language."""
    if language == "python":
        return scan_python(source, allow_files)
    if language == "typescript":
        return scan_typescript(source)
    raise ValueError(f"no safety scanner for language {language!r}")
