"""``Session``: the front door of the AskIt runtime.

A session owns everything one workload needs -- configuration, LLM
client (and with it stats, virtual clock, and code cache location) --
so concurrency, batching, and backend selection are per-session
properties instead of process-global state::

    from repro.core import Session
    import repro.types as t

    session = Session(model="sim-gpt-4", cache_dir=None)
    sentiment = session.ask(t.str, "Summarize {{review}} in one word.",
                            review="Loved it!")

    classify = session.define(t.str, "Classify {{ticket}}.")
    batch = classify.map([{"ticket": text} for text in tickets],
                         max_concurrency=16)

Two construction modes:

* ``Session()`` with no arguments *tracks the global configuration*:
  it sees ``configure()`` / ``config_override()`` changes live and uses
  the shared default client.  The module-level ``ask``/``define`` are
  facades over exactly this session, which is what keeps them 100%
  backward compatible.
* ``Session(config)`` or ``Session(model=..., ...)`` takes a snapshot:
  the session is *isolated* -- later ``configure()``/``config_override()``
  calls do not leak into it, and (unless the config carries an explicit
  client) it gets a private :class:`~repro.llm.client.ChatClient`, so two
  sessions never interleave stats, clocks, or model state.

Async variants (``ask_async``, and ``AskItFunction.acall`` /
``AskItFunction.map`` on functions the session defines) share the same
retry/parse core as the sync paths; see :mod:`repro.core.runtime` and
:mod:`repro.core.batch`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping, Sequence

from repro.core.batch import MapResult, run_batch
from repro.core.config import Config, get_config
from repro.core.function import AskItFunction
from repro.core.response_cache import ResponseCache
from repro.core.scheduler import RequestScheduler
from repro.errors import AskItError
from repro.ioexample import Example
from repro.llm.client import ChatClient, ClientStats
from repro.llm.latency import VirtualClock
from repro.obs.telemetry import Telemetry
from repro.templates import PromptTemplate
from repro.types import lift


def _normalize_examples(examples: Sequence[Any] | None) -> list[Example]:
    normalized: list[Example] = []
    for example in examples or ():
        if isinstance(example, Example):
            normalized.append(example)
        elif isinstance(example, Mapping) and "input" in example and "output" in example:
            # Listing 1's literal syntax: {input: {...}, output: ...}.
            normalized.append(Example(example["input"], example["output"]))
        elif isinstance(example, tuple) and len(example) == 2:
            normalized.append(Example(example[0], example[1]))
        else:
            raise TypeError(
                "examples must be Example objects, {'input':..., 'output':...} "
                f"dicts, or (inputs, output) tuples; got {example!r}"
            )
    return normalized


class Session:
    """A self-contained AskIt runtime: config + client + stats + cache."""

    def __init__(self, config: Config | None = None, **overrides: Any) -> None:
        if config is None and not overrides:
            # Track the global configuration live (the default session's
            # mode; keeps configure()/config_override() working).
            self._config: Config | None = None
            return
        base = config if config is not None else get_config()
        snapshot = base.replace(**overrides) if overrides else base
        if snapshot._client is None:
            # Isolated sessions get a private client so their stats,
            # virtual clock, and simulated-model state never interleave
            # with other sessions'.  The wire policy rides along so a
            # Session(wire_policy=...) reaches its cassettes/live flag.
            snapshot = snapshot.replace(
                client=ChatClient(wire_policy=snapshot.wire_policy)
            )
        self._config = snapshot

    # -- state ----------------------------------------------------------------

    @property
    def tracks_global_config(self) -> bool:
        """Whether this session follows ``configure()`` changes live."""
        return self._config is None

    @property
    def config(self) -> Config:
        """The active configuration (live global, or this session's snapshot)."""
        return self._config if self._config is not None else get_config()

    @property
    def client(self) -> ChatClient:
        """The chat client executing this session's completions."""
        return self.config.client

    @property
    def stats(self) -> ClientStats:
        """Usage accounting for this session's client (per-model too)."""
        return self.client.stats

    @property
    def clock(self) -> VirtualClock:
        """This session's virtual clock of simulated LLM seconds."""
        return self.client.clock

    @property
    def response_cache(self) -> "ResponseCache | None":
        """The persistent response cache, or ``None`` when ``cache="off"``.

        Enable it per session and inspect what it holds::

            session = Session(model="sim-gpt-4", cache="read-write",
                              cache_dir="askit")
            session.ask(t.int, "{{a}} + {{b}}?", a=2, b=3)   # miss
            session.ask(t.int, "{{a}} + {{b}}?", a=2, b=3)   # hit, zero latency
            print(session.stats.cache_hits, len(session.response_cache))

        On-disk entries live in the sharded segment log of
        :class:`~repro.core.cache_store.SegmentStore` by default; pass
        ``cache_backend="files"`` for the legacy one-JSON-file-per-entry
        layout (the default backend still reads and migrates it; see
        ``docs/caching.md``).
        """
        return self.config.response_cache

    @property
    def scheduler(self) -> "RequestScheduler | None":
        """The request scheduler, or ``None`` when ``scheduler="off"``.

        Enable it per session to pace traffic under provider rate limits
        (see :mod:`repro.core.scheduler` and ``docs/scheduling.md``)::

            session = Session(model="sim-gpt-4", scheduler="adaptive",
                              requests_per_minute=120)
            batch = session.define(t.str, "Classify {{x}}.").map(items)
            print(session.stats.throttled, session.stats.throttle_wait_s)
        """
        return self.config.request_scheduler

    @property
    def telemetry(self) -> "Telemetry | None":
        """The observability surface, or ``None`` when ``telemetry="off"``.

        Enable it per session to get per-request span waterfalls, stage
        latency percentiles, and machine-readable exports (see
        :mod:`repro.obs` and ``docs/observability.md``)::

            session = Session(model="sim-gpt-4", cache_dir=None,
                              telemetry="on")
            session.ask(t.int, "{{a}} + {{b}}?", a=2, b=3)
            print(session.telemetry.summary()["stages"].keys())
            print(session.telemetry.slowest(3))
        """
        return self.config.telemetry

    def replace(self, **changes: Any) -> "Session":
        """A new isolated session with ``changes`` applied to this config."""
        return Session(self.config, **changes)

    def reset(self) -> None:
        """Zero this session's stats and virtual clock (not its caches)."""
        self.stats.reset()
        self.clock.reset()

    # -- the unified interface -------------------------------------------------

    def define(
        self,
        return_type: Any,
        template: str,
        param_types: Mapping[str, Any] | None = None,
        examples: Sequence[Any] | None = None,
        test_examples: Sequence[Any] | None = None,
        name: str | None = None,
        config: Config | None = None,
    ) -> AskItFunction:
        """Define a reusable task bound to this session.

        Mirrors the module-level :func:`repro.core.api.define`;
        ``return_type`` takes a type object from :mod:`repro.types` and the
        template's ``{{placeholders}}`` become the function's parameters.
        The returned :class:`AskItFunction` executes against this session's
        client and supports ``fn(...)``, ``await fn.acall(...)``,
        ``fn.map(list_of_bindings)``, and ``fn.compile()``.

        ``config`` overrides the session's configuration for this one
        definition (the module-level facade forwards its ``config=``
        argument this way).
        """
        lifted_params = (
            {param: lift(type_) for param, type_ in param_types.items()}
            if param_types
            else None
        )
        return AskItFunction(
            lift(return_type),
            PromptTemplate(template),
            lifted_params,
            _normalize_examples(examples),
            _normalize_examples(test_examples),
            name=name,
            config=config if config is not None else self._config,
        )

    def ask(
        self,
        return_type: Any,
        template: str,
        examples: Sequence[Any] | None = None,
        config: Config | None = None,
        **args: Any,
    ) -> Any:
        """Ask the LLM to perform a task once and return the typed answer.

        Template parameters are supplied as keyword arguments::

            session.ask(t.int, 'How many legs do {{n}} spiders have?', n=3)
        """
        fn = self.define(return_type, template, examples=examples, config=config)
        return fn(**args)

    async def ask_async(
        self,
        return_type: Any,
        template: str,
        examples: Sequence[Any] | None = None,
        config: Config | None = None,
        **args: Any,
    ) -> Any:
        """Async :meth:`ask`: awaitable, never blocks the event loop.

        Sync-only backends are transparently run on a worker thread; see
        :meth:`repro.llm.client.ChatClient.achat_complete`.
        """
        fn = self.define(return_type, template, examples=examples, config=config)
        return await fn.acall(**args)

    # -- batched execution -----------------------------------------------------

    def run_parallel(
        self,
        thunks: Sequence[Callable[[], Any]],
        *,
        max_concurrency: int = 8,
        keys: Sequence[str | None] | None = None,
        catch: tuple[type[Exception], ...] = (AskItError,),
    ) -> MapResult:
        """Fan arbitrary session work out over a bounded worker pool.

        Each thunk is a zero-argument callable (typically closing over one
        dataset item and calling session-defined functions).  Outcomes come
        back in input order; per-item library errors are captured on the
        outcome instead of aborting the batch; and simulated latency is
        charged as *parallel* wall-clock on this session's virtual clock.
        ``keys`` optionally deduplicates identical items.  When the
        session's scheduler enables batching (``SchedulerPolicy.max_batch
        > 1``), the thunks' cache-missing requests may share grouped
        provider calls; see ``docs/scheduling.md``.
        """
        return run_batch(
            thunks,
            keys=keys,
            max_concurrency=max_concurrency,
            clock=self.clock,
            scheduler=self.scheduler,
            catch=catch,
        )

    def __repr__(self) -> str:
        mode = "tracking-global" if self.tracks_global_config else "isolated"
        return f"Session({self.config!r}, {mode})"


_DEFAULT_SESSION: Session | None = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session() -> Session:
    """The process-default session behind the module-level ``ask``/``define``.

    It tracks the global configuration, so ``configure()`` and
    ``config_override()`` keep working exactly as before sessions existed.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        with _DEFAULT_SESSION_LOCK:
            if _DEFAULT_SESSION is None:
                _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION
