"""Batched fan-out execution for sessions and AskIt functions.

``AskItFunction.map`` and ``Session.run_parallel`` push many LLM-backed
calls through a bounded worker pool.  The machinery here keeps three
promises:

* **order** -- outcomes come back in input order, whatever order workers
  finish in;
* **isolation** -- one item exhausting its retries
  (:class:`~repro.errors.MaxRetriesExceededError`, or any other library
  error) is captured on that item's outcome and never aborts the batch;
* **deduplication** -- items carrying the same key (for ``map()``, the
  same bound arguments, hence the same prompt) execute once and share the
  result instead of racing duplicate in-flight requests.

Simulated latency is charged inside a
:meth:`~repro.llm.latency.VirtualClock.concurrent` region with one lane
per work item, so the batch advances the virtual clock by its *parallel*
wall-clock -- the ideal schedule of the per-item latencies over the
worker budget -- rather than the sum of every call.  Because the estimate
uses charged lane totals, not real thread interleaving, it is as
reproducible as the latencies themselves.
"""

from __future__ import annotations

import contextlib
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.errors import AskItError, ConfigError
from repro.llm.latency import VirtualClock


def binding_key(bindings: dict[str, Any]) -> str:
    """A canonical, hashable key for one set of bound arguments."""
    return json.dumps(bindings, sort_keys=True, default=repr)


class MapOutcome:
    """One item's result within a batch."""

    __slots__ = ("index", "key", "value", "error", "detail", "deduped", "lane_s")

    def __init__(
        self,
        index: int,
        key: str | None,
        value: Any,
        error: Exception | None,
        detail: Any,
        deduped: bool,
        lane_s: float = 0.0,
    ) -> None:
        self.index = index
        #: Dedup key (``None`` when deduplication was not applicable).
        self.key = key
        self.value = value
        #: The captured per-item failure, or ``None`` on success.
        self.error = error
        #: Execution detail (a :class:`~repro.core.runtime.DirectResult`
        #: for ``map()`` items; ``None`` for plain callables).
        self.detail = detail
        #: Whether this item shared another identical item's execution.
        self.deduped = deduped
        #: Seconds this item charged to its clock lane -- counted even when
        #: the item ultimately failed (its retries still spent time).
        self.lane_s = lane_s

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def latency_s(self) -> float:
        """Simulated LLM seconds spent on this item (0 when unknown).

        Failed items report the time their attempts charged, not 0, so
        batch accounting stays honest in the presence of failures.
        """
        if self.lane_s > 0.0:
            return self.lane_s
        return getattr(self.detail, "latency_s", 0.0)

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"error={type(self.error).__name__}"
        return f"MapOutcome(#{self.index}, {status}, deduped={self.deduped})"


class MapResult(Sequence):
    """Ordered outcomes of one batch, with batch-level accounting.

    Behaves as a sequence of *values*: ``len``, indexing, and iteration
    yield each item's value, re-raising that item's captured error on
    access.  Use :attr:`outcomes` / :attr:`failures` to inspect without
    raising.
    """

    def __init__(self, outcomes: list[MapOutcome], wall_s: float) -> None:
        self.outcomes = outcomes
        #: Virtual wall-clock of the batch (per-item latencies scheduled
        #: over the worker budget).
        self.wall_s = wall_s

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self) -> list[MapOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def values(self) -> list[Any]:
        """All values in input order; raises the first captured error."""
        return [self[i] for i in range(len(self.outcomes))]

    @property
    def sequential_s(self) -> float:
        """Simulated seconds the same calls would have taken serially."""
        return sum(
            outcome.latency_s for outcome in self.outcomes if not outcome.deduped
        )

    @property
    def speedup(self) -> float:
        """Sequential over parallel virtual time (1.0 when unknown)."""
        if self.wall_s <= 0.0:
            return 1.0
        return self.sequential_s / self.wall_s

    def __len__(self) -> int:
        return len(self.outcomes)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self.outcomes)))]
        outcome = self.outcomes[index]
        if outcome.error is not None:
            raise outcome.error
        return outcome.value

    def __repr__(self) -> str:
        return (
            f"MapResult({len(self.outcomes)} items, {len(self.failures)} failed, "
            f"wall={self.wall_s:.2f}s)"
        )


def run_batch(
    thunks: Sequence[Callable[[], Any]],
    *,
    keys: Sequence[str | None] | None = None,
    max_concurrency: int = 8,
    clock: VirtualClock | None = None,
    scheduler: Any = None,
    unwrap: Callable[[Any], tuple[Any, Any]] | None = None,
    catch: tuple[type[Exception], ...] = (AskItError,),
) -> MapResult:
    """Run ``thunks`` over a worker pool; outcomes return in input order.

    ``keys[i]`` (when given and non-``None``) deduplicates: items with
    equal keys execute once and share the outcome.  ``unwrap`` splits a
    thunk's raw return into ``(value, detail)``.  Exceptions of the
    ``catch`` types are captured per item; anything else propagates.

    ``scheduler`` (a :class:`~repro.core.scheduler.RequestScheduler`)
    opens a batch window around the pool when its policy enables
    batching (``max_batch > 1``), so the items' cache-missing requests
    can share grouped provider calls; see ``docs/scheduling.md``.
    """
    if max_concurrency < 1:
        raise ConfigError("max_concurrency must be >= 1")
    if keys is not None and len(keys) != len(thunks):
        raise ConfigError("keys must align one-to-one with thunks")
    if unwrap is None:
        unwrap = lambda raw: (raw, None)  # noqa: E731 - trivial default

    # Plan unique executions: the first item with each key runs, later
    # identical items share its slot.
    slot_of: dict[str, int] = {}
    plan: list[tuple[int, bool]] = []  # (execution slot, deduped)
    unique: list[Callable[[], Any]] = []
    for index, thunk in enumerate(thunks):
        key = keys[index] if keys is not None else None
        if key is not None and key in slot_of:
            plan.append((slot_of[key], True))
            continue
        slot = len(unique)
        unique.append(thunk)
        if key is not None:
            slot_of[key] = slot
        plan.append((slot, False))

    workers = min(max_concurrency, len(unique)) if unique else None

    def execute(slot_and_thunk: tuple[int, Callable[[], Any]], region, window):
        slot, thunk = slot_and_thunk
        if window is not None:
            # Register with the batch window first: only the pool's own
            # threads may rendezvous into grouped wire calls (requests
            # from nested pools or foreign threads schedule solo).
            window.adopt()
        # Each work item charges its own clock lane, so the batch's
        # wall-clock depends on the per-item latencies and the worker
        # budget -- never on how the OS interleaved the pool threads.
        lane = (
            clock.in_lane(region, ("item", slot))
            if clock is not None and region is not None
            else contextlib.nullcontext()
        )
        with lane:
            try:
                return thunk(), None
            except catch as error:
                return None, error
            finally:
                if window is not None:
                    # Whatever the item did -- requested, hit the cache,
                    # or died before either -- square the window's
                    # arithmetic so forming groups never starve.
                    window.settle_thread()

    clock_region = (
        clock.concurrent(workers) if clock is not None else contextlib.nullcontext()
    )
    window_ctx = (
        scheduler.batch_window(len(unique), workers)
        if scheduler is not None and workers is not None
        else contextlib.nullcontext()
    )
    with clock_region as region, window_ctx as window:
        if unique:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                raw = list(
                    pool.map(
                        lambda pair: execute(pair, region, window),
                        enumerate(unique),
                    )
                )
        else:
            raw = []
    wall_s = region.wall_s if region is not None else 0.0

    def lane_seconds(slot: int) -> float:
        if region is None:
            return 0.0
        return region.lanes.get(("item", slot), 0.0)

    outcomes: list[MapOutcome] = []
    for index, (slot, deduped) in enumerate(plan):
        returned, error = raw[slot]
        key = keys[index] if keys is not None else None
        lane_s = lane_seconds(slot)
        if error is not None:
            outcomes.append(
                MapOutcome(index, key, None, error, None, deduped, lane_s)
            )
        else:
            value, detail = unwrap(returned)
            outcomes.append(
                MapOutcome(index, key, value, None, detail, deduped, lane_s)
            )
    return MapResult(outcomes, wall_s)
