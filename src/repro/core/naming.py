"""Function and cache-file naming.

The DSL compiler assigns each generated function a unique name derived
from its template prompt, and the cached source file is "named after the
template prompt" (Section III-D).  Names must be valid identifiers in the
target language, so templates are slugified with a short content hash for
collision freedom.
"""

from __future__ import annotations

import hashlib
import re

_NON_IDENT_RE = re.compile(r"[^0-9a-zA-Z]+")
_MAX_STEM = 48


def _slug_words(template_text: str) -> list[str]:
    cleaned = _NON_IDENT_RE.sub(" ", template_text)
    return [word for word in cleaned.split() if word]


def _short_hash(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:8]


def snake_case_name(template_text: str) -> str:
    """A Python function name for a template, e.g.
    ``calculate_the_factorial_of_n_1a2b3c4d``."""
    words = [word.lower() for word in _slug_words(template_text)] or ["task"]
    stem = "_".join(words)[:_MAX_STEM].rstrip("_")
    if stem[0].isdigit():
        stem = f"f_{stem}"
    return f"{stem}_{_short_hash(template_text)}"


def camel_case_name(template_text: str) -> str:
    """A TypeScript function name for a template, e.g.
    ``calculateTheFactorialOfN1a2b3c4d``."""
    words = [word.lower() for word in _slug_words(template_text)] or ["task"]
    camel = words[0] + "".join(word.capitalize() for word in words[1:])
    camel = camel[:_MAX_STEM]
    if camel[0].isdigit():
        camel = f"f{camel}"
    suffix = _short_hash(template_text)
    return f"{camel}{suffix[0].upper()}{suffix[1:]}"


def function_name(template_text: str, language: str) -> str:
    """The generated function's name in ``language``'s convention."""
    if language == "python":
        return snake_case_name(template_text)
    return camel_case_name(template_text)


def cache_stem(template_text: str) -> str:
    """Cache file stem for a template (shared across languages)."""
    words = [word.lower() for word in _slug_words(template_text)] or ["task"]
    stem = "_".join(words)[:_MAX_STEM].rstrip("_")
    return f"{stem}_{_short_hash(template_text)}"
