"""``AskItFunction``: the object returned by ``define``.

Calling it runs the task *directly* through the LLM (Section III-E);
calling ``.compile()`` turns it into a generated function that runs
without the LLM (Section III-D / III-F).  Both paths share the same
template and type information -- the paper's central "unified interface"
claim -- so switching between them never requires touching the prompt.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.codegen import GeneratedFunction, generate_function
from repro.core.config import Config, get_config
from repro.core.runtime import DirectResult, execute_direct
from repro.errors import TemplateError
from repro.ioexample import Example
from repro.templates import PromptTemplate
from repro.types.base import Type


class AskItFunction:
    """A task packaged as a callable, in the paper's ``define`` sense."""

    def __init__(
        self,
        return_type: Type,
        template: PromptTemplate,
        param_types: Mapping[str, Type] | None = None,
        few_shot_examples: Sequence[Example] = (),
        test_examples: Sequence[Example] = (),
        name: str | None = None,
        config: Config | None = None,
    ) -> None:
        self.return_type = return_type
        self.template = template
        self.param_types = dict(param_types or {})
        self.few_shot_examples = list(few_shot_examples)
        self.test_examples = list(test_examples)
        self.name = name
        self._config = config
        self.last_result: DirectResult | None = None
        self._validate_param_types()

    def _validate_param_types(self) -> None:
        extra = [name for name in self.param_types if name not in self.template.parameters]
        if extra:
            raise TemplateError(
                f"parameter types given for {extra} but the template "
                f"{self.template.text!r} declares {list(self.template.parameters)}"
            )

    @property
    def config(self) -> Config:
        return self._config or get_config()

    @property
    def parameters(self) -> tuple[str, ...]:
        return self.template.parameters

    # -- direct execution -----------------------------------------------------

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        """Run the task directly through the LLM and return the typed answer."""
        bound = self._bind(args, kwargs)
        result = execute_direct(
            self.template,
            self.return_type,
            bound,
            self.few_shot_examples,
            self.config,
        )
        self.last_result = result
        return result.value

    def _bind(self, args: tuple, kwargs: dict) -> dict[str, Any]:
        if args and kwargs:
            raise TemplateError(
                "pass arguments either positionally or by name, not both"
            )
        if args:
            # One positional dict mirrors the paper's TS call style
            # `getSentiment({review: ...})`.
            if len(args) == 1 and isinstance(args[0], Mapping):
                return dict(args[0])
            return self.template.bind_positional(list(args))
        return dict(kwargs)

    # -- compilation ------------------------------------------------------------

    def compile(
        self,
        language: str | None = None,
        use_cache: bool = True,
    ) -> GeneratedFunction:
        """Generate code for this task and return the compiled callable.

        Mirrors pyaskit's ``define(...).compile()``: code generation runs
        once (results are cached on disk) and the returned function executes
        without any LLM involvement.
        """
        return generate_function(
            self.template,
            self.return_type,
            self.param_types or None,
            self.test_examples,
            language=language,
            name=self.name if self.name else None,
            config=self.config,
            use_cache=use_cache,
        )

    def __repr__(self) -> str:
        return (
            f"AskItFunction({self.template.text!r} -> {self.return_type.typescript()})"
        )
