"""``AskItFunction``: the object returned by ``define``.

Calling it runs the task *directly* through the LLM (Section III-E);
calling ``.compile()`` turns it into a generated function that runs
without the LLM (Section III-D / III-F).  Both paths share the same
template and type information -- the paper's central "unified interface"
claim -- so switching between them never requires touching the prompt.

Beyond the paper's sync call, a function offers two scalable execution
modes (see :mod:`repro.core.session`):

* ``await fn.acall(...)`` -- one call, awaitable, event-loop friendly;
* ``fn.map(list_of_bindings, max_concurrency=...)`` -- many calls fanned
  out over a worker pool with per-item retry isolation, deduplication of
  identical in-flight prompts, and parallel virtual-clock accounting.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.core.batch import MapResult, binding_key, run_batch
from repro.core.codegen import (
    GeneratedFunction,
    generate_function,
    generate_function_async,
)
from repro.core.config import Config, get_config
from repro.core.runtime import DirectResult, execute_direct, execute_direct_async
from repro.errors import (
    DeadlineExceededError,
    MaxRetriesExceededError,
    RateLimitError,
    TemplateError,
)
from repro.ioexample import Example
from repro.templates import PromptTemplate
from repro.types.base import Type


class AskItFunction:
    """A task packaged as a callable, in the paper's ``define`` sense."""

    def __init__(
        self,
        return_type: Type,
        template: PromptTemplate,
        param_types: Mapping[str, Type] | None = None,
        few_shot_examples: Sequence[Example] = (),
        test_examples: Sequence[Example] = (),
        name: str | None = None,
        config: Config | None = None,
    ) -> None:
        self.return_type = return_type
        self.template = template
        self.param_types = dict(param_types or {})
        self.few_shot_examples = list(few_shot_examples)
        self.test_examples = list(test_examples)
        self.name = name
        self._config = config
        self.last_result: DirectResult | None = None
        self._validate_param_types()

    def _validate_param_types(self) -> None:
        extra = [name for name in self.param_types if name not in self.template.parameters]
        if extra:
            raise TemplateError(
                f"parameter types given for {extra} but the template "
                f"{self.template.text!r} declares {list(self.template.parameters)}"
            )

    @property
    def config(self) -> Config:
        """The configuration this function executes under (pinned or global)."""
        return self._config or get_config()

    @property
    def parameters(self) -> tuple[str, ...]:
        """The template's parameter names, in declaration order."""
        return self.template.parameters

    # -- direct execution -----------------------------------------------------

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        """Run the task directly through the LLM and return the typed answer."""
        bound = self._bind(args, kwargs)
        result = execute_direct(
            self.template,
            self.return_type,
            bound,
            self.few_shot_examples,
            self.config,
        )
        self.last_result = result
        return result.value

    async def acall(self, *args: Any, **kwargs: Any) -> Any:
        """Async counterpart of calling the function: same binding, same
        retry semantics, awaitable.

        ``last_result`` is still updated for convenience, but under
        concurrent ``acall`` invocations it reflects whichever call
        finished last -- read the :class:`DirectResult` from
        :meth:`map` outcomes when you need per-call detail.
        """
        bound = self._bind(args, kwargs)
        result = await execute_direct_async(
            self.template,
            self.return_type,
            bound,
            self.few_shot_examples,
            self.config,
        )
        self.last_result = result
        return result.value

    # -- batched execution ------------------------------------------------------

    def map(
        self,
        bindings: Iterable[Any],
        *,
        max_concurrency: int = 8,
        dedup: bool | None = None,
        config: Config | None = None,
        priority: int = 0,
    ) -> MapResult:
        """Run this task once per binding over a bounded worker pool.

        Each item of ``bindings`` is bound exactly as a call would be: a
        mapping of keyword arguments, a tuple of positional values, or --
        for single-parameter templates -- a bare value::

            classify = session.define(t.str, "Classify {{ticket}}.")
            batch = classify.map(tickets, max_concurrency=16)
            labels = batch.values          # input order, raises on failure
            bad = batch.failures           # per-item captured errors

        Guarantees (see :mod:`repro.core.batch`): results return in input
        order; one item exhausting its retries is captured on its outcome
        (:class:`~repro.errors.MaxRetriesExceededError`) without aborting
        the batch; and identical bindings are deduplicated into one
        in-flight request when the backing provider is deterministic
        (``dedup`` forces the behaviour either way).  Simulated latency is
        charged as *parallel* wall-clock: ``batch.wall_s`` is the per-item
        latencies scheduled over ``max_concurrency`` workers, and
        ``batch.speedup`` compares it against the sequential sum.

        Throttle failures are isolated the same way: an item that blows
        its scheduler deadline
        (:class:`~repro.errors.DeadlineExceededError`) or exhausts its
        rate-limit retries (:class:`~repro.errors.RateLimitError`) is
        captured on its outcome.  ``priority`` orders this batch's
        requests against other traffic at the scheduler's admission gate
        (lower goes first) when the config enables one.
        """
        config = config or self.config
        bound_list = [self._bind_item(item) for item in bindings]
        if dedup is None:
            provider = config.client.provider_for(config.model)
            dedup = provider.deterministic
        keys = [binding_key(bound) for bound in bound_list] if dedup else None

        def thunk_for(index: int, bound: dict[str, Any]):
            def thunk() -> DirectResult:
                # Each item is its own trace: a fresh root span per
                # binding keeps worker-pool threads from chaining onto
                # whatever trace the submitting thread happened to hold,
                # and per-item failures stay isolated to their trace.
                with config.span(
                    "askit.map.item", root=True, item=index
                ) as item_span:
                    result = execute_direct(
                        self.template,
                        self.return_type,
                        bound,
                        self.few_shot_examples,
                        config,
                        priority=priority,
                    )
                    if item_span is not None:
                        item_span.set_attribute("attempts", result.attempts)
                    return result

            return thunk

        return run_batch(
            [thunk_for(index, bound) for index, bound in enumerate(bound_list)],
            keys=keys,
            max_concurrency=max_concurrency,
            clock=config.client.clock,
            scheduler=config.request_scheduler,
            unwrap=lambda result: (result.value, result),
            catch=(MaxRetriesExceededError, DeadlineExceededError, RateLimitError),
        )

    # -- argument binding --------------------------------------------------------

    def _bind(self, args: tuple, kwargs: dict) -> dict[str, Any]:
        if args and kwargs:
            raise TemplateError(
                "pass arguments either positionally or by name, not both"
            )
        if args:
            # One positional dict mirrors the paper's TS call style
            # `getSentiment({review: ...})`.
            if len(args) == 1 and isinstance(args[0], Mapping):
                return self._checked(dict(args[0]))
            return self.template.bind_positional(list(args))
        return self._checked(dict(kwargs))

    def _bind_item(self, item: Any) -> dict[str, Any]:
        """Bind one ``map()`` element the way a direct call would."""
        if isinstance(item, Mapping):
            return self._checked(dict(item))
        if isinstance(item, tuple):
            return self.template.bind_positional(list(item))
        if len(self.template.parameters) == 1:
            return {self.template.parameters[0]: item}
        raise TemplateError(
            f"map() items for template {self.template.text!r} must be mappings "
            f"or tuples binding {list(self.template.parameters)}; got {item!r}"
        )

    def _checked(self, bound: dict[str, Any]) -> dict[str, Any]:
        """Validate named bindings against the template's parameters."""
        self.template.require_exact_args(bound)
        return bound

    # -- compilation ------------------------------------------------------------

    def compile(
        self,
        language: str | None = None,
        use_cache: bool = True,
    ) -> GeneratedFunction:
        """Generate code for this task and return the compiled callable.

        Mirrors pyaskit's ``define(...).compile()``: code generation runs
        once (results are cached on disk) and the returned function executes
        without any LLM involvement.
        """
        return generate_function(
            self.template,
            self.return_type,
            self.param_types or None,
            self.test_examples,
            language=language,
            name=self.name if self.name else None,
            config=self.config,
            use_cache=use_cache,
        )

    async def acompile(
        self,
        language: str | None = None,
        use_cache: bool = True,
    ) -> GeneratedFunction:
        """Async :meth:`compile`: LLM round-trips are awaited; candidate
        validation still runs on the calling thread.
        """
        return await generate_function_async(
            self.template,
            self.return_type,
            self.param_types or None,
            self.test_examples,
            language=language,
            name=self.name if self.name else None,
            config=self.config,
            use_cache=use_cache,
        )

    def __repr__(self) -> str:
        return (
            f"AskItFunction({self.template.text!r} -> {self.return_type.typescript()})"
        )
