"""Library configuration.

Defaults mirror the paper's setup: temperature 1.0 (so retries draw fresh
samples), a maximum of 9 retries, generated code cached in an ``askit``
directory, GPT-4-class model for everything.  The experiments switch the
model per Table: ``sim-gpt-3.5-turbo-16k`` for the 50 common tasks,
``sim-gpt-4`` for GSM8K.
"""

from __future__ import annotations

import contextlib
from pathlib import Path
from typing import Iterator

from repro.core.safety import SafetyPolicy
from repro.errors import ConfigError
from repro.llm.client import ChatClient, default_client
from repro.prompts.codegen import PYTHON, TYPESCRIPT

#: The paper sets the retry limit for code regeneration to 9.
DEFAULT_MAX_RETRIES = 9


class Config:
    """Runtime configuration for ``ask``/``define``."""

    def __init__(
        self,
        model: str = "sim-gpt-4",
        codegen_model: str | None = None,
        temperature: float = 1.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
        cache_dir: str | Path | None = "askit",
        target_language: str = PYTHON,
        client: ChatClient | None = None,
        safety_policy: SafetyPolicy | None = None,
    ) -> None:
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if not 0.0 <= temperature <= 2.0:
            raise ConfigError("temperature must be in [0.0, 2.0] (OpenAI API range)")
        if target_language not in (PYTHON, TYPESCRIPT):
            raise ConfigError(f"unsupported target language {target_language!r}")
        self.model = model
        self.codegen_model = codegen_model or model
        self.temperature = temperature
        self.max_retries = max_retries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.target_language = target_language
        # The paper's published behaviour is "user reviews the generated
        # code", i.e. no automated safety gate; see §VI for the extension
        # this implements when switched to "warn" or "enforce".
        self.safety_policy = safety_policy or SafetyPolicy("off", allow_files=True)
        self._client = client

    @property
    def client(self) -> ChatClient:
        return self._client if self._client is not None else default_client()

    def replace(self, **changes) -> "Config":
        """A copy of this config with ``changes`` applied."""
        current = {
            "model": self.model,
            "codegen_model": self.codegen_model,
            "temperature": self.temperature,
            "max_retries": self.max_retries,
            "cache_dir": self.cache_dir,
            "target_language": self.target_language,
            "client": self._client,
            "safety_policy": self.safety_policy,
        }
        current.update(changes)
        return Config(**current)

    def __repr__(self) -> str:
        return (
            f"Config(model={self.model!r}, codegen_model={self.codegen_model!r}, "
            f"retries={self.max_retries}, target={self.target_language!r})"
        )


_GLOBAL_CONFIG = Config()


def get_config() -> Config:
    """The active global configuration."""
    return _GLOBAL_CONFIG


def configure(**changes) -> Config:
    """Update the global configuration; returns the new config.

    Affects the module-level ``ask``/``define`` facades (and any session
    tracking the global config); sessions constructed with an explicit
    config or overrides are isolated snapshots and do not observe this.
    """
    global _GLOBAL_CONFIG
    _GLOBAL_CONFIG = _GLOBAL_CONFIG.replace(**changes)
    return _GLOBAL_CONFIG


@contextlib.contextmanager
def config_override(**changes) -> Iterator[Config]:
    """Temporarily override the global configuration (tests, experiments).

    Like :func:`configure`, this is scoped to the global config: isolated
    :class:`~repro.core.session.Session` objects are unaffected, so
    overrides no longer leak across sessions.
    """
    global _GLOBAL_CONFIG
    saved = _GLOBAL_CONFIG
    _GLOBAL_CONFIG = saved.replace(**changes)
    try:
        yield _GLOBAL_CONFIG
    finally:
        _GLOBAL_CONFIG = saved
