"""Library configuration.

Defaults mirror the paper's setup: temperature 1.0 (so retries draw fresh
samples), a maximum of 9 retries, generated code cached in an ``askit``
directory, GPT-4-class model for everything.  The experiments switch the
model per Table: ``sim-gpt-3.5-turbo-16k`` for the 50 common tasks,
``sim-gpt-4`` for GSM8K.
"""

from __future__ import annotations

import contextlib
import threading
from pathlib import Path
from typing import ContextManager, Iterator

from repro.core.response_cache import CACHE_BACKENDS, CACHE_MODES, ResponseCache
from repro.core.safety import SafetyPolicy
from repro.core.scheduler import SCHEDULER_MODES, RequestScheduler, SchedulerPolicy
from repro.errors import ConfigError
from repro.llm.client import ChatClient, default_client
from repro.llm.providers.wire import WirePolicy
from repro.obs.telemetry import Telemetry, TelemetryPolicy, resolve_telemetry_mode
from repro.obs.trace import Span
from repro.prompts.codegen import PYTHON, TYPESCRIPT

#: The paper sets the retry limit for code regeneration to 9.
DEFAULT_MAX_RETRIES = 9

#: Subdirectory of ``cache_dir`` holding response-cache entries (the
#: directory itself holds the generated-code cache, as in the paper).
RESPONSE_CACHE_SUBDIR = "responses"


class Config:
    """Runtime configuration for ``ask``/``define``.

    Every knob the runtime consults lives here; sessions snapshot a
    ``Config`` so overrides never leak across workloads::

        from repro.core import Config, Session

        config = Config(model="sim-gpt-4", cache="read-write")
        session = Session(config)

    Parameters
    ----------
    model:
        Model name answering direct ``ask()`` calls.
    codegen_model:
        Model used by ``.compile()``; defaults to ``model``.
    temperature:
        Sampling temperature in [0.0, 2.0] (the OpenAI API range).
    max_retries:
        Retry budget beyond the first attempt (the paper uses 9).
    cache_dir:
        Directory holding the generated-code cache (paper Section
        III-D's ``askit`` directory) and, under ``responses/``, the
        persistent response cache.  ``None`` disables on-disk caching;
        the response cache then runs in memory only.
    target_language:
        ``"python"`` or ``"typescript"`` for generated code.
    client:
        Explicit :class:`~repro.llm.client.ChatClient`; defaults to the
        process-wide client.
    safety_policy:
        Static-scan policy for generated code (``off`` by default, the
        paper's behaviour).
    cache:
        Response-cache mode: ``"off"`` (default -- every call reaches a
        provider), ``"read"`` (replay stored entries, never persist new
        ones), or ``"read-write"`` (replay and persist).  Any mode other
        than ``"off"`` also coalesces concurrent identical requests onto
        one provider call.
    cache_ttl:
        Seconds before a stored response expires (``None`` = never).
    cache_max_entries:
        LRU bound on stored responses.
    cache_backend:
        On-disk layout of the response cache: ``"segments"`` (default --
        the sharded log-structured
        :class:`~repro.core.cache_store.SegmentStore`, built for large
        caches) or ``"files"`` (the original one-JSON-file-per-entry
        layout).  The segments backend reads and migrates entries a
        files-backend cache wrote, so existing directories upgrade in
        place; memory-only caches (``cache_dir=None``) ignore this.
    scheduler:
        Request-scheduling mode: ``"off"`` (default -- provider calls are
        issued immediately; 429s fall back to naive exponential backoff)
        or ``"adaptive"`` (calls pass through a
        :class:`~repro.core.scheduler.RequestScheduler`: rate pacing,
        AIMD concurrency, priorities, deadlines).
    requests_per_minute:
        Sustained per-model request pacing for the scheduler
        (``None`` = no request bucket).
    tokens_per_minute:
        Sustained per-model token pacing for the scheduler
        (``None`` = no token bucket).
    deadline_s:
        Default per-request deadline in virtual seconds; a request whose
        projected waits exceed it raises
        :class:`~repro.errors.DeadlineExceededError` (``None`` = none).
    scheduler_policy:
        Full :class:`~repro.core.scheduler.SchedulerPolicy` for the
        advanced knobs (burst, AIMD bounds, requeue budget...).  The
        ``requests_per_minute``/``tokens_per_minute``/``deadline_s``
        arguments override the policy's matching fields when given.
    wire_policy:
        How real-wire providers (``gpt-``/``claude-``/``gemini-`` model
        names) reach the network
        (:class:`~repro.llm.providers.wire.WirePolicy`: live opt-in,
        cassette directory and mode, timeout).  ``None`` (the default)
        resolves from the environment -- hermetic unless ``REPRO_LIVE=1``.
        When set without an explicit ``client``, this config gets its
        own :class:`~repro.llm.client.ChatClient` carrying the policy,
        so wire transports never leak into the shared default client.
    telemetry:
        Observability mode: ``"off"`` (default -- zero tracing overhead)
        or ``"on"`` (every request emits hierarchical spans and stage
        metrics, queryable via :attr:`telemetry` /
        ``Session.telemetry``).  A full
        :class:`~repro.obs.telemetry.TelemetryPolicy` enables telemetry
        with explicit knobs (trace directory, span capacity).  Setting
        the ``REPRO_TRACE_DIR`` environment variable switches telemetry
        on and points the JSON-lines span sink and Prometheus dump at
        that directory.
    """

    def __init__(
        self,
        model: str = "sim-gpt-4",
        codegen_model: str | None = None,
        temperature: float = 1.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
        cache_dir: str | Path | None = "askit",
        target_language: str = PYTHON,
        client: ChatClient | None = None,
        safety_policy: SafetyPolicy | None = None,
        cache: str = "off",
        cache_ttl: float | None = None,
        cache_max_entries: int = 4096,
        cache_backend: str = "segments",
        scheduler: str = "off",
        requests_per_minute: float | None = None,
        tokens_per_minute: float | None = None,
        deadline_s: float | None = None,
        scheduler_policy: SchedulerPolicy | None = None,
        wire_policy: WirePolicy | None = None,
        telemetry: "str | TelemetryPolicy" = "off",
    ) -> None:
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if not 0.0 <= temperature <= 2.0:
            raise ConfigError("temperature must be in [0.0, 2.0] (OpenAI API range)")
        if target_language not in (PYTHON, TYPESCRIPT):
            raise ConfigError(f"unsupported target language {target_language!r}")
        if cache not in CACHE_MODES:
            raise ConfigError(
                f"cache must be one of {CACHE_MODES}, got {cache!r}"
            )
        if cache_ttl is not None and cache_ttl <= 0:
            raise ConfigError("cache_ttl must be positive (or None for no expiry)")
        if cache_max_entries < 1:
            raise ConfigError("cache_max_entries must be >= 1")
        if cache_backend not in CACHE_BACKENDS:
            raise ConfigError(
                f"cache_backend must be one of {CACHE_BACKENDS}, "
                f"got {cache_backend!r}"
            )
        if scheduler not in SCHEDULER_MODES:
            raise ConfigError(
                f"scheduler must be one of {SCHEDULER_MODES}, got {scheduler!r}"
            )
        self.model = model
        self.codegen_model = codegen_model or model
        self.temperature = temperature
        self.max_retries = max_retries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.target_language = target_language
        # The paper's published behaviour is "user reviews the generated
        # code", i.e. no automated safety gate; see §VI for the extension
        # this implements when switched to "warn" or "enforce".
        self.safety_policy = safety_policy or SafetyPolicy("off", allow_files=True)
        self.cache = cache
        self.cache_ttl = cache_ttl
        self.cache_max_entries = cache_max_entries
        self.cache_backend = cache_backend
        self.scheduler = scheduler
        # Fold the convenience knobs into one policy; SchedulerPolicy
        # validates them (positive rates, positive deadline).
        base_policy = scheduler_policy or SchedulerPolicy()
        overrides = {}
        if requests_per_minute is not None:
            overrides["requests_per_minute"] = requests_per_minute
        if tokens_per_minute is not None:
            overrides["tokens_per_minute"] = tokens_per_minute
        if deadline_s is not None:
            overrides["deadline_s"] = deadline_s
        self.scheduler_policy = (
            base_policy.replace(**overrides) if overrides else base_policy
        )
        self.wire_policy = wire_policy
        # resolve_telemetry_mode validates the knob and honours
        # REPRO_TRACE_DIR (which upgrades "off" to "on" with a sink).
        self.telemetry_mode, self._telemetry_policy = resolve_telemetry_mode(telemetry)
        self._client = client
        self._wire_client: ChatClient | None = None
        self._wire_client_lock = threading.Lock()
        self._response_cache: ResponseCache | None = None
        self._response_cache_lock = threading.Lock()
        self._request_scheduler: RequestScheduler | None = None
        self._request_scheduler_lock = threading.Lock()
        self._telemetry: Telemetry | None = None
        self._telemetry_lock = threading.Lock()

    @property
    def client(self) -> ChatClient:
        """The chat client serving this config's completions.

        An explicit ``client`` wins; otherwise a ``wire_policy`` earns
        the config a dedicated client carrying it (memoized), and with
        neither the process-wide default client serves.
        """
        if self._client is not None:
            return self._client
        if self.wire_policy is not None:
            if self._wire_client is None:
                with self._wire_client_lock:
                    if self._wire_client is None:
                        self._wire_client = ChatClient(wire_policy=self.wire_policy)
            return self._wire_client
        return default_client()

    @property
    def response_cache(self) -> ResponseCache | None:
        """The response cache this config enables, or ``None`` when off.

        Created once per config (the in-flight coalescing table lives on
        the instance, so every call through one config shares it).  With
        a ``cache_dir``, entries persist under
        ``cache_dir/responses/``; without one the cache is memory-only
        -- coalescing and hit accounting still apply, nothing survives
        the process.
        """
        if self.cache == "off":
            return None
        if self._response_cache is None:
            with self._response_cache_lock:
                if self._response_cache is None:
                    directory = (
                        self.cache_dir / RESPONSE_CACHE_SUBDIR
                        if self.cache_dir is not None
                        else None
                    )
                    self._response_cache = ResponseCache(
                        directory,
                        mode=self.cache,
                        ttl_s=self.cache_ttl,
                        max_entries=self.cache_max_entries,
                        backend=self.cache_backend,
                    )
        return self._response_cache

    @property
    def requests_per_minute(self) -> float | None:
        """The scheduler's per-model request pacing (None = unpaced)."""
        return self.scheduler_policy.requests_per_minute

    @property
    def tokens_per_minute(self) -> float | None:
        """The scheduler's per-model token pacing (None = unpaced)."""
        return self.scheduler_policy.tokens_per_minute

    @property
    def deadline_s(self) -> float | None:
        """The default per-request virtual deadline (None = none)."""
        return self.scheduler_policy.deadline_s

    @property
    def request_scheduler(self) -> RequestScheduler | None:
        """The request scheduler this config enables, or ``None`` when off.

        Created once per config, so every call through one config (or
        one session) shares pacing buckets and AIMD state -- the whole
        point of admission control.  See :mod:`repro.core.scheduler`.
        """
        if self.scheduler == "off":
            return None
        if self._request_scheduler is None:
            with self._request_scheduler_lock:
                if self._request_scheduler is None:
                    self._request_scheduler = RequestScheduler(self.scheduler_policy)
        return self._request_scheduler

    @property
    def telemetry(self) -> Telemetry | None:
        """The telemetry attached to this config, or ``None`` when off.

        Created once per config on first use and attached to
        :attr:`client` -- the tracer reads the client's virtual clock,
        and the span/stage metrics land in the same registry as
        :class:`~repro.llm.client.ClientStats`, so one Prometheus dump
        covers both.
        """
        if self.telemetry_mode == "off":
            return None
        if self._telemetry is None:
            with self._telemetry_lock:
                if self._telemetry is None:
                    policy = self._telemetry_policy or TelemetryPolicy()
                    self._telemetry = Telemetry(policy).attach(self.client)
        return self._telemetry

    def span(
        self, name: str, root: bool = False, **attributes
    ) -> ContextManager[Span | None]:
        """A tracer span context when telemetry is on, else a no-op.

        Yields the open :class:`~repro.obs.trace.Span` (or ``None`` when
        telemetry is off); ``root=True`` starts a fresh trace instead of
        parenting onto the ambient span.  This is the hook the runtime
        layers (direct execution, ``map()``) instrument through.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return contextlib.nullcontext()
        return telemetry.tracer.span(name, attributes, root=root)

    def replace(self, **changes) -> "Config":
        """A copy of this config with ``changes`` applied."""
        current = {
            "model": self.model,
            "codegen_model": self.codegen_model,
            "temperature": self.temperature,
            "max_retries": self.max_retries,
            "cache_dir": self.cache_dir,
            "target_language": self.target_language,
            "client": self._client,
            "safety_policy": self.safety_policy,
            "cache": self.cache,
            "cache_ttl": self.cache_ttl,
            "cache_max_entries": self.cache_max_entries,
            "cache_backend": self.cache_backend,
            "scheduler": self.scheduler,
            "scheduler_policy": self.scheduler_policy,
            "wire_policy": self.wire_policy,
            # An explicit policy survives the copy; a bare mode string
            # re-resolves (so REPRO_TRACE_DIR changes are honoured).
            "telemetry": (
                self._telemetry_policy
                if self._telemetry_policy is not None
                else self.telemetry_mode
            ),
        }
        current.update(changes)
        return Config(**current)

    def __repr__(self) -> str:
        return (
            f"Config(model={self.model!r}, codegen_model={self.codegen_model!r}, "
            f"retries={self.max_retries}, target={self.target_language!r}, "
            f"cache={self.cache!r}, scheduler={self.scheduler!r})"
        )


_GLOBAL_CONFIG = Config()


def get_config() -> Config:
    """The active global configuration."""
    return _GLOBAL_CONFIG


def configure(**changes) -> Config:
    """Update the global configuration; returns the new config.

    Affects the module-level ``ask``/``define`` facades (and any session
    tracking the global config); sessions constructed with an explicit
    config or overrides are isolated snapshots and do not observe this.
    """
    global _GLOBAL_CONFIG
    _GLOBAL_CONFIG = _GLOBAL_CONFIG.replace(**changes)
    return _GLOBAL_CONFIG


@contextlib.contextmanager
def config_override(**changes) -> Iterator[Config]:
    """Temporarily override the global configuration (tests, experiments).

    Like :func:`configure`, this is scoped to the global config: isolated
    :class:`~repro.core.session.Session` objects are unaffected, so
    overrides no longer leak across sessions.
    """
    global _GLOBAL_CONFIG
    saved = _GLOBAL_CONFIG
    _GLOBAL_CONFIG = saved.replace(**changes)
    try:
        yield _GLOBAL_CONFIG
    finally:
        _GLOBAL_CONFIG = saved
