"""Module-level compilation driver (Section III-D's coarse-grained mode).

The paper gives two ways to mark tasks as codable: name the *source file*
whose ``define`` calls should all be compiled, or name individual
functions.  For the TypeScript implementation this is a compiler plugin;
for Python -- where ``define`` produces runtime objects -- the equivalent
is a driver that imports a module, finds every :class:`AskItFunction`
bound at module scope, and compiles them ahead of time into the shared
``askit/`` cache.

    from repro.core.compiler import compile_module

    results = compile_module("myapp.tasks")                 # file mode
    results = compile_module("myapp.tasks", only=["fib"])   # function mode
"""

from __future__ import annotations

import importlib
import types
from typing import Iterable

from repro.core.codegen import GeneratedFunction
from repro.core.function import AskItFunction
from repro.errors import AskItError, CodeGenerationError


class ModuleCompilationReport:
    """Outcome of compiling one module's definitions."""

    def __init__(self) -> None:
        self.compiled: dict[str, GeneratedFunction] = {}
        self.failed: dict[str, CodeGenerationError] = {}

    @property
    def success_count(self) -> int:
        return len(self.compiled)

    @property
    def failure_count(self) -> int:
        return len(self.failed)

    def __repr__(self) -> str:
        return (
            f"ModuleCompilationReport(compiled={sorted(self.compiled)}, "
            f"failed={sorted(self.failed)})"
        )


def find_definitions(module: types.ModuleType | str) -> dict[str, AskItFunction]:
    """Every ``AskItFunction`` bound at the top level of ``module``.

    ``module`` may be a module object or an importable dotted name.
    Names are the *variable names* the definitions are bound to, matching
    the paper's "function name corresponds to the variable name to which
    the result of the define call is assigned".
    """
    if isinstance(module, str):
        module = importlib.import_module(module)
    return {
        name: value
        for name, value in vars(module).items()
        if isinstance(value, AskItFunction)
    }


def compile_module(
    module: types.ModuleType | str,
    only: Iterable[str] | None = None,
    language: str | None = None,
    use_cache: bool = True,
) -> ModuleCompilationReport:
    """Compile the module's definitions; returns a per-name report.

    With ``only`` the driver compiles just the named definitions (the
    paper's fine-grained mode); unknown names raise immediately so typos
    do not silently skip work.  Individual code-generation failures are
    collected rather than raised, so one stubborn task does not block the
    rest of the file.
    """
    definitions = find_definitions(module)
    if only is not None:
        requested = list(only)
        unknown = [name for name in requested if name not in definitions]
        if unknown:
            raise AskItError(
                f"no AskIt definition(s) named {unknown} in the module; "
                f"available: {sorted(definitions)}"
            )
        definitions = {name: definitions[name] for name in requested}

    report = ModuleCompilationReport()
    for name, definition in definitions.items():
        try:
            generated = definition.compile(language=language, use_cache=use_cache)
        except CodeGenerationError as error:
            report.failed[name] = error
            continue
        report.compiled[name] = generated
    return report
