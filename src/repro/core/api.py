"""The module-level AskIt API: ``ask`` and ``define``.

Both are thin facades over the process-default :class:`Session`
(:func:`repro.core.session.default_session`), kept 100% signature- and
behaviour-compatible with the paper's Python implementation (Section
III-F)::

    import repro.types as t
    from repro import ask, define

    sentiment = ask(
        t.union(t.literal('positive'), t.literal('negative')),
        'What is the sentiment of {{review}}?',
        review='The product is fantastic.',
    )

    get_books = define(
        t.list(t.dict({'title': t.str, 'author': t.str, 'year': t.int})),
        'List {{n}} classic books on {{subject}}.',
    )
    books = get_books(n=5, subject='computer science')

    factorial = define(t.int, 'Calculate the factorial of {{n}}').compile()
    factorial(n=10)   # runs generated code; no LLM in the loop

The default session tracks the global configuration, so ``configure()``
and ``config_override()`` affect these facades exactly as before.  For
isolated state, async execution, and batching, construct a session of
your own::

    from repro.core import Session

    session = Session(model='sim-gpt-4', cache_dir=None)
    answer = await session.ask_async(t.int, 'Sum of first {{n}} primes?', n=10)

    classify = session.define(t.str, 'Classify {{ticket}}.')
    labels = classify.map(tickets, max_concurrency=16).values
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.config import Config
from repro.core.function import AskItFunction
from repro.core.session import default_session


def define(
    return_type: Any,
    template: str,
    param_types: Mapping[str, Any] | None = None,
    examples: Sequence[Any] | None = None,
    test_examples: Sequence[Any] | None = None,
    name: str | None = None,
    config: Config | None = None,
) -> AskItFunction:
    """Define a reusable task from a prompt template.

    ``return_type`` takes a type object from :mod:`repro.types` (Python
    builtins ``int``/``float``/``bool``/``str`` also work).  The template's
    ``{{placeholders}}`` become the function's named parameters.  The first
    example set feeds few-shot prompting; ``test_examples`` validate
    generated code when ``.compile()`` is used.

    The returned :class:`AskItFunction` supports four execution modes:
    direct sync ``fn(...)``, direct async ``await fn.acall(...)``, batched
    ``fn.map(list_of_bindings, max_concurrency=...)``, and compiled
    ``fn.compile()`` (no LLM at call time).  ``config`` pins the function
    to a specific configuration; otherwise it follows the global one.
    """
    return default_session().define(
        return_type,
        template,
        param_types=param_types,
        examples=examples,
        test_examples=test_examples,
        name=name,
        config=config,
    )


def ask(
    return_type: Any,
    template: str,
    examples: Sequence[Any] | None = None,
    config: Config | None = None,
    **args: Any,
) -> Any:
    """Ask the LLM to perform a task once and return the typed answer.

    Template parameters are supplied as keyword arguments::

        ask(t.int, 'How many legs do {{n}} spiders have?', n=3)

    Runs on the process-default session; use
    :meth:`Session.ask <repro.core.session.Session.ask>` /
    :meth:`Session.ask_async <repro.core.session.Session.ask_async>` for
    isolated or asynchronous execution.
    """
    return default_session().ask(
        return_type, template, examples=examples, config=config, **args
    )
