"""The public AskIt API: ``ask`` and ``define``.

Usage mirrors the paper's Python implementation (Section III-F)::

    import repro.types as t
    from repro import ask, define

    sentiment = ask(
        t.union(t.literal('positive'), t.literal('negative')),
        'What is the sentiment of {{review}}?',
        review='The product is fantastic.',
    )

    get_books = define(
        t.list(t.dict({'title': t.str, 'author': t.str, 'year': t.int})),
        'List {{n}} classic books on {{subject}}.',
    )
    books = get_books(n=5, subject='computer science')

    factorial = define(t.int, 'Calculate the factorial of {{n}}').compile()
    factorial(n=10)   # runs generated code; no LLM in the loop
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.config import Config
from repro.core.function import AskItFunction
from repro.ioexample import Example
from repro.templates import PromptTemplate
from repro.types import lift


def _normalize_examples(examples: Sequence[Any] | None) -> list[Example]:
    normalized: list[Example] = []
    for example in examples or ():
        if isinstance(example, Example):
            normalized.append(example)
        elif isinstance(example, Mapping) and "input" in example and "output" in example:
            # Listing 1's literal syntax: {input: {...}, output: ...}.
            normalized.append(Example(example["input"], example["output"]))
        elif isinstance(example, tuple) and len(example) == 2:
            normalized.append(Example(example[0], example[1]))
        else:
            raise TypeError(
                "examples must be Example objects, {'input':..., 'output':...} "
                f"dicts, or (inputs, output) tuples; got {example!r}"
            )
    return normalized


def define(
    return_type: Any,
    template: str,
    param_types: Mapping[str, Any] | None = None,
    examples: Sequence[Any] | None = None,
    test_examples: Sequence[Any] | None = None,
    name: str | None = None,
    config: Config | None = None,
) -> AskItFunction:
    """Define a reusable task from a prompt template.

    ``return_type`` takes a type object from :mod:`repro.types` (Python
    builtins ``int``/``float``/``bool``/``str`` also work).  The template's
    ``{{placeholders}}`` become the function's named parameters.  The first
    example set feeds few-shot prompting; ``test_examples`` validate
    generated code when ``.compile()`` is used.
    """
    lifted_params = (
        {param: lift(type_) for param, type_ in param_types.items()}
        if param_types
        else None
    )
    return AskItFunction(
        lift(return_type),
        PromptTemplate(template),
        lifted_params,
        _normalize_examples(examples),
        _normalize_examples(test_examples),
        name=name,
        config=config,
    )


def ask(
    return_type: Any,
    template: str,
    examples: Sequence[Any] | None = None,
    config: Config | None = None,
    **args: Any,
) -> Any:
    """Ask the LLM to perform a task once and return the typed answer.

    Template parameters are supplied as keyword arguments::

        ask(t.int, 'How many legs do {{n}} spiders have?', n=3)
    """
    fn = define(return_type, template, examples=examples, config=config)
    return fn(**args)
