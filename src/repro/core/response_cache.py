"""Persistent, content-addressed cache of LLM responses with coalescing.

The paper caches generated *code* (Section III-D/III-F: a template
compiled once never costs a second code-generation round-trip), but
direct ``ask()`` responses were recomputed on every call.  This module
closes that gap, following the lead of LMQL and APPL, whose runtimes
show that transparent response caching/coalescing is the biggest
throughput lever in prompt programming:

* **Content-addressed persistence** -- every completion is keyed by a
  SHA-256 of the fully rendered messages plus the model name and the
  decoding parameters (:func:`response_key`).  Entries are one JSON file
  each, written atomically (temp file + ``os.replace``) exactly like
  :class:`~repro.core.cache.CodeCache`, so concurrent readers never see
  a truncated entry and cache directories can be shared between
  processes or committed next to the ``askit`` code cache.
* **TTL and LRU bounds** -- entries older than ``ttl_s`` are expired on
  read; when the entry count exceeds ``max_entries`` the least recently
  *used* entries are evicted (hits refresh recency).
* **In-flight request coalescing** -- when several threads (for
  example different :meth:`~repro.core.function.AskItFunction.map`
  lanes, or two maps on one session) request the *same* completion
  concurrently, only the first becomes the **leader** and calls the
  provider; the rest become **followers** and wait for the leader's
  result.  This generalizes the same-batch deduplication in
  :mod:`repro.core.batch` to any concurrent execution sharing one
  cache.

The cache is consulted by :class:`~repro.llm.client.ChatClient` when a
:class:`~repro.core.config.Config` enables it (``cache="read"`` or
``"read-write"``); see :attr:`repro.core.config.Config.response_cache`
and ``docs/caching.md`` for the full story, including how retry loops
interact with replayed responses.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Awaitable, Callable, ContextManager, Iterator, Sequence

from repro.core.cache import atomic_write_text
from repro.core.cache_store import SegmentStore
from repro.errors import ConfigError
from repro.llm.base import ChatMessage, CompletionResult, Usage
from repro.obs.trace import Span, annotate, current_span

#: Corrupt legacy entries are logged here at WARNING before being skipped.
logger = logging.getLogger("repro.response_cache")

#: Bumped whenever the key derivation or entry layout changes, so stale
#: on-disk formats can never be misread as current entries.
CACHE_FORMAT_VERSION = 1

#: The cache modes a :class:`~repro.core.config.Config` accepts.
CACHE_MODES = ("off", "read", "read-write")

#: The on-disk backends a :class:`~repro.core.config.Config` accepts:
#: ``"files"`` is the original one-JSON-file-per-entry layout,
#: ``"segments"`` the sharded log-structured
#: :class:`~repro.core.cache_store.SegmentStore` that scales to millions
#: of entries.  Either backend transparently *reads* (and migrates)
#: entries the other wrote.
CACHE_BACKENDS = ("files", "segments")


def response_key(
    model: str,
    messages: Sequence[ChatMessage],
    temperature: float,
    extra: dict | None = None,
) -> str:
    """Derive the content address of one completion request.

    The key covers everything that determines a reply: the model name,
    the decoding parameters (temperature today; ``extra`` for future
    parameters such as ``top_p``), and every rendered message with its
    role.  Two requests share a key exactly when a provider would be
    asked the same question -- so a template rendered with different
    arguments, a refined retry prompt, or the same prompt on another
    model all get distinct entries.
    """
    payload = {
        "v": CACHE_FORMAT_VERSION,
        "model": model,
        "temperature": round(float(temperature), 6),
        "messages": [[message.role, message.content] for message in messages],
    }
    if extra:
        payload["extra"] = extra
    canonical = json.dumps(payload, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CacheEntry:
    """One stored response, as surfaced by :meth:`ResponseCache.entries`."""

    __slots__ = ("key", "model", "temperature", "prompt_preview", "text", "usage", "provider_latency_s", "created_at")

    def __init__(
        self,
        key: str,
        model: str,
        temperature: float,
        prompt_preview: str,
        text: str,
        usage: Usage,
        provider_latency_s: float,
        created_at: float,
    ) -> None:
        self.key = key
        self.model = model
        self.temperature = temperature
        #: First 120 characters of the last user message, for inspection.
        self.prompt_preview = prompt_preview
        self.text = text
        self.usage = usage
        #: What the original provider call cost; replays charge zero.
        self.provider_latency_s = provider_latency_s
        self.created_at = created_at

    def replay(self) -> CompletionResult:
        """Reconstruct the completion as a zero-latency, ``cached`` result."""
        return CompletionResult(
            self.text,
            Usage(self.usage.prompt_tokens, self.usage.completion_tokens),
            0.0,
            self.model,
            cached=True,
        )

    def __repr__(self) -> str:
        return (
            f"CacheEntry({self.key[:12]}..., model={self.model!r}, "
            f"saved={self.provider_latency_s:.2f}s)"
        )


class _Flight:
    """The in-flight execution of one key: a leader, any number of followers."""

    __slots__ = ("_event", "result", "error", "leader_span")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.result: CompletionResult | None = None
        self.error: BaseException | None = None
        #: The leader's ambient span when the flight was opened (``None``
        #: with tracing off); followers link their trace to it.
        self.leader_span: Span | None = None

    def resolve(self, result: CompletionResult) -> None:
        self.result = result
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._event.set()

    def wait(self) -> CompletionResult:
        self._event.wait()
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


def _preview(messages: Sequence[ChatMessage]) -> str:
    # The task statement sits at the *end* of AskIt's rendered prompts
    # (after the format preamble), so the tail is the informative part.
    for message in reversed(messages):
        if message.role == "user":
            return message.content.strip()[-120:]
    return messages[-1].content.strip()[-120:] if messages else ""


class ResponseCache:
    """Disk-backed (or in-memory) response store with request coalescing.

    ``directory=None`` keeps entries purely in memory -- coalescing and
    hit accounting still work, nothing persists.  With a directory, every
    entry is one JSON file named after its key, written atomically.

    ``mode`` is ``"read"`` (consult but never persist new entries) or
    ``"read-write"`` (the default).  ``"off"`` is handled a level up:
    :attr:`Config.response_cache <repro.core.config.Config.response_cache>`
    returns ``None`` and the client skips the cache entirely.

    ``backend`` picks the persistence layout (``CACHE_BACKENDS``):
    ``"files"`` keeps one JSON file per entry (simple, greppable, fine
    up to a few thousand entries), ``"segments"`` stores entries in the
    sharded append-only log of
    :class:`~repro.core.cache_store.SegmentStore` (write-behind, scales
    to ~1M entries).  The segments backend still *reads* legacy
    ``*.json`` entries found in the directory and migrates each into the
    log on first hit, so pointing it at an existing files-backend
    directory upgrades it in place.
    """

    def __init__(
        self,
        directory: Path | str | None = None,
        *,
        mode: str = "read-write",
        ttl_s: float | None = None,
        max_entries: int = 4096,
        time_source: Callable[[], float] = time.time,
        backend: str = "files",
        store_options: dict | None = None,
    ) -> None:
        if mode not in ("read", "read-write"):
            raise ConfigError(
                f"ResponseCache mode must be 'read' or 'read-write', got {mode!r}"
            )
        if backend not in CACHE_BACKENDS:
            raise ConfigError(
                f"ResponseCache backend must be one of {CACHE_BACKENDS}, "
                f"got {backend!r}"
            )
        if ttl_s is not None and ttl_s <= 0:
            raise ConfigError("cache_ttl must be positive (or None for no expiry)")
        if max_entries < 1:
            raise ConfigError("max_entries must be >= 1")
        self.directory = Path(directory) if directory is not None else None
        self.mode = mode
        self.backend = backend
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self._now = time_source
        # In-memory store: always the fast path; also the only store when
        # no directory is configured.  Maps key -> (entry, last_used) in
        # recency order (OrderedDict moves are O(1); eviction pops the
        # front instead of scanning for the minimum timestamp).
        self._memory: OrderedDict[str, tuple[CacheEntry, float]] = OrderedDict()
        self._memory_lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        #: The log-structured store behind the ``segments`` backend
        #: (``None`` for ``files`` or a memory-only cache).  Exposed for
        #: benchmarks and tests; ``store_options`` feeds extra
        #: :class:`SegmentStore` knobs (shards, segment size, fault hook).
        self.segment_store: SegmentStore | None = None
        if self.directory is not None and backend == "segments":
            self.segment_store = SegmentStore(
                self.directory,
                max_entries=max_entries,
                **(store_options or {}),
            )

    # -- key derivation --------------------------------------------------------

    key = staticmethod(response_key)

    @property
    def writable(self) -> bool:
        """Whether new completions are persisted (``read-write`` mode)."""
        return self.mode == "read-write"

    # -- lookup ----------------------------------------------------------------

    def load(self, key: str) -> CompletionResult | None:
        """The replayed completion for ``key``, or ``None`` on a miss.

        Expired entries (older than ``ttl_s``) are dropped and reported
        as misses; fresh hits update the entry's recency for LRU.
        """
        entry = self._load_entry(key)
        if entry is None:
            return None
        return entry.replay()

    def _load_entry(self, key: str) -> CacheEntry | None:
        now = self._now()
        with self._memory_lock:
            held = self._memory.get(key)
            if held is not None:
                entry, _ = held
                if self._expired(entry, now):
                    del self._memory[key]
                else:
                    self._memory[key] = (entry, now)
                    self._memory.move_to_end(key)
        if held is not None:
            # Filesystem work happens outside the lock so concurrent
            # hits never serialize on disk-metadata syscalls.
            if self._expired(held[0], now):
                self._unlink(key)
                return None
            self._touch(key)
            return held[0]
        entry = self._read_disk(key)
        if entry is None:
            return None
        if self._expired(entry, now):
            self._unlink(key)
            return None
        with self._memory_lock:
            self._memory[key] = (entry, now)
            self._evict_memory_locked()
        self._touch(key)
        return entry

    def _expired(self, entry: CacheEntry, now: float) -> bool:
        return self.ttl_s is not None and now - entry.created_at > self.ttl_s

    # -- storage ---------------------------------------------------------------

    def store(
        self,
        key: str,
        result: CompletionResult,
        messages: Sequence[ChatMessage],
        temperature: float,
    ) -> CacheEntry:
        """Persist one completion under ``key`` (atomic on disk)."""
        entry = CacheEntry(
            key,
            result.model,
            temperature,
            _preview(messages),
            result.text,
            Usage(result.usage.prompt_tokens, result.usage.completion_tokens),
            result.latency_s,
            self._now(),
        )
        with self._memory_lock:
            self._memory[key] = (entry, entry.created_at)
            self._memory.move_to_end(key)
            self._evict_memory_locked()
        if self.directory is not None:
            self._write_disk(entry)
            self._evict_disk()
        return entry

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed anywhere."""
        with self._memory_lock:
            existed = self._memory.pop(key, None) is not None
        return self._unlink(key) or existed

    def clear(self) -> int:
        """Remove every entry; returns how many distinct keys were dropped."""
        with self._memory_lock:
            keys = set(self._memory)
            self._memory.clear()
        if self.segment_store is not None:
            keys.update(self.segment_store.keys())
            self.segment_store.clear()
        if self.directory is not None and self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    continue
                keys.add(path.stem)
        return len(keys)

    def entries(self) -> list[CacheEntry]:
        """Every live (unexpired) entry, most recently created first."""
        seen: dict[str, CacheEntry] = {}
        if self.segment_store is not None:
            for key, raw in self.segment_store.items():
                entry = self._entry_from_payload(key, raw)
                if entry is not None:
                    seen[key] = entry
        if self.directory is not None and self.directory.is_dir():
            for path in sorted(self.directory.glob("*.json")):
                entry = self._read_legacy(path.stem)
                if entry is not None:
                    seen.setdefault(entry.key, entry)
        with self._memory_lock:
            for key, (entry, _) in self._memory.items():
                seen.setdefault(key, entry)
        now = self._now()
        live = [entry for entry in seen.values() if not self._expired(entry, now)]
        return sorted(live, key=lambda entry: entry.created_at, reverse=True)

    def __len__(self) -> int:
        """The number of stored keys (without parsing entry bodies).

        With a TTL configured, falls back to :meth:`entries` so expired
        entries are not counted.
        """
        if self.ttl_s is not None:
            return len(self.entries())
        keys: set[str] = set()
        if self.segment_store is not None:
            keys.update(self.segment_store.keys())
        if self.directory is not None and self.directory.is_dir():
            keys.update(path.stem for path in self.directory.glob("*.json"))
        with self._memory_lock:
            keys.update(self._memory)
        return len(keys)

    def __iter__(self) -> Iterator[CacheEntry]:
        return iter(self.entries())

    # -- the coalescing fetch path --------------------------------------------

    def fetch(
        self,
        model: str,
        messages: Sequence[ChatMessage],
        temperature: float,
        call: Callable[[], CompletionResult],
        follower_wait: Callable[[], ContextManager[None]] | None = None,
    ) -> tuple[str, CompletionResult]:
        """Serve one request through the cache.

        Returns ``(status, result)`` where status is ``"hit"`` (replayed
        from the store), ``"coalesced"`` (shared a concurrent identical
        request's provider call), or ``"miss"`` (``call()`` ran and, in
        read-write mode, its result was persisted).  Only misses touch
        the provider; hits and coalesced replays charge zero latency.

        ``follower_wait`` (when given) wraps a coalesced follower's
        park on the leader's flight -- the scheduler's batch window
        passes its blocked-worker context here so grouped requests
        never wait on a thread that is itself waiting for them.
        """
        key = self.key(model, messages, temperature)
        cached = self.load(key)
        if cached is not None:
            return "hit", cached
        leader, flight = self._join(key)
        if not leader:
            if follower_wait is not None:
                with follower_wait():
                    flight.wait()
            else:
                flight.wait()
            assert flight.result is not None
            self._link_leader(flight)
            return "coalesced", self._replay_of(flight.result)
        # Leadership established: re-check the store.  A racing leader may
        # have stored the entry between our load() and _join(), and the
        # store-before-release ordering below makes this re-check
        # sufficient to guarantee one provider call per key.
        cached = self.load(key)
        if cached is not None:
            flight.resolve(cached)
            self._leave(key)
            return "hit", cached
        try:
            result = call()
        except BaseException as error:
            flight.fail(error)
            self._leave(key)
            raise
        self._finish(key, flight, result, messages, temperature)
        return "miss", result

    async def afetch(
        self,
        model: str,
        messages: Sequence[ChatMessage],
        temperature: float,
        acall: Callable[[], Awaitable[CompletionResult]],
        follower_wait: Callable[[], ContextManager[None]] | None = None,
    ) -> tuple[str, CompletionResult]:
        """Async :meth:`fetch`: disk I/O and waits run off the event loop."""
        key = self.key(model, messages, temperature)
        cached = await asyncio.to_thread(self.load, key)
        if cached is not None:
            return "hit", cached
        leader, flight = self._join(key)
        if not leader:

            def _wait() -> None:
                if follower_wait is not None:
                    with follower_wait():
                        flight.wait()
                else:
                    flight.wait()

            await asyncio.to_thread(_wait)
            assert flight.result is not None
            self._link_leader(flight)
            return "coalesced", self._replay_of(flight.result)
        cached = await asyncio.to_thread(self.load, key)
        if cached is not None:
            flight.resolve(cached)
            self._leave(key)
            return "hit", cached
        try:
            result = await acall()
        except BaseException as error:
            flight.fail(error)
            self._leave(key)
            raise
        # The persist + evict pass also runs on a worker thread so slow
        # storage never stalls unrelated coroutines.
        await asyncio.to_thread(self._finish, key, flight, result, messages, temperature)
        return "miss", result

    def _join(self, key: str) -> tuple[bool, _Flight]:
        """Join the in-flight table: ``(True, flight)`` makes us leader."""
        with self._flights_lock:
            flight = self._flights.get(key)
            if flight is not None:
                return False, flight
            flight = _Flight()
            # Remember where the provider call will actually happen, so
            # coalesced followers can point their trace at the leader's.
            flight.leader_span = current_span()
            self._flights[key] = flight
            return True, flight

    @staticmethod
    def _link_leader(flight: _Flight) -> None:
        """Annotate the follower's ambient span with the leader's identity."""
        lead = flight.leader_span
        if lead is not None:
            annotate(
                **{
                    "coalesced.leader_trace_id": lead.trace_id,
                    "coalesced.leader_span_id": lead.span_id,
                }
            )

    def _leave(self, key: str) -> None:
        with self._flights_lock:
            self._flights.pop(key, None)

    def _finish(
        self,
        key: str,
        flight: _Flight,
        result: CompletionResult,
        messages: Sequence[ChatMessage],
        temperature: float,
    ) -> None:
        # Store *before* releasing the flight so a request arriving after
        # the flight disappears is guaranteed to find the disk/memory
        # entry instead of re-calling the provider (read-write mode).
        if self.writable:
            self.store(key, result, messages, temperature)
        flight.resolve(result)
        self._leave(key)

    @staticmethod
    def _replay_of(result: CompletionResult) -> CompletionResult:
        """A follower's copy of the leader's result: zero latency, cached."""
        return CompletionResult(
            result.text,
            Usage(result.usage.prompt_tokens, result.usage.completion_tokens),
            0.0,
            result.model,
            cached=True,
        )

    # -- disk layer ------------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _read_disk(self, key: str) -> CacheEntry | None:
        if self.directory is None:
            return None
        if self.segment_store is not None:
            raw = self.segment_store.get(key)
            if raw is not None:
                return self._entry_from_payload(key, raw)
            return self._migrate_legacy(key)
        return self._read_legacy(key)

    def _read_legacy(self, key: str) -> CacheEntry | None:
        """Read one entry from the files-backend ``*.json`` layout.

        A missing file is an ordinary miss.  A *damaged* file -- unreadable,
        truncated mid-write, or valid JSON with mangled fields -- is
        skipped with a warning instead of raised, so one bad entry can
        never take down every lookup (or ``entries()`` walk, or segment
        migration) that touches the legacy directory.
        """
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            logger.warning("skipping unreadable legacy cache entry %s: %s", path, exc)
            return None
        try:
            raw = json.loads(text)
        except ValueError as exc:
            logger.warning("skipping corrupt legacy cache entry %s: %s", path, exc)
            return None
        entry = self._entry_from_payload(key, raw)
        if entry is None:
            logger.warning(
                "skipping malformed legacy cache entry %s "
                "(wrong version or bad fields)", path
            )
        return entry

    def _migrate_legacy(self, key: str) -> CacheEntry | None:
        """Serve a legacy ``*.json`` entry, folding it into the log.

        This is the in-place upgrade path: a segments-backend cache
        pointed at a files-backend directory answers from the JSON
        entries it finds and (in read-write mode) moves each into the
        segment log on first hit, retiring the per-entry file.
        """
        entry = self._read_legacy(key)
        if entry is None:
            return None
        if self.writable and self.segment_store is not None:
            self.segment_store.put(key, self._payload(entry))
            try:
                self._path(key).unlink()
            except OSError:
                pass
        return entry

    @staticmethod
    def _entry_from_payload(key: str, raw: object) -> CacheEntry | None:
        if not isinstance(raw, dict) or raw.get("version") != CACHE_FORMAT_VERSION:
            return None
        try:
            return CacheEntry(
                key,
                raw["model"],
                float(raw["temperature"]),
                raw.get("prompt_preview", ""),
                raw["text"],
                Usage(int(raw["prompt_tokens"]), int(raw["completion_tokens"])),
                float(raw["provider_latency_s"]),
                float(raw["created_at"]),
            )
        except (KeyError, TypeError, ValueError):
            return None

    @staticmethod
    def _payload(entry: CacheEntry) -> dict:
        """The JSON body stored for ``entry`` (same shape on both backends)."""
        return {
            "version": CACHE_FORMAT_VERSION,
            "model": entry.model,
            "temperature": entry.temperature,
            "prompt_preview": entry.prompt_preview,
            "text": entry.text,
            "prompt_tokens": entry.usage.prompt_tokens,
            "completion_tokens": entry.usage.completion_tokens,
            "provider_latency_s": entry.provider_latency_s,
            "created_at": entry.created_at,
        }

    def _write_disk(self, entry: CacheEntry) -> None:
        assert self.directory is not None
        if self.segment_store is not None:
            self.segment_store.put(entry.key, self._payload(entry))
            return
        atomic_write_text(
            self._path(entry.key), json.dumps(self._payload(entry), ensure_ascii=False)
        )

    def _touch(self, key: str) -> None:
        """Refresh a disk entry's recency.

        Files backend: mtime drives LRU eviction.  Segments backend: the
        store's own recency/frequency structures are bumped.
        """
        if self.directory is None:
            return
        if self.segment_store is not None:
            self.segment_store.touch(key)
            return
        try:
            os.utime(self._path(key))
        except OSError:
            pass

    def _unlink(self, key: str) -> bool:
        if self.directory is None:
            return False
        removed = False
        if self.segment_store is not None:
            removed = self.segment_store.delete(key)
        try:
            self._path(key).unlink()
            removed = True
        except OSError:
            pass
        return removed

    def flush(self) -> None:
        """Drain the segment store's write-behind queue (no-op otherwise)."""
        if self.segment_store is not None:
            self.segment_store.flush()

    def close(self) -> None:
        """Release backend resources (writer thread, file descriptors)."""
        if self.segment_store is not None:
            self.segment_store.close()

    def _evict_memory_locked(self) -> None:
        # OrderedDict front = least recently used (hits move_to_end).
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def _evict_disk(self) -> None:
        assert self.directory is not None
        if self.segment_store is not None:
            # The segment store enforces max_entries itself (frequency-
            # informed segmented LRU); no directory scans needed.
            return
        try:
            paths = list(self.directory.glob("*.json"))
        except OSError:
            return
        if len(paths) <= self.max_entries:
            return

        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0

        paths.sort(key=mtime)
        for path in paths[: len(paths) - self.max_entries]:
            try:
                path.unlink()
            except OSError:
                pass
            with self._memory_lock:
                self._memory.pop(path.stem, None)

    def __repr__(self) -> str:
        where = str(self.directory) if self.directory is not None else "memory"
        return (
            f"ResponseCache({where!r}, mode={self.mode!r}, "
            f"backend={self.backend!r}, ttl={self.ttl_s})"
        )
