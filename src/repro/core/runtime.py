"""The direct-answer runtime (Section III-E).

For each call the runtime synthesizes the Listing-2 prompt, sends it to
the model, parses the typed JSON answer, and -- when a response fails one
of the three validation criteria -- re-prompts with the offending response
plus a pointed instruction, up to the retry limit.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.config import Config, get_config
from repro.errors import MaxRetriesExceededError, ResponseFormatError
from repro.ioexample import Example
from repro.parsing import extract_answer
from repro.prompts import FewShotExample, build_direct_prompt, refine_direct_prompt
from repro.templates import PromptTemplate
from repro.types.base import Type


class DirectResult:
    """Outcome of one direct-answer execution."""

    __slots__ = ("value", "reason", "attempts", "latency_s", "prompt", "responses")

    def __init__(
        self,
        value: Any,
        reason: str,
        attempts: int,
        latency_s: float,
        prompt: str,
        responses: list[str],
    ) -> None:
        self.value = value
        self.reason = reason
        self.attempts = attempts
        self.latency_s = latency_s
        self.prompt = prompt
        self.responses = responses

    def __repr__(self) -> str:
        return f"DirectResult({self.value!r}, attempts={self.attempts})"


def _few_shot(examples: Sequence[Example]) -> list[FewShotExample]:
    return [FewShotExample(example.inputs, example.output) for example in examples]


def execute_direct(
    template: PromptTemplate,
    answer_type: Type,
    args: Mapping[str, Any],
    examples: Sequence[Example] = (),
    config: Config | None = None,
) -> DirectResult:
    """Run a directly answerable task through the LLM with retries.

    Raises :class:`MaxRetriesExceededError` when no attempt yields a
    response satisfying all three criteria of Section III-E.
    """
    config = config or get_config()
    prompt = build_direct_prompt(template, answer_type, args, _few_shot(examples))
    current = prompt
    total_latency = 0.0
    responses: list[str] = []
    last_error: ResponseFormatError | None = None

    for attempt in range(config.max_retries + 1):
        completion = config.client.chat_complete(config.model, current, config.temperature)
        total_latency += completion.latency_s
        responses.append(completion.text)
        try:
            parsed = extract_answer(completion.text, answer_type)
        except ResponseFormatError as error:
            last_error = error
            current = refine_direct_prompt(prompt, error)
            continue
        return DirectResult(
            parsed.value, parsed.reason, attempt + 1, total_latency, prompt, responses
        )

    assert last_error is not None
    raise MaxRetriesExceededError(
        f"no valid response after {config.max_retries + 1} attempts: {last_error}",
        attempts=config.max_retries + 1,
        last_response=last_error.response,
    )
