"""The direct-answer runtime (Section III-E).

For each call the runtime synthesizes the Listing-2 prompt, sends it to
the model, parses the typed JSON answer, and -- when a response fails one
of the three validation criteria -- re-prompts with the offending response
plus a pointed instruction, up to the retry limit.

One retry/parse core (:class:`_DirectRun`) drives both the synchronous
:func:`execute_direct` and asynchronous :func:`execute_direct_async`
entry points; the drivers differ only in how the completion is awaited.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.config import Config, get_config
from repro.errors import MaxRetriesExceededError, ResponseFormatError
from repro.ioexample import Example
from repro.llm.base import CompletionResult
from repro.parsing import extract_answer
from repro.prompts import FewShotExample, build_direct_prompt, refine_direct_prompt
from repro.templates import PromptTemplate
from repro.types.base import Type


class DirectResult:
    """Outcome of one direct-answer execution."""

    __slots__ = ("value", "reason", "attempts", "latency_s", "prompt", "responses")

    def __init__(
        self,
        value: Any,
        reason: str,
        attempts: int,
        latency_s: float,
        prompt: str,
        responses: list[str],
    ) -> None:
        self.value = value
        self.reason = reason
        self.attempts = attempts
        self.latency_s = latency_s
        self.prompt = prompt
        self.responses = responses

    def __repr__(self) -> str:
        return f"DirectResult({self.value!r}, attempts={self.attempts})"


def _few_shot(examples: Sequence[Example]) -> list[FewShotExample]:
    return [FewShotExample(example.inputs, example.output) for example in examples]


class _DirectRun:
    """State machine for one direct call: prompt, refinement, parsing.

    The driver loop owns only transport: it asks :attr:`current` for the
    next prompt, obtains a completion however it likes, and feeds it to
    :meth:`accept`, which either returns the finished
    :class:`DirectResult` or refines the prompt for the next attempt.
    """

    def __init__(
        self,
        template: PromptTemplate,
        answer_type: Type,
        args: Mapping[str, Any],
        examples: Sequence[Example],
        config: Config,
    ) -> None:
        self.config = config
        self.answer_type = answer_type
        self.prompt = build_direct_prompt(template, answer_type, args, _few_shot(examples))
        self.current = self.prompt
        self.total_latency = 0.0
        self.responses: list[str] = []
        self.last_error: ResponseFormatError | None = None

    def accept(self, completion: CompletionResult, attempt: int) -> DirectResult | None:
        self.total_latency += completion.latency_s
        self.responses.append(completion.text)
        try:
            parsed = extract_answer(completion.text, self.answer_type)
        except ResponseFormatError as error:
            self.last_error = error
            self.current = refine_direct_prompt(self.prompt, error)
            return None
        return DirectResult(
            parsed.value,
            parsed.reason,
            attempt + 1,
            self.total_latency,
            self.prompt,
            self.responses,
        )

    def exhausted(self) -> MaxRetriesExceededError:
        assert self.last_error is not None
        return MaxRetriesExceededError(
            f"no valid response after {self.config.max_retries + 1} attempts: "
            f"{self.last_error}",
            attempts=self.config.max_retries + 1,
            last_response=self.last_error.response,
        )


def execute_direct(
    template: PromptTemplate,
    answer_type: Type,
    args: Mapping[str, Any],
    examples: Sequence[Example] = (),
    config: Config | None = None,
    priority: int = 0,
) -> DirectResult:
    """Run a directly answerable task through the LLM with retries.

    ``priority`` orders contending requests at the scheduler's admission
    gate when the config enables one (lower goes first).

    Raises :class:`MaxRetriesExceededError` when no attempt yields a
    response satisfying all three criteria of Section III-E.
    """
    config = config or get_config()
    with config.span("askit.ask", model=config.model) as ask_span:
        with config.span("askit.bind"):
            run = _DirectRun(template, answer_type, args, examples, config)
        cache = config.response_cache
        scheduler = config.request_scheduler
        for attempt in range(config.max_retries + 1):
            completion = config.client.chat_complete(
                config.model,
                run.current,
                config.temperature,
                cache=cache,
                scheduler=scheduler,
                priority=priority,
            )
            with config.span("askit.parse", attempt=attempt) as parse_span:
                result = run.accept(completion, attempt)
                if parse_span is not None and result is None:
                    parse_span.set_attribute("refined", True)
            if result is not None:
                if ask_span is not None:
                    ask_span.set_attribute("attempts", result.attempts)
                return result
        raise run.exhausted()


async def execute_direct_async(
    template: PromptTemplate,
    answer_type: Type,
    args: Mapping[str, Any],
    examples: Sequence[Example] = (),
    config: Config | None = None,
    priority: int = 0,
) -> DirectResult:
    """Async counterpart of :func:`execute_direct`; same retry semantics."""
    config = config or get_config()
    with config.span("askit.ask", model=config.model) as ask_span:
        with config.span("askit.bind"):
            run = _DirectRun(template, answer_type, args, examples, config)
        cache = config.response_cache
        scheduler = config.request_scheduler
        for attempt in range(config.max_retries + 1):
            completion = await config.client.achat_complete(
                config.model,
                run.current,
                config.temperature,
                cache=cache,
                scheduler=scheduler,
                priority=priority,
            )
            with config.span("askit.parse", attempt=attempt) as parse_span:
                result = run.accept(completion, attempt)
                if parse_span is not None and result is None:
                    parse_span.set_attribute("refined", True)
            if result is not None:
                if ask_span is not None:
                    ask_span.set_attribute("attempts", result.attempts)
                return result
        raise run.exhausted()
