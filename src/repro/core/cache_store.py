"""A sharded, log-structured key-value store for the response cache.

The one-JSON-file-per-entry backend behind
:class:`~repro.core.response_cache.ResponseCache` is fine at 10^3
entries and pathological at 10^6: every entry costs an inode, eviction
rescans the directory's mtimes, and a cold open stats the world.  This
module replaces it with the design used by log-structured caches:

* **Shards** -- keys hash to one of N shard directories, bounding every
  per-shard structure and spreading directory pressure.
* **Append-only segments** -- each shard holds segment files to which
  CRC-framed records (``put`` / ``del``) are only ever appended.  A
  record is a single ``os.write``; torn records are detected by frame
  length + CRC on scan and dropped without poisoning what follows in
  other files.
* **In-memory index** -- key -> (segment, offset, length), rebuilt on
  open by scanning the segments in order.  Lookups are one ``pread``.
* **Write-behind** -- ``put``/``delete`` enqueue onto a bounded dirty
  queue drained by one writer thread; readers see pending values from
  the index immediately.  ``flush()`` drains the queue and re-raises
  any writer failure; ``put(..., sync=True)`` is enqueue + flush.
* **Compaction** -- when a shard's sealed segments exceed a dead-record
  ratio, live records are rewritten into a fresh segment (temp file +
  atomic rename) and the sources unlinked.  A crash at any point leaves
  a replayable log.
* **Frequency-informed segmented LRU** -- admission/eviction uses
  probation + protected queues (O(1) ``OrderedDict`` moves) and a
  count-min frequency sketch choosing among probation-head candidates,
  replacing the global mtime scan.  Evictions are index-local: the
  record stays on disk until compaction, and a reopen may resurrect it
  (harmless for a cache; the open-time trim re-enforces ``max_entries``).

Cross-process discipline (lock-free): every *writer* appends only to
segment files it created -- names embed the creating PID -- so two
processes sharing a directory never interleave writes in one file.
Readers pick up other writers' committed records via :meth:`refresh`,
which rescans grown or new segments.  Replay order across files is
``(sequence, pid)``; concurrent writes of the *same* key from two
processes may resolve either way, which is sound for a content-addressed
cache (the value is a pure function of the key).

Crash injection for tests: pass ``fault_hook``; it is invoked with a
fault-point name (``"append.partial"``, ``"compact.wrote-tmp"``,
``"compact.renamed"``) and may raise to simulate a crash mid-operation.
Only when a hook is installed is a record append split into two writes
(to make ``append.partial`` able to tear a frame); production appends
are always a single write.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
import zlib
from collections import OrderedDict
from typing import Any, Callable, Iterator

__all__ = ["SegmentStore", "SegmentCrashError", "FrequencySketch"]

#: Fixed-width record header: ``"%08x %08x\n" % (len(body), crc32(body))``.
_HEADER_LEN = 18

#: Protected segment's share of ``max_entries`` (the rest is probation).
_PROTECTED_SHARE = 0.8


class SegmentCrashError(RuntimeError):
    """Raised by a test fault hook to simulate a crash mid-write."""


class FrequencySketch:
    """A count-min sketch with periodic aging (TinyLFU-style).

    Estimates how often a key has been touched, in four rows of
    saturating byte counters.  Every ``sample_factor * width`` updates,
    all counters halve, so ancient popularity decays.  Estimates only
    rank eviction candidates -- collisions inflate counts, never lose
    data.
    """

    __slots__ = ("_rows", "_mask", "_adds", "_reset_every")

    _ROWS = 4
    _HALVE = bytes(value >> 1 for value in range(256))

    def __init__(self, width: int = 1 << 16, sample_factor: int = 8) -> None:
        if width & (width - 1):
            raise ValueError("sketch width must be a power of two")
        self._rows = [bytearray(width) for _ in range(self._ROWS)]
        self._mask = width - 1
        self._adds = 0
        self._reset_every = sample_factor * width

    def _indices(self, key: str) -> list[int]:
        digest = zlib.crc32(key.encode()) | (zlib.adler32(key.encode()) << 32)
        return [
            (digest >> (16 * row)) & self._mask for row in range(self._ROWS)
        ]

    def add(self, key: str) -> None:
        """Record one touch of ``key``."""
        for row, index in zip(self._rows, self._indices(key)):
            if row[index] < 255:
                row[index] += 1
        self._adds += 1
        if self._adds >= self._reset_every:
            self._adds = 0
            for position, row in enumerate(self._rows):
                self._rows[position] = bytearray(row.translate(self._HALVE))

    def estimate(self, key: str) -> int:
        """The (over-)estimated touch count of ``key``."""
        return min(
            row[index] for row, index in zip(self._rows, self._indices(key))
        )


class _Pending:
    """A value accepted but not yet appended to a segment."""

    __slots__ = ("value",)

    def __init__(self, value: dict[str, Any]) -> None:
        self.value = value


class _Slot:
    """Where a committed record lives: (segment name, offset, length).

    ``seq`` is the record's store-wide operation sequence number --
    recency that survives a reopen (segment scan order is shard-major,
    so without it the open-time capacity trim would evict whole shards
    instead of the oldest entries) and the tie-breaker when replay finds
    the same key in two files.
    """

    __slots__ = ("segment", "offset", "length", "seq")

    def __init__(self, segment: str, offset: int, length: int, seq: int) -> None:
        self.segment = segment
        self.offset = offset
        self.length = length
        self.seq = seq


class _Segment:
    """Metadata for one segment file of one shard."""

    __slots__ = (
        "name",
        "path",
        "size",
        "scanned",
        "observed",
        "records",
        "dead",
        "sealed",
    )

    def __init__(self, name: str, path: str) -> None:
        self.name = name
        self.path = path
        self.size = 0
        #: How far this process has replayed records (refresh resumes here).
        self.scanned = 0
        #: File size at the last scan.  A torn/in-flight tail keeps
        #: ``scanned`` short of ``observed``; it is rescanned only when
        #: the file grows again (the frame may have completed by then).
        self.observed = 0
        self.records = 0
        self.dead = 0
        #: Sealed segments take no more appends (from this process).
        self.sealed = True


class _Shard:
    """One shard: its directory, its segments, its slice of the index."""

    __slots__ = (
        "index",
        "directory",
        "segments",
        "next_seq",
        "active",
        "fds",
        "write_fd",
    )

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.index: dict[str, _Pending | _Slot] = {}
        self.segments: dict[str, _Segment] = {}
        self.next_seq = 1
        #: The writer thread's open segment (name), if any.
        self.active: str | None = None
        #: Read fd cache, one per segment file (O_RDONLY; pread only).
        self.fds: dict[str, int] = {}
        #: The writer thread's append fd for the active segment.
        self.write_fd: int | None = None


def _segment_sort_key(name: str) -> tuple[int, int]:
    """Replay order of segment files: ``(sequence, creating pid)``."""
    stem = name[len("seg-") : -len(".log")]
    seq_text, _, pid_text = stem.partition("-")
    return (int(seq_text), int(pid_text or 0))


class SegmentStore:
    """A sharded append-only log store mapping keys to JSON values.

    Parameters
    ----------
    directory:
        Root directory; ``shard-NN/`` subdirectories are created inside.
        Coexists with legacy ``*.json`` entries (which this class never
        touches -- migration happens in ``ResponseCache``).
    shards:
        Number of shards (keys spread by hash of the key's hex prefix).
    max_entries:
        Index capacity; beyond it, the frequency-informed segmented LRU
        evicts.  ``None`` = unbounded.
    segment_max_bytes:
        Active segments roll over (seal) past this size.
    compact_dead_ratio:
        Compact a shard when its sealed segments' dead-record share
        exceeds this ratio (and ``compact_min_records`` is met).
    compact_min_records:
        Minimum sealed records before compaction is considered.
    dirty_queue_max:
        Bound of the write-behind queue; producers block (backpressure)
        when the writer falls this far behind.
    fault_hook:
        Test-only crash injection; see the module docstring.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        shards: int = 8,
        max_entries: int | None = None,
        segment_max_bytes: int = 8 << 20,
        compact_dead_ratio: float = 0.5,
        compact_min_records: int = 64,
        dirty_queue_max: int = 2048,
        fault_hook: Callable[[str], None] | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        if not 0.0 < compact_dead_ratio <= 1.0:
            raise ValueError("compact_dead_ratio must be in (0, 1]")
        self.directory = os.fspath(directory)
        self.shard_count = shards
        self.max_entries = max_entries
        self.segment_max_bytes = segment_max_bytes
        self.compact_dead_ratio = compact_dead_ratio
        self.compact_min_records = compact_min_records
        self.fault_hook = fault_hook
        self._lock = threading.RLock()
        self._queue: queue.Queue = queue.Queue(maxsize=dirty_queue_max)
        self._writer: threading.Thread | None = None
        self._writer_error: BaseException | None = None
        self._closed = False
        self._count = 0
        #: Store-wide operation sequence stamped into every record.
        self._op_seq = 0
        self._probation: OrderedDict[str, None] = OrderedDict()
        self._protected: OrderedDict[str, None] = OrderedDict()
        self._sketch = FrequencySketch()
        self.stats: dict[str, int | float] = {
            "evictions": 0,
            "compactions": 0,
            "torn_records": 0,
            "rebuild_s": 0.0,
        }
        self._shards: list[_Shard] = []
        for position in range(shards):
            shard_dir = os.path.join(self.directory, f"shard-{position:02d}")
            os.makedirs(shard_dir, exist_ok=True)
            self._shards.append(_Shard(shard_dir))
        self._rebuild()

    # -- public surface ------------------------------------------------------

    def put(self, key: str, value: dict[str, Any], *, sync: bool = False) -> None:
        """Store ``value`` under ``key`` (readable immediately).

        The record is appended by the writer thread; ``sync=True`` waits
        for it (and re-raises any writer failure).
        """
        self._check_open()
        shard = self._shard_for(key)
        pending = _Pending(dict(value))
        with self._lock:
            old = shard.index.get(key)
            shard.index[key] = pending
            if isinstance(old, _Slot):
                self._mark_dead(shard, old)
            if old is None:
                self._count += 1
                self._admit_locked(key)
            else:
                self._touch_locked(key)
            self._evict_locked(protect=key)
        self._queue.put(("put", shard, key, pending))
        if sync:
            self.flush()

    def get(self, key: str, *, refresh: bool = True) -> dict[str, Any] | None:
        """The value stored under ``key``, or ``None``.

        On an index miss (or a read that fails because another process
        compacted the segment away), the key's shard is rescanned once
        for records committed by other processes before giving up.
        """
        self._check_open()
        shard = self._shard_for(key)
        with self._lock:
            entry = shard.index.get(key)
            if isinstance(entry, _Pending):
                self._touch_locked(key)
                return dict(entry.value)
            if isinstance(entry, _Slot):
                value = self._read_slot(shard, entry, key)
                if value is not None:
                    self._touch_locked(key)
                    return value
                shard.index.pop(key, None)
                self._forget_locked(key)
                self._count -= 1
            if not refresh:
                return None
            self._refresh_shard_locked(shard)
            entry = shard.index.get(key)
            if isinstance(entry, _Pending):
                return dict(entry.value)
            if isinstance(entry, _Slot):
                value = self._read_slot(shard, entry, key)
                if value is not None:
                    self._touch_locked(key)
                    return value
            return None

    def touch(self, key: str) -> None:
        """Bump ``key``'s recency/frequency without reading it."""
        with self._lock:
            shard = self._shard_for(key)
            if key in shard.index:
                self._touch_locked(key)

    def delete(self, key: str, *, sync: bool = False) -> bool:
        """Remove ``key``; returns whether it was present."""
        self._check_open()
        shard = self._shard_for(key)
        with self._lock:
            old = shard.index.pop(key, None)
            if old is not None:
                if isinstance(old, _Slot):
                    self._mark_dead(shard, old)
                self._forget_locked(key)
                self._count -= 1
        self._queue.put(("del", shard, key))
        if sync:
            self.flush()
        return old is not None

    def clear(self) -> int:
        """Drop every entry and delete every segment file."""
        self._check_open()
        with self._lock:
            removed = self._count
            for shard in self._shards:
                shard.index.clear()
            self._probation.clear()
            self._protected.clear()
            self._count = 0
        self._queue.put(("clear",))
        self.flush()
        return removed

    def compact(self, shard_index: int | None = None) -> None:
        """Force compaction (all shards, or one); waits for completion."""
        self._check_open()
        targets = (
            self._shards
            if shard_index is None
            else [self._shards[shard_index]]
        )
        for shard in targets:
            self._queue.put(("compact", shard, True))
        self.flush()

    def refresh(self) -> None:
        """Rescan every shard for records committed by other processes."""
        with self._lock:
            for shard in self._shards:
                self._refresh_shard_locked(shard)

    def flush(self) -> None:
        """Drain the write-behind queue; re-raise any writer failure."""
        self._ensure_writer()
        self._queue.join()
        if self._writer_error is not None:
            raise self._writer_error

    def keys(self) -> list[str]:
        """Every readable key (committed and pending)."""
        with self._lock:
            found: list[str] = []
            for shard in self._shards:
                found.extend(shard.index)
            return found

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._shard_for(key).index

    def items(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Iterate ``(key, value)`` pairs (values read lazily)."""
        for key in self.keys():
            value = self.get(key, refresh=False)
            if value is not None:
                yield key, value

    def close(self) -> None:
        """Stop the writer and close every file descriptor.  Never raises."""
        if self._closed:
            return
        self._closed = True
        writer = self._writer
        if writer is not None and writer.is_alive():
            self._queue.put(None)
            writer.join(timeout=10.0)
        with self._lock:
            for shard in self._shards:
                for fd in shard.fds.values():
                    try:
                        os.close(fd)
                    except OSError:  # pragma: no cover - already closed
                        pass
                shard.fds.clear()
                shard.active = None
                self._close_write_fd(shard)

    def __enter__(self) -> "SegmentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def segment_files(self) -> list[str]:
        """Every segment file path (tests use this to poke at the log)."""
        found: list[str] = []
        for shard in self._shards:
            for segment in shard.segments.values():
                found.append(segment.path)
        return sorted(found)

    # -- sharding and recency ------------------------------------------------

    def _shard_for(self, key: str) -> _Shard:
        return self._shards[zlib.crc32(key.encode()) % self.shard_count]

    def _admit_locked(self, key: str) -> None:
        self._sketch.add(key)
        self._probation[key] = None

    def _touch_locked(self, key: str) -> None:
        self._sketch.add(key)
        if key in self._protected:
            self._protected.move_to_end(key)
            return
        if key in self._probation:
            del self._probation[key]
            self._protected[key] = None
            limit = self._protected_limit()
            while len(self._protected) > limit:
                demoted, _ = self._protected.popitem(last=False)
                self._probation[demoted] = None

    def _forget_locked(self, key: str) -> None:
        self._probation.pop(key, None)
        self._protected.pop(key, None)

    def _protected_limit(self) -> int:
        if self.max_entries is None:
            return 1 << 30
        return max(1, int(self.max_entries * _PROTECTED_SHARE))

    def _evict_locked(self, protect: str | None = None) -> None:
        """Evict down to ``max_entries`` (never evicting ``protect``)."""
        if self.max_entries is None:
            return
        while self._count > self.max_entries:
            victim = self._pick_victim_locked(protect)
            if victim is None:  # pragma: no cover - recency out of sync
                break
            shard = self._shard_for(victim)
            old = shard.index.pop(victim, None)
            if isinstance(old, _Slot):
                self._mark_dead(shard, old)
            self._forget_locked(victim)
            self._count -= 1
            self.stats["evictions"] += 1

    def _pick_victim_locked(self, protect: str | None) -> str | None:
        """The coldest probation candidate (lowest sketch estimate wins).

        Looks at up to three keys from the probation front and evicts
        the least-frequent -- the "TinyLFU informs a segmented LRU"
        move.  Falls back to the protected front when probation is dry;
        the entry being admitted (``protect``) is never a candidate, so
        a fresh ``put`` always round-trips.
        """
        source = self._probation or self._protected
        if not source:
            return None
        candidates: list[str] = []
        for key in source:
            if key == protect:
                continue
            candidates.append(key)
            if len(candidates) == 3:
                break
        if not candidates:
            return None
        return min(candidates, key=self._sketch.estimate)

    # -- record framing ------------------------------------------------------

    @staticmethod
    def _frame(body: bytes) -> bytes:
        header = b"%08x %08x\n" % (len(body), zlib.crc32(body))
        return header + body + b"\n"

    @staticmethod
    def _put_body(key: str, value: dict[str, Any], seq: int) -> bytes:
        return json.dumps(
            {"op": "put", "key": key, "s": seq, "value": value},
            separators=(",", ":"),
        ).encode()

    @staticmethod
    def _del_body(key: str, seq: int) -> bytes:
        return json.dumps(
            {"op": "del", "key": key, "s": seq}, separators=(",", ":")
        ).encode()

    def _read_slot(
        self, shard: _Shard, slot: _Slot, key: str
    ) -> dict[str, Any] | None:
        segment = shard.segments.get(slot.segment)
        if segment is None:
            return None
        fd = shard.fds.get(slot.segment)
        if fd is None:
            try:
                fd = os.open(segment.path, os.O_RDONLY)
            except OSError:
                return None
            shard.fds[slot.segment] = fd
        try:
            blob = os.pread(fd, slot.length, slot.offset)
        except OSError:  # pragma: no cover - segment vanished mid-read
            return None
        record = self._parse_record(blob)
        if record is None or record.get("op") != "put" or record.get("key") != key:
            return None
        return record.get("value")

    @staticmethod
    def _parse_record(blob: bytes) -> dict[str, Any] | None:
        if len(blob) < _HEADER_LEN:
            return None
        header = blob[:_HEADER_LEN]
        try:
            length = int(header[:8], 16)
            crc = int(header[9:17], 16)
        except ValueError:
            return None
        body = blob[_HEADER_LEN : _HEADER_LEN + length]
        if len(body) < length or zlib.crc32(body) != crc:
            return None
        try:
            return json.loads(body)
        except ValueError:  # pragma: no cover - CRC already vouched
            return None

    # -- the writer thread ---------------------------------------------------

    def _ensure_writer(self) -> None:
        with self._lock:
            if self._writer is not None and self._writer.is_alive():
                return
            if self._writer is not None and self._writer_error is not None:
                # The writer died reporting a failure; keep it dead so
                # flush() keeps raising instead of silently restarting.
                return
            writer = threading.Thread(
                target=self._writer_loop, name="segment-store-writer", daemon=True
            )
            self._writer = writer
            writer.start()

    def _writer_loop(self) -> None:
        while True:
            op = self._queue.get()
            if op is None:
                self._queue.task_done()
                return
            try:
                if self._writer_error is None:
                    self._apply(op)
            except BaseException as failure:  # noqa: BLE001 - surfaced on flush
                self._writer_error = failure
            finally:
                self._queue.task_done()

    def _apply(self, op: tuple) -> None:
        kind = op[0]
        if kind == "put":
            _, shard, key, pending = op
            with self._lock:
                self._op_seq += 1
                seq = self._op_seq
            self._append_record(
                shard,
                key,
                self._put_body(key, pending.value, seq),
                seq,
                pending=pending,
            )
        elif kind == "del":
            _, shard, key = op
            with self._lock:
                self._op_seq += 1
                seq = self._op_seq
            self._append_record(
                shard, key, self._del_body(key, seq), seq, deletion=True
            )
        elif kind == "clear":
            self._apply_clear()
        elif kind == "compact":
            _, shard, force = op
            self._compact_shard(shard, force=force)

    def _fault(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    def _append_record(
        self,
        shard: _Shard,
        key: str,
        body: bytes,
        seq: int,
        *,
        pending: _Pending | None = None,
        deletion: bool = False,
    ) -> None:
        record = self._frame(body)
        with self._lock:
            segment = self._active_segment_locked(shard)
            fd = shard.write_fd
            offset = segment.size
        if self.fault_hook is None:
            os.write(fd, record)
        else:
            # Two-phase write so "append.partial" can tear a frame.
            half = len(record) // 2
            os.write(fd, record[:half])
            self._fault("append.partial")
            os.write(fd, record[half:])
        with self._lock:
            segment.size = offset + len(record)
            segment.scanned = segment.size
            segment.observed = segment.size
            segment.records += 1
            if deletion:
                segment.dead += 1
            else:
                current = shard.index.get(key)
                if current is pending:
                    # Identity check: a *newer* pending value for the same
                    # key must not be clobbered by this older record.
                    shard.index[key] = _Slot(segment.name, offset, len(record), seq)
                else:
                    # Superseded (or evicted) while queued: dead on arrival.
                    segment.dead += 1
            roll = segment.size >= self.segment_max_bytes
            if roll:
                segment.sealed = True
                shard.active = None
                self._close_write_fd(shard)
        if roll or deletion:
            self._compact_shard(shard, force=False)

    def _active_segment_locked(self, shard: _Shard) -> _Segment:
        if shard.active is not None:
            return shard.segments[shard.active]
        while True:
            name = f"seg-{shard.next_seq:08d}-{os.getpid()}.log"
            shard.next_seq += 1
            path = os.path.join(shard.directory, name)
            try:
                # O_EXCL: the pid suffix de-conflicts processes, but two
                # stores in one process (or a recycled pid) could collide
                # on a name -- and appending to a foreign segment would
                # wreck both writers' offset bookkeeping.
                fd = os.open(
                    path,
                    os.O_WRONLY | os.O_CREAT | os.O_EXCL | os.O_APPEND,
                    0o644,
                )
            except FileExistsError:
                continue
            break
        segment = _Segment(name, path)
        segment.sealed = False
        shard.write_fd = fd
        shard.segments[name] = segment
        shard.active = name
        return segment

    @staticmethod
    def _close_write_fd(shard: _Shard) -> None:
        if shard.write_fd is not None:
            try:
                os.close(shard.write_fd)
            except OSError:  # pragma: no cover - already closed
                pass
            shard.write_fd = None

    def _apply_clear(self) -> None:
        with self._lock:
            for shard in self._shards:
                for fd in shard.fds.values():
                    try:
                        os.close(fd)
                    except OSError:  # pragma: no cover
                        pass
                shard.fds.clear()
                shard.active = None
                self._close_write_fd(shard)
                for segment in shard.segments.values():
                    try:
                        os.unlink(segment.path)
                    except OSError:  # pragma: no cover - already gone
                        pass
                shard.segments.clear()

    # -- compaction ----------------------------------------------------------

    def _compact_shard(self, shard: _Shard, *, force: bool) -> None:
        """Rewrite a shard's sealed segments if dead records dominate."""
        own_suffix = f"-{os.getpid()}.log"
        with self._lock:
            sealed = [
                segment
                for segment in shard.segments.values()
                if segment.sealed
                and segment.records > 0
                # Unforced compaction only rewrites segments this process
                # created: a foreign segment may still be growing under
                # another live writer, and unlinking it would drop that
                # writer's subsequent records.  compact() (forced) takes
                # everything -- callers assert a single-writer phase.
                and (force or segment.name.endswith(own_suffix))
            ]
            records = sum(segment.records for segment in sealed)
            dead = sum(segment.dead for segment in sealed)
            if not sealed:
                return
            if not force:
                if records < self.compact_min_records:
                    return
                if dead / records <= self.compact_dead_ratio:
                    return
            sources = {segment.name for segment in sealed}
            live: list[tuple[str, _Slot]] = []
            for key, entry in shard.index.items():
                if isinstance(entry, _Slot) and entry.segment in sources:
                    live.append((key, entry))
            payload = bytearray()
            moved: list[tuple[str, int, int, int]] = []
            for key, slot in live:
                blob = self._read_record_bytes(shard, slot)
                if blob is None:  # pragma: no cover - source vanished
                    continue
                moved.append((key, len(payload), len(blob), slot.seq))
                payload += blob
            name = f"seg-{shard.next_seq:08d}-{os.getpid()}.log"
            shard.next_seq += 1
            path = os.path.join(shard.directory, name)
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(payload)
        self._fault("compact.wrote-tmp")
        os.replace(tmp_path, path)
        self._fault("compact.renamed")
        with self._lock:
            segment = _Segment(name, path)
            segment.size = len(payload)
            segment.scanned = segment.size
            segment.observed = segment.size
            segment.records = len(moved)
            shard.segments[name] = segment
            for key, offset, length, seq in moved:
                current = shard.index.get(key)
                if (
                    isinstance(current, _Slot)
                    and current.segment in sources
                ):
                    shard.index[key] = _Slot(name, offset, length, seq)
                else:
                    segment.dead += 1
            for source in sources:
                fd = shard.fds.pop(source, None)
                if fd is not None:
                    try:
                        os.close(fd)
                    except OSError:  # pragma: no cover
                        pass
                old = shard.segments.pop(source, None)
                if old is not None:
                    try:
                        os.unlink(old.path)
                    except OSError:  # pragma: no cover - already gone
                        pass
            self.stats["compactions"] += 1

    def _read_record_bytes(self, shard: _Shard, slot: _Slot) -> bytes | None:
        segment = shard.segments.get(slot.segment)
        if segment is None:
            return None
        fd = shard.fds.get(slot.segment)
        if fd is None:
            try:
                fd = os.open(segment.path, os.O_RDONLY)
            except OSError:
                return None
            shard.fds[slot.segment] = fd
        try:
            return os.pread(fd, slot.length, slot.offset)
        except OSError:  # pragma: no cover
            return None

    # -- scanning / rebuild --------------------------------------------------

    def _mark_dead(self, shard: _Shard, slot: _Slot) -> None:
        segment = shard.segments.get(slot.segment)
        if segment is not None:
            segment.dead += 1

    def _rebuild(self) -> None:
        """Scan every shard's segments and rebuild the index."""
        started = time.perf_counter()
        with self._lock:
            for shard in self._shards:
                self._refresh_shard_locked(shard)
            # Segment scan order is shard-major; reorder recency by each
            # record's operation sequence so the capacity trim below (and
            # future evictions) target genuinely old entries.
            by_age: list[tuple[int, str]] = []
            for shard in self._shards:
                for key, entry in shard.index.items():
                    if isinstance(entry, _Slot):
                        by_age.append((entry.seq, key))
            by_age.sort()
            self._probation.clear()
            self._protected.clear()
            for _seq, key in by_age:
                self._probation[key] = None
            # Re-enforce the capacity bound: evictions are index-local,
            # so a reopen can resurrect more entries than fit.
            self._evict_locked()
        self.stats["rebuild_s"] = time.perf_counter() - started

    def _refresh_shard_locked(self, shard: _Shard) -> None:
        try:
            names = [
                name
                for name in os.listdir(shard.directory)
                if name.startswith("seg-") and name.endswith(".log")
            ]
        except OSError:  # pragma: no cover - directory vanished
            return
        present = set(names)
        for name in list(shard.segments):
            if name not in present and name != shard.active:
                # Another process compacted it away; drop its slots.
                shard.fds.pop(name, None)
                shard.segments.pop(name, None)
                stale = [
                    key
                    for key, entry in shard.index.items()
                    if isinstance(entry, _Slot) and entry.segment == name
                ]
                for key in stale:
                    shard.index.pop(key, None)
                    self._forget_locked(key)
                    self._count -= 1
        for name in sorted(names, key=_segment_sort_key):
            segment = shard.segments.get(name)
            if segment is None:
                segment = _Segment(name, os.path.join(shard.directory, name))
                shard.segments[name] = segment
            try:
                size = os.path.getsize(segment.path)
            except OSError:  # pragma: no cover - raced deletion
                continue
            if size > segment.observed:
                self._scan_segment_locked(shard, segment, size)
            seq = _segment_sort_key(name)[0]
            if seq >= shard.next_seq:
                shard.next_seq = seq + 1

    def _scan_segment_locked(
        self, shard: _Shard, segment: _Segment, size: int
    ) -> None:
        """Replay ``segment``'s records from its scan offset."""
        try:
            with open(segment.path, "rb") as handle:
                handle.seek(segment.scanned)
                data = handle.read(size - segment.scanned)
        except OSError:  # pragma: no cover - raced deletion
            return
        position = 0
        base = segment.scanned
        while position < len(data):
            remaining = len(data) - position
            if remaining < _HEADER_LEN:
                self.stats["torn_records"] += 1
                break
            header = data[position : position + _HEADER_LEN]
            try:
                length = int(header[:8], 16)
                crc = int(header[9:17], 16)
            except ValueError:
                self.stats["torn_records"] += 1
                break
            total = _HEADER_LEN + length + 1
            body = data[position + _HEADER_LEN : position + _HEADER_LEN + length]
            if len(body) < length or zlib.crc32(body) != crc:
                self.stats["torn_records"] += 1
                break
            try:
                record = json.loads(body)
            except ValueError:
                self.stats["torn_records"] += 1
                break
            key = record.get("key")
            if isinstance(key, str):
                seq = record.get("s", 0)
                if not isinstance(seq, int):
                    seq = 0
                if seq > self._op_seq:
                    self._op_seq = seq
                self._replay_locked(
                    shard,
                    segment,
                    key,
                    record,
                    _Slot(segment.name, base + position, total, seq),
                )
            segment.records += 1
            position += total
        segment.scanned = base + position
        segment.observed = size
        segment.size = max(segment.size, segment.scanned)

    def _replay_locked(
        self,
        shard: _Shard,
        segment: _Segment,
        key: str,
        record: dict[str, Any],
        slot: _Slot,
    ) -> None:
        old = shard.index.get(key)
        if record.get("op") == "del":
            segment.dead += 1
            if isinstance(old, _Slot) and old.seq <= slot.seq:
                self._mark_dead(shard, old)
                shard.index.pop(key, None)
                self._forget_locked(key)
                self._count -= 1
            # A pending local put (or a newer slot) outranks this deletion.
            return
        if isinstance(old, _Pending):
            # Local pending write wins over anything scanned.
            segment.dead += 1
            return
        if isinstance(old, _Slot):
            if old.seq > slot.seq:
                # The indexed record is newer than the scanned one.
                segment.dead += 1
                return
            self._mark_dead(shard, old)
            shard.index[key] = slot
            self._touch_locked(key)
            return
        shard.index[key] = slot
        self._count += 1
        self._admit_locked(key)

    # -- misc ----------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("SegmentStore is closed")
        self._ensure_writer()

    def store_stats(self) -> dict[str, Any]:
        """Operational counters plus segment totals (JSON-able)."""
        with self._lock:
            segments = sum(len(shard.segments) for shard in self._shards)
            records = sum(
                segment.records
                for shard in self._shards
                for segment in shard.segments.values()
            )
            dead = sum(
                segment.dead
                for shard in self._shards
                for segment in shard.segments.values()
            )
            return {
                "entries": self._count,
                "shards": self.shard_count,
                "segments": segments,
                "records": records,
                "dead_records": dead,
                **self.stats,
            }

    def __repr__(self) -> str:
        return (
            f"SegmentStore({self.directory!r}, shards={self.shard_count}, "
            f"entries={self._count})"
        )
