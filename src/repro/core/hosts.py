"""Execution hosts for generated code.

A host loads generated source and exposes the generated function as a
Python callable taking named arguments.  Two hosts exist, one per target
language: Python code runs in an isolated namespace via ``exec``;
TypeScript code runs on the ``repro.tslang`` interpreter (with its step
budget guarding against generated infinite loops).
"""

from __future__ import annotations

import builtins
from typing import Any, Mapping

from repro.errors import CodeValidationError, TsSyntaxError


class FunctionHost:
    """A loaded, callable generated function."""

    language: str = "?"

    def __init__(self, source: str, name: str) -> None:
        self.source = source
        self.name = name

    def call(self, args: Mapping[str, Any]) -> Any:
        """Invoke the generated function with named arguments."""
        raise NotImplementedError


class PythonHost(FunctionHost):
    """Runs generated Python in a fresh module namespace."""

    language = "python"

    def __init__(self, source: str, name: str) -> None:
        super().__init__(source, name)
        namespace: dict[str, Any] = {"__builtins__": builtins}
        try:
            code = compile(source, f"<askit:{name}>", "exec")
        except SyntaxError as error:
            raise CodeValidationError(f"generated Python does not parse: {error}") from error
        exec(code, namespace)  # noqa: S102 - executing generated code is the feature
        if name not in namespace or not callable(namespace[name]):
            raise CodeValidationError(
                f"generated Python does not define a function named {name!r}"
            )
        self._fn = namespace[name]

    def call(self, args: Mapping[str, Any]) -> Any:
        return self._fn(**args)


class TypeScriptHost(FunctionHost):
    """Runs generated TypeScript on the tslang interpreter."""

    language = "typescript"

    def __init__(self, source: str, name: str, step_budget: int = 2_000_000) -> None:
        super().__init__(source, name)
        from repro.tslang import load_module

        try:
            self._module = load_module(source, step_budget)
        except TsSyntaxError as error:
            raise CodeValidationError(f"generated TypeScript does not parse: {error}") from error
        if name not in self._module.function_names():
            raise CodeValidationError(
                f"generated TypeScript does not define a function named {name!r}"
            )

    def call(self, args: Mapping[str, Any]) -> Any:
        self._module.reset_steps()
        return self._module.call(self.name, args)


def load_host(language: str, source: str, name: str) -> FunctionHost:
    """Instantiate the host for ``language`` (raises on syntax errors)."""
    if language == "python":
        return PythonHost(source, name)
    if language == "typescript":
        return TypeScriptHost(source, name)
    raise ValueError(f"no execution host for language {language!r}")
