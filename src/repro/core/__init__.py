"""AskIt's core DSL: the unified programming interface."""

from repro.core.api import ask, define
from repro.core.batch import MapOutcome, MapResult, run_batch
from repro.core.cache import CodeCache, strip_provenance_header
from repro.core.cache_store import FrequencySketch, SegmentStore
from repro.core.codegen import (
    GeneratedFunction,
    generate_function,
    generate_function_async,
    validate_candidate,
)
from repro.core.config import (
    DEFAULT_MAX_RETRIES,
    Config,
    config_override,
    configure,
    get_config,
)
from repro.core.function import AskItFunction
from repro.core.hosts import FunctionHost, PythonHost, TypeScriptHost, load_host
from repro.core.naming import cache_stem, camel_case_name, function_name, snake_case_name
from repro.core.response_cache import (
    CACHE_BACKENDS,
    CACHE_MODES,
    CacheEntry,
    ResponseCache,
    response_key,
)
from repro.core.runtime import DirectResult, execute_direct, execute_direct_async
from repro.core.safety import SafetyFinding, SafetyPolicy, scan_python, scan_typescript
from repro.core.scheduler import (
    SCHEDULER_MODES,
    AdaptiveConcurrency,
    BatchRequest,
    DeficitRoundRobin,
    PacingBucket,
    RequestScheduler,
    SchedulerPolicy,
    TenantBudget,
    WeightedFairTurnstile,
    admission_tenant,
    current_admission_tenant,
)
from repro.core.session import Session, default_session
from repro.ioexample import Example, outputs_equal
from repro.obs.telemetry import TELEMETRY_MODES, Telemetry, TelemetryPolicy

__all__ = [
    "ask",
    "define",
    "Session",
    "default_session",
    "MapResult",
    "MapOutcome",
    "run_batch",
    "Example",
    "outputs_equal",
    "AskItFunction",
    "GeneratedFunction",
    "generate_function",
    "generate_function_async",
    "validate_candidate",
    "execute_direct",
    "execute_direct_async",
    "DirectResult",
    "Config",
    "configure",
    "get_config",
    "config_override",
    "DEFAULT_MAX_RETRIES",
    "CodeCache",
    "strip_provenance_header",
    "ResponseCache",
    "CacheEntry",
    "response_key",
    "CACHE_MODES",
    "CACHE_BACKENDS",
    "SegmentStore",
    "FrequencySketch",
    "RequestScheduler",
    "SchedulerPolicy",
    "BatchRequest",
    "PacingBucket",
    "AdaptiveConcurrency",
    "SCHEDULER_MODES",
    "DeficitRoundRobin",
    "WeightedFairTurnstile",
    "TenantBudget",
    "admission_tenant",
    "current_admission_tenant",
    "Telemetry",
    "TelemetryPolicy",
    "TELEMETRY_MODES",
    "FunctionHost",
    "PythonHost",
    "TypeScriptHost",
    "load_host",
    "function_name",
    "snake_case_name",
    "camel_case_name",
    "cache_stem",
    "SafetyPolicy",
    "SafetyFinding",
    "scan_python",
    "scan_typescript",
]
