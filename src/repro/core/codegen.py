"""The code-generation pipeline (Section III-D).

For a codable ``define``, the DSL compiler:

1. builds the Figure-4 prompt from the template and type information;
2. sends it to the LLM;
3. extracts the fenced code, checks it syntactically, and -- when test
   examples were supplied -- semantically, by executing the function on
   each example input and comparing outputs;
4. on failure, retries (up to 9 times) with a feedback prompt carrying the
   failing code and the observed mismatches;
5. on success, stores the code in the ``askit`` cache and returns a
   callable that never touches the LLM again.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

from repro.core.cache import CodeCache, strip_provenance_header
from repro.core.config import Config, get_config
from repro.core.hosts import FunctionHost, load_host
from repro.core.naming import function_name
from repro.core.safety import SafetyFinding, scan as safety_scan
from repro.errors import (
    CodeExtractionError,
    CodeGenerationError,
    CodeValidationError,
)
from repro.ioexample import Example, outputs_equal
from repro.parsing import extract_block
from repro.prompts import build_codegen_prompt, refine_codegen_prompt
from repro.templates import PromptTemplate
from repro.types.base import Type


class GeneratedFunction:
    """A validated generated function plus its provenance."""

    __slots__ = (
        "host",
        "source",
        "name",
        "language",
        "attempts",
        "llm_latency_s",
        "validation_time_s",
        "from_cache",
        "safety_findings",
    )

    def __init__(
        self,
        host: FunctionHost,
        attempts: int,
        llm_latency_s: float,
        validation_time_s: float,
        from_cache: bool,
        safety_findings: list[SafetyFinding] | None = None,
    ) -> None:
        self.host = host
        self.source = host.source
        self.name = host.name
        self.language = host.language
        self.attempts = attempts
        self.llm_latency_s = llm_latency_s
        self.validation_time_s = validation_time_s
        self.from_cache = from_cache
        #: Findings from the static safety scan (empty when clean or when
        #: the policy is "off").
        self.safety_findings = list(safety_findings or [])

    @property
    def compile_time_s(self) -> float:
        """Total time to obtain the function (LLM latency dominates)."""
        return self.llm_latency_s + self.validation_time_s

    @property
    def retries(self) -> int:
        """Retries beyond the first attempt (Table II's Retry column)."""
        return max(0, self.attempts - 1)

    def __call__(self, **kwargs: Any) -> Any:
        return self.host.call(kwargs)

    def call_with(self, args: Mapping[str, Any]) -> Any:
        return self.host.call(args)

    def __repr__(self) -> str:
        return (
            f"GeneratedFunction({self.name!r}, {self.language}, "
            f"attempts={self.attempts}, cached={self.from_cache})"
        )


def validate_candidate(
    host: FunctionHost,
    examples: Sequence[Example],
    return_type: Type | None = None,
) -> None:
    """Run the semantic check: every example input must reproduce its output.

    Raises :class:`CodeValidationError` carrying per-example failure
    descriptions (these feed the retry prompt).
    """
    failures: list[str] = []
    for example in examples:
        try:
            actual = host.call(example.inputs)
        except Exception as error:  # noqa: BLE001 - generated code can fail arbitrarily
            failures.append(
                f"for input {example.inputs!r} the function raised "
                f"{type(error).__name__}: {error}"
            )
            continue
        if not outputs_equal(actual, example.output):
            failures.append(
                f"for input {example.inputs!r} expected {example.output!r} "
                f"but got {actual!r}"
            )
            continue
        if return_type is not None and not return_type.is_void():
            coerced = actual
            if not return_type.validate(coerced):
                failures.append(
                    f"for input {example.inputs!r} the result {actual!r} does "
                    f"not match the declared return type {return_type.typescript()}"
                )
    if failures:
        raise CodeValidationError("generated code failed validation", failures)


class _CodegenRun:
    """State machine for one generation: prompt, validation, refinement.

    Shared by the sync and async drivers below so there is exactly one
    copy of the extract/scan/validate/cache logic; the drivers own only
    how the completion is awaited.
    """

    def __init__(
        self,
        template: PromptTemplate,
        return_type: Type,
        param_types: Mapping[str, Type] | None,
        test_examples: Sequence[Example],
        language: str | None,
        name: str | None,
        config: Config,
        use_cache: bool,
    ) -> None:
        self.config = config
        self.template = template
        self.return_type = return_type
        self.test_examples = test_examples
        self.language = language or config.target_language
        self.name = name or function_name(template.text, self.language)
        self.cache = (
            CodeCache(config.cache_dir) if (use_cache and config.cache_dir) else None
        )
        self.prompt = build_codegen_prompt(
            self.language, self.name, template, return_type, param_types
        )
        self.current = self.prompt
        self.llm_latency = 0.0
        self.validation_time = 0.0
        self.last_failure: Exception | None = None

    def cached(self) -> GeneratedFunction | None:
        if self.cache is None:
            return None
        stored = self.cache.load(self.template.text, self.language)
        if stored is None:
            return None
        source = strip_provenance_header(stored)
        host = load_host(self.language, source, self.name)
        return GeneratedFunction(host, 0, 0.0, 0.0, from_cache=True)

    def accept(self, completion, attempt: int) -> GeneratedFunction | None:
        self.llm_latency += completion.latency_s
        try:
            code = extract_block(completion.text, self.language, allow_untagged=True)
        except CodeExtractionError as error:
            self.last_failure = error
            self.current = refine_codegen_prompt(self.prompt, completion.text, error)
            return None

        started = time.perf_counter()
        try:
            findings = _safety_check(code, self.language, self.config)
            host = load_host(self.language, code, self.name)
            validate_candidate(host, self.test_examples, self.return_type)
        except CodeValidationError as error:
            self.validation_time += time.perf_counter() - started
            self.last_failure = error
            self.current = refine_codegen_prompt(self.prompt, code, error)
            return None
        self.validation_time += time.perf_counter() - started

        if self.cache is not None:
            self.cache.store(self.template.text, self.language, code)
        return GeneratedFunction(
            host, attempt + 1, self.llm_latency, self.validation_time, False, findings
        )

    def exhausted(self) -> CodeGenerationError:
        return CodeGenerationError(
            f"code generation failed after {self.config.max_retries + 1} attempts "
            f"(last failure: {self.last_failure})",
            attempts=self.config.max_retries + 1,
        )


def generate_function(
    template: PromptTemplate,
    return_type: Type,
    param_types: Mapping[str, Type] | None = None,
    test_examples: Sequence[Example] = (),
    language: str | None = None,
    name: str | None = None,
    config: Config | None = None,
    use_cache: bool = True,
) -> GeneratedFunction:
    """Generate, validate, and cache a function implementing ``template``.

    Raises :class:`CodeGenerationError` after exhausting retries.
    """
    config = config or get_config()
    run = _CodegenRun(
        template, return_type, param_types, test_examples, language, name, config, use_cache
    )
    cached = run.cached()
    if cached is not None:
        return cached
    response_cache = config.response_cache
    scheduler = config.request_scheduler
    for attempt in range(config.max_retries + 1):
        completion = config.client.chat_complete(
            config.codegen_model,
            run.current,
            config.temperature,
            cache=response_cache,
            scheduler=scheduler,
        )
        generated = run.accept(completion, attempt)
        if generated is not None:
            return generated
    raise run.exhausted()


async def generate_function_async(
    template: PromptTemplate,
    return_type: Type,
    param_types: Mapping[str, Type] | None = None,
    test_examples: Sequence[Example] = (),
    language: str | None = None,
    name: str | None = None,
    config: Config | None = None,
    use_cache: bool = True,
) -> GeneratedFunction:
    """Async counterpart of :func:`generate_function`; same retry semantics.

    Candidate validation (which executes the generated code) still runs on
    the calling thread; only the LLM round-trips are awaited.
    """
    config = config or get_config()
    run = _CodegenRun(
        template, return_type, param_types, test_examples, language, name, config, use_cache
    )
    cached = run.cached()
    if cached is not None:
        return cached
    response_cache = config.response_cache
    scheduler = config.request_scheduler
    for attempt in range(config.max_retries + 1):
        completion = await config.client.achat_complete(
            config.codegen_model,
            run.current,
            config.temperature,
            cache=response_cache,
            scheduler=scheduler,
        )
        generated = run.accept(completion, attempt)
        if generated is not None:
            return generated
    raise run.exhausted()


def _safety_check(code: str, language: str, config: Config) -> list[SafetyFinding]:
    """Run the static safety scan *before* the candidate ever executes.

    ``off`` skips scanning entirely (the paper's behaviour); ``warn``
    records findings; ``enforce`` raises so the retry loop regenerates.
    """
    policy = config.safety_policy
    if policy.mode == "off":
        return []
    findings = safety_scan(code, language, policy.allow_files)
    return policy.apply(findings)
