"""Rate-limited request scheduling with adaptive concurrency.

The ROADMAP's north star -- heavy traffic served as fast as the hardware
allows -- lives or dies on admission control: a runtime that fires every
``map()`` item at the provider simultaneously spends most of its time in
429 penalty boxes.  This module adds the missing layer between
:class:`~repro.llm.client.ChatClient` and the provider registry
(following LMQL and APPL, which both move query mechanics into the
runtime so they can be optimized systematically):

* **Pacing buckets** -- per-model GCRA token buckets for requests/min and
  tokens/min.  Instead of letting the provider refuse, the scheduler
  computes how long a request must wait to conform and charges that wait
  to the caller's virtual clock *before* issuing, so paced traffic never
  draws a 429 from a same-shaped provider limit.
* **Adaptive concurrency (AIMD)** -- an effective-parallelism window per
  model: additive increase on success, multiplicative decrease on a rate
  limit or a latency spike.  On the virtual clock "concurrency" is
  expressed as pacing -- a window of ``w`` over an observed latency of
  ``L`` seconds admits at most ``w / L`` requests per virtual second --
  so the controller composes with the rate buckets instead of fighting
  the worker pool.
* **Priority-aware admission** -- contending requests are admitted in
  ``(priority, arrival)`` order through a turnstile, so latency-sensitive
  traffic overtakes bulk sweeps at the gate.
* **Deadlines** -- a request whose projected delay exceeds its deadline
  fails fast with :class:`~repro.errors.DeadlineExceededError` *before*
  spending wait budget; requeued requests re-check against their original
  submission time.
* **Requeue on 429** -- a refusal that slips through (e.g. a limit
  tighter than the configured pacing) is not fatal: the scheduler charges
  the provider's ``retry_after_s``, shrinks the AIMD window, and requeues
  the request up to ``max_requeues`` times.
* **Cross-request batching** -- under an open :meth:`batch_window
  <RequestScheduler.batch_window>`, admitted cache-missing requests from
  one fan-out rendezvous for a bounded stretch of virtual time, group by
  (client, model, decoding parameters) up to the provider's batch
  capability, and ride *one* wire call for ``n`` completions -- paying
  request pacing once per group.  Per-item failures stay isolated to
  their member; a whole-batch refusal requeues every member solo.

Everything is accounted on the deterministic virtual clock
(:class:`~repro.llm.latency.VirtualClock`): waits are *charged*, never
slept, so scheduled benchmarks reproduce.  Throttle/requeue/deadline
events are tallied on :class:`~repro.llm.client.ClientStats`, total and
per model.  See ``docs/scheduling.md`` for the operator's guide.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import math
import threading
from collections import deque
from typing import TYPE_CHECKING, Awaitable, Callable, Iterator, Sequence

from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    QuotaExceededError,
    RateLimitError,
    ServerError,
)
from repro.llm.base import ChatMessage, CompletionResult
from repro.llm.tokenizer import count_message_tokens
from repro.obs.trace import add_event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (llm imports core)
    from repro.llm.client import ChatClient

#: The scheduler modes a :class:`~repro.core.config.Config` accepts.
SCHEDULER_MODES = ("off", "adaptive")


class SchedulerPolicy:
    """Tuning knobs for one :class:`RequestScheduler`.

    The common knobs (``requests_per_minute``, ``tokens_per_minute``,
    ``deadline_s``) are surfaced directly on
    :class:`~repro.core.config.Config`; everything else lives here with
    defaults chosen for the simulated backends.

    Parameters
    ----------
    requests_per_minute:
        Sustained request pacing per model (``None`` = no request bucket).
    tokens_per_minute:
        Sustained token pacing per model, enforced on estimated cost:
        prompt tokens plus ``expected_completion_tokens``
        (``None`` = no token bucket).
    deadline_s:
        Default per-request deadline in virtual seconds (``None`` = no
        deadline).  A single request may override it.
    burst:
        Bucket depth -- how many requests (or that many requests' worth
        of tokens) may be admitted back-to-back before pacing kicks in.
        Match the provider's advertised burst.
    expected_completion_tokens:
        Completion-size estimate used for token pacing (the reply's true
        size is unknown at admission time).
    initial_window / min_window / max_window:
        AIMD window bounds (effective concurrent requests per model).
    ramp_every:
        Successes required per additive window increase.
    spike_factor:
        A completion slower than ``spike_factor`` times the latency EWMA
        is treated as overload and halves the window.
    ewma_alpha:
        Smoothing factor of the latency EWMA in (0, 1].
    max_requeues:
        How many 429-triggered requeues one request tolerates before the
        refusal propagates.
    serialize_issue:
        Hold the admission turnstile across the provider call so calls
        are issued in admission order.  Correct (and free) for simulated
        backends, whose calls cost microseconds of real time while
        latency is charged virtually; switch off for wire providers,
        where it would serialize real round-trips -- at the price of
        rare admission-order inversions that surface as requeues.
    max_batch:
        Upper bound on requests grouped into one batched wire call when
        a batch window is open (see :meth:`RequestScheduler.batch_window`).
        ``1`` -- the default -- disables batching entirely; providers
        additionally cap groups at their own ``max_batch_size``.
    batch_window_s:
        Bound on the *virtual-time* span a forming batch group may
        cover: a request arriving more than this many virtual seconds
        after the group's first member seals the group and starts a new
        one, so batching never trades unbounded queueing delay for
        fewer wire calls.
    """

    __slots__ = (
        "requests_per_minute",
        "tokens_per_minute",
        "deadline_s",
        "burst",
        "expected_completion_tokens",
        "initial_window",
        "min_window",
        "max_window",
        "ramp_every",
        "spike_factor",
        "ewma_alpha",
        "max_requeues",
        "serialize_issue",
        "max_batch",
        "batch_window_s",
    )

    def __init__(
        self,
        requests_per_minute: float | None = None,
        tokens_per_minute: float | None = None,
        deadline_s: float | None = None,
        burst: int = 4,
        expected_completion_tokens: int = 256,
        initial_window: int = 8,
        min_window: int = 1,
        max_window: int = 64,
        ramp_every: int = 4,
        spike_factor: float = 4.0,
        ewma_alpha: float = 0.3,
        max_requeues: int = 8,
        serialize_issue: bool = True,
        max_batch: int = 1,
        batch_window_s: float = 5.0,
    ) -> None:
        if requests_per_minute is not None and requests_per_minute <= 0:
            raise ConfigError("requests_per_minute must be positive (or None)")
        if tokens_per_minute is not None and tokens_per_minute <= 0:
            raise ConfigError("tokens_per_minute must be positive (or None)")
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigError("deadline_s must be positive (or None)")
        if burst < 1:
            raise ConfigError("burst must be >= 1")
        if expected_completion_tokens < 0:
            raise ConfigError("expected_completion_tokens must be >= 0")
        if not 1 <= min_window <= initial_window <= max_window:
            raise ConfigError(
                "window bounds must satisfy 1 <= min_window <= initial_window "
                "<= max_window"
            )
        if ramp_every < 1:
            raise ConfigError("ramp_every must be >= 1")
        if spike_factor <= 1.0:
            raise ConfigError("spike_factor must be > 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        if max_requeues < 0:
            raise ConfigError("max_requeues must be >= 0")
        if max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if batch_window_s <= 0:
            raise ConfigError("batch_window_s must be positive")
        self.requests_per_minute = requests_per_minute
        self.tokens_per_minute = tokens_per_minute
        self.deadline_s = deadline_s
        self.burst = burst
        self.expected_completion_tokens = expected_completion_tokens
        self.initial_window = initial_window
        self.min_window = min_window
        self.max_window = max_window
        self.ramp_every = ramp_every
        self.spike_factor = spike_factor
        self.ewma_alpha = ewma_alpha
        self.max_requeues = max_requeues
        self.serialize_issue = serialize_issue
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s

    def replace(self, **changes) -> "SchedulerPolicy":
        """A copy of this policy with ``changes`` applied."""
        current = {name: getattr(self, name) for name in self.__slots__}
        current.update(changes)
        return SchedulerPolicy(**current)

    def __repr__(self) -> str:
        return (
            f"SchedulerPolicy(rpm={self.requests_per_minute}, "
            f"tpm={self.tokens_per_minute}, deadline={self.deadline_s}, "
            f"burst={self.burst}, window={self.initial_window}"
            f"..{self.max_window})"
        )


class PacingBucket:
    """A GCRA pacing bucket on the virtual timeline.

    Unlike a rejecting limiter, a pacing bucket answers "how long must
    this request *wait* to conform?".  It tolerates non-monotonic arrival
    times (concurrent lanes each live on their own stretch of the virtual
    timeline) by pacing against a theoretical-arrival-time that only ever
    moves forward: the k-th admitted unit of cost may not start before
    ``(k + 1 - burst) / rate``, wherever its lane currently stands.
    """

    __slots__ = ("rate_per_s", "burst", "_tat", "_lock")

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ConfigError("rate_per_s must be positive")
        if burst <= 0:
            raise ConfigError("burst must be positive")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tat = 0.0
        self._lock = threading.Lock()

    def reserve(self, arrival: float, cost: float = 1.0) -> float:
        """Admit ``cost`` units arriving at ``arrival``; return the wait.

        The wait is the virtual time the caller must charge before
        issuing so the paced stream never exceeds ``rate_per_s`` with
        more than ``burst`` units in flight ahead of schedule.
        """
        if cost <= 0:
            return 0.0
        with self._lock:
            tolerance = self.burst / self.rate_per_s
            start = max(arrival, self._tat - tolerance)
            self._tat = max(self._tat, start) + cost / self.rate_per_s
            return start - arrival

    def peek_wait(self, arrival: float, cost: float = 1.0) -> float:
        """The wait :meth:`reserve` would return, without reserving."""
        if cost <= 0:
            return 0.0
        with self._lock:
            return max(0.0, (self._tat - self.burst / self.rate_per_s) - arrival)

    def set_rate(self, rate_per_s: float) -> None:
        """Retarget the bucket's rate, keeping its pacing history.

        The adaptive controller retunes its bucket as the AIMD window
        and the latency EWMA drift; the theoretical arrival time carries
        over so a resize never forgets what was already admitted.
        """
        if rate_per_s <= 0:
            raise ConfigError("rate_per_s must be positive")
        with self._lock:
            self.rate_per_s = rate_per_s


class AdaptiveConcurrency:
    """An AIMD effective-concurrency controller for one model.

    Successes ramp the window additively (+1 every ``ramp_every``); a
    rate-limit refusal or a completion slower than ``spike_factor`` times
    the latency EWMA halves it.  The window converts to admission pacing:
    ``window`` effective slots over an observed per-request latency of
    ``L`` virtual seconds admit ``window / L`` requests per second.
    """

    __slots__ = ("policy", "window", "ewma_latency_s", "_successes", "_lock")

    def __init__(self, policy: SchedulerPolicy) -> None:
        self.policy = policy
        self.window = float(policy.initial_window)
        self.ewma_latency_s: float | None = None
        self._successes = 0
        self._lock = threading.Lock()

    def rate_per_s(self) -> float | None:
        """Admission rate the current window supports (None = unknown)."""
        with self._lock:
            if self.ewma_latency_s is None or self.ewma_latency_s <= 0:
                return None
            return self.window / self.ewma_latency_s

    def on_success(self, latency_s: float) -> None:
        """Record a completion; ramp the window, or back off on a spike."""
        with self._lock:
            spike = (
                self.ewma_latency_s is not None
                and self.ewma_latency_s > 0
                and latency_s > self.policy.spike_factor * self.ewma_latency_s
            )
            alpha = self.policy.ewma_alpha
            if self.ewma_latency_s is None:
                self.ewma_latency_s = latency_s
            else:
                self.ewma_latency_s += alpha * (latency_s - self.ewma_latency_s)
            if spike:
                self._shrink_locked()
                return
            self._successes += 1
            if self._successes >= self.policy.ramp_every:
                self._successes = 0
                self.window = min(float(self.policy.max_window), self.window + 1.0)

    def on_rate_limit(self) -> None:
        """Multiplicative decrease after a provider refusal."""
        with self._lock:
            self._shrink_locked()

    def _shrink_locked(self) -> None:
        self._successes = 0
        self.window = max(float(self.policy.min_window), self.window / 2.0)


class _PriorityTurnstile:
    """Admit contending threads one at a time in ``(priority, seq)`` order.

    Lower priority values go first; ties break by arrival.  This is the
    scheduler's admission queue: while one request is being paced (and,
    with ``serialize_issue``, issued), later arrivals with a better
    priority overtake earlier bulk traffic.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._waiting: list[tuple[int, int]] = []
        self._busy = False
        self._seq = itertools.count()

    def acquire(self, priority: int = 0) -> None:
        """Wait for the gate; among waiters, lowest ``priority`` first."""
        token = (priority, next(self._seq))
        with self._cond:
            heapq.heappush(self._waiting, token)
            while self._busy or self._waiting[0] != token:
                self._cond.wait()
            heapq.heappop(self._waiting)
            self._busy = True

    def release(self) -> None:
        """Open the gate for the best-priority waiter."""
        with self._cond:
            self._busy = False
            self._cond.notify_all()


_ADMISSION_TENANT = threading.local()


def current_admission_tenant() -> str | None:
    """The tenant the calling thread's admissions are attributed to.

    ``None`` outside an :func:`admission_tenant` block -- single-tenant
    workloads never touch this, and a
    :class:`WeightedFairTurnstile` folds anonymous traffic into one
    default lane.
    """
    return getattr(_ADMISSION_TENANT, "name", None)


@contextlib.contextmanager
def admission_tenant(name: str | None) -> Iterator[None]:
    """Attribute this thread's scheduler admissions to tenant ``name``.

    The serving gateway wraps each request's execution in this context,
    so the per-tenant fairness machinery sees the right tenant without
    threading a parameter through every layer between the HTTP handler
    and the admission gate.  Contexts nest; the previous binding is
    restored on exit.
    """
    previous = getattr(_ADMISSION_TENANT, "name", None)
    _ADMISSION_TENANT.name = name
    try:
        yield
    finally:
        _ADMISSION_TENANT.name = previous


class DeficitRoundRobin:
    """The pure weighted deficit-round-robin core: deterministic, unlocked.

    Tenants own FIFO-of-priority queues of opaque tokens; each *visit*
    to a tenant in the rotation tops its deficit up by its weight, and a
    tenant may admit one unit-cost token per unit of deficit before the
    rotation moves on.  A tenant with weight 2 therefore admits twice as
    often as a tenant with weight 1 while both are backlogged -- and a
    tenant with no waiters costs nothing (its deficit resets, so idle
    time never banks credit).

    Locking, blocking, and budget charging live in
    :class:`WeightedFairTurnstile`; this core is also driven directly by
    the load generator (:mod:`repro.serve.loadgen`) and the
    property-based fairness tests, so the exact admission order the
    gateway produces is the one the 10k-request harness verifies.
    """

    #: The lane unattributed traffic shares (see :func:`admission_tenant`).
    DEFAULT_TENANT = "_default"

    #: Admission threshold slack: a deficit within this of 1.0 counts as a
    #: full unit, so float accumulation error (repeated ``+= weight`` vs
    #: the fast-forward's one multiplication) can never shift the visit on
    #: which a tenant crosses.  Far below any meaningful weight.
    EPSILON = 1e-9

    def __init__(self, default_weight: float = 1.0) -> None:
        if default_weight <= 0:
            raise ConfigError("default_weight must be positive")
        self.default_weight = default_weight
        self._weights: dict[str, float] = {}
        #: tenant -> heap of ``(priority, seq, token)`` (FIFO within ties).
        self._queues: dict[str, list[tuple]] = {}
        self._deficit: dict[str, float] = {}
        #: Rotation of tenants with waiters, in order of becoming active.
        self._round: deque[str] = deque()
        #: Whether the head tenant's visit has yet to top its deficit up.
        #: A tenant is topped up exactly once per visit; serving within
        #: the visit continues until the deficit runs dry.
        self._fresh_visit = True
        self._seq = itertools.count()
        self._size = 0

    def set_weight(self, tenant: str, weight: float) -> None:
        """Set ``tenant``'s fair-share weight (relative to the others)."""
        if weight <= 0:
            raise ConfigError("tenant weight must be positive")
        self._weights[tenant] = float(weight)

    def weight_of(self, tenant: str) -> float:
        """The configured weight of ``tenant`` (default for unknown)."""
        return self._weights.get(tenant, self.default_weight)

    def enqueue(self, tenant: str | None, token: object, priority: int = 0) -> None:
        """Queue ``token`` for admission under ``tenant``."""
        name = tenant if tenant is not None else self.DEFAULT_TENANT
        queue = self._queues.get(name)
        if queue is None:
            queue = self._queues[name] = []
        if not queue:
            if not self._round:
                # The rotation restarts: the newcomer's visit is fresh.
                self._fresh_visit = True
            self._round.append(name)
        heapq.heappush(queue, (priority, next(self._seq), token))
        self._size += 1

    def _advance(self) -> str | None:
        """Rotate (topping deficits up per visit) until the head can admit.

        Idempotent once settled -- the head keeps a deficit >= 1 until
        :meth:`pop` spends it -- so blocked waiters may re-check
        :meth:`peek` freely.  With every active weight below one a full
        rotation can end fruitless; the arithmetic fast-forward then
        banks the exact number of whole rotations still needed, keeping
        this O(active tenants) whatever the weights.
        """
        if not self._round:
            return None
        fruitless = 0
        while True:
            head = self._round[0]
            if self._fresh_visit:
                self._deficit[head] = self._deficit.get(head, 0.0) + self.weight_of(
                    head
                )
                self._fresh_visit = False
            if self._deficit[head] >= 1.0 - self.EPSILON:
                return head
            self._round.rotate(-1)
            self._fresh_visit = True
            fruitless += 1
            if fruitless >= len(self._round):
                # A whole pass crossed nobody over the unit threshold, so
                # every further pass just adds each tenant's weight once.
                # Bank all but the last such pass arithmetically, then scan
                # that final pass visit-by-visit: exact (during the banked
                # passes every deficit provably stays below one) and the
                # first argmin tenant crosses when visited.
                passes = min(
                    math.ceil(
                        (1.0 - self.EPSILON - self._deficit.get(name, 0.0))
                        / self.weight_of(name)
                    )
                    for name in self._round
                )
                if passes > 1:
                    for name in self._round:
                        self._deficit[name] = self._deficit.get(name, 0.0) + (
                            passes - 1
                        ) * self.weight_of(name)
                self._fresh_visit = True
                fruitless = 0

    def peek(self) -> object | None:
        """The token :meth:`pop` would admit next, without admitting it.

        Stable between mutations: blocked waiters can re-check whether
        they are at the gate after every wakeup.
        """
        head = self._advance()
        if head is None:
            return None
        return self._queues[head][0][2]

    def pop(self) -> object | None:
        """Admit and return the next token in weighted-fair order."""
        head = self._advance()
        if head is None:
            return None
        queue = self._queues[head]
        _, _, token = heapq.heappop(queue)
        self._size -= 1
        self._deficit[head] -= 1.0
        if not queue:
            # An emptied queue leaves the rotation and forfeits leftover
            # deficit -- idle tenants must not bank credit (classic DRR).
            self._round.popleft()
            self._deficit[head] = 0.0
            self._fresh_visit = True
        elif self._deficit[head] < 1.0 - self.EPSILON:
            # Visit exhausted: the rotation moves on.
            self._round.rotate(-1)
            self._fresh_visit = True
        return token

    def backlog(self, tenant: str) -> int:
        """Waiting tokens queued for ``tenant``."""
        return len(self._queues.get(tenant, ()))

    def __len__(self) -> int:
        return self._size


class TenantBudget:
    """One tenant's admission allowances: pacing budgets and hard quotas.

    Two layers, both optional:

    * **Rate budgets** -- per-tenant requests/min and tokens/min
      :class:`PacingBucket` pairs.  Like the scheduler's per-model
      buckets they answer "how long must this request wait to conform",
      and the wait is charged to the tenant's virtual clock.
    * **Quotas** -- cumulative request/token caps.  Exhausting one
      raises :class:`~repro.errors.QuotaExceededError` *before* any
      budget is spent; the gateway surfaces it as HTTP 429 with the
      offending resource named.
    """

    __slots__ = (
        "tenant",
        "request_bucket",
        "token_bucket",
        "max_requests",
        "max_tokens",
        "used_requests",
        "used_tokens",
        "_lock",
    )

    def __init__(
        self,
        tenant: str,
        requests_per_minute: float | None = None,
        tokens_per_minute: float | None = None,
        burst: int = 4,
        max_requests: int | None = None,
        max_tokens: int | None = None,
    ) -> None:
        if max_requests is not None and max_requests < 0:
            raise ConfigError("max_requests must be >= 0 (or None)")
        if max_tokens is not None and max_tokens < 0:
            raise ConfigError("max_tokens must be >= 0 (or None)")
        self.tenant = tenant
        self.request_bucket = (
            PacingBucket(requests_per_minute / 60.0, float(burst))
            if requests_per_minute is not None
            else None
        )
        self.token_bucket = (
            PacingBucket(tokens_per_minute / 60.0, float(burst * 256))
            if tokens_per_minute is not None
            else None
        )
        self.max_requests = max_requests
        self.max_tokens = max_tokens
        self.used_requests = 0
        self.used_tokens = 0
        self._lock = threading.Lock()

    def reserve(self, arrival: float, tokens: int = 0) -> float:
        """Reserve pacing capacity; the virtual wait the caller charges."""
        wait = 0.0
        if self.request_bucket is not None:
            wait = max(wait, self.request_bucket.reserve(arrival))
        if self.token_bucket is not None and tokens > 0:
            wait = max(wait, self.token_bucket.reserve(arrival, float(tokens)))
        return wait

    def charge_quota(self, tokens: int = 0) -> None:
        """Consume one request (and ``tokens``) of quota, or refuse.

        All-or-nothing under the lock: a refused request consumes
        nothing, and concurrent charges can never overshoot a cap.
        """
        with self._lock:
            if (
                self.max_requests is not None
                and self.used_requests + 1 > self.max_requests
            ):
                raise QuotaExceededError(
                    f"tenant {self.tenant!r} exhausted its request quota "
                    f"({self.used_requests}/{self.max_requests})",
                    tenant=self.tenant,
                    resource="requests",
                    used=self.used_requests,
                    limit=self.max_requests,
                )
            if (
                self.max_tokens is not None
                and self.used_tokens + tokens > self.max_tokens
            ):
                raise QuotaExceededError(
                    f"tenant {self.tenant!r} exhausted its token quota "
                    f"({self.used_tokens}+{tokens}>{self.max_tokens})",
                    tenant=self.tenant,
                    resource="tokens",
                    used=self.used_tokens,
                    limit=self.max_tokens,
                )
            self.used_requests += 1
            self.used_tokens += tokens

    def snapshot(self) -> dict[str, float | None]:
        """Quota usage as plain data (for ``/metrics`` and inspection)."""
        with self._lock:
            return {
                "used_requests": self.used_requests,
                "max_requests": self.max_requests,
                "used_tokens": self.used_tokens,
                "max_tokens": self.max_tokens,
            }


class WeightedFairTurnstile(_PriorityTurnstile):
    """A :class:`_PriorityTurnstile` that is fair *across tenants*.

    The plain turnstile orders contenders by ``(priority, arrival)`` --
    correct for one workload, but a multi-tenant gateway sharing it
    would let one hot tenant's 9 000 queued requests starve everyone
    else's 10.  This subclass keeps the same ``acquire``/``release``
    interface (the scheduler calls it unchanged) and replaces the single
    heap with weighted deficit round-robin across tenant lanes
    (:class:`DeficitRoundRobin`): within a tenant, ``(priority,
    arrival)`` order still holds; across tenants, admissions interleave
    in proportion to configured weights, so a backlogged light tenant is
    never more than one DRR rotation away from the gate.

    The calling thread's tenant comes from the ambient
    :func:`admission_tenant` context (the gateway sets it per request);
    unattributed callers share the default lane.  Per-tenant
    :class:`TenantBudget` allowances -- rpm/tpm pacing and cumulative
    quotas -- ride on the same object so one ``configure_tenant`` call
    describes a tenant completely.
    """

    def __init__(self, default_weight: float = 1.0) -> None:
        self._cond = threading.Condition()
        self._busy = False
        self._drr = DeficitRoundRobin(default_weight)
        self._budgets: dict[str, TenantBudget] = {}
        #: Admissions granted per tenant (monotonic; for fairness audits).
        self.admitted: dict[str, int] = {}

    def configure_tenant(
        self,
        name: str,
        weight: float = 1.0,
        requests_per_minute: float | None = None,
        tokens_per_minute: float | None = None,
        burst: int = 4,
        max_requests: int | None = None,
        max_tokens: int | None = None,
    ) -> TenantBudget:
        """Register ``name``'s fair-share weight and admission allowances."""
        with self._cond:
            self._drr.set_weight(name, weight)
            budget = TenantBudget(
                name,
                requests_per_minute=requests_per_minute,
                tokens_per_minute=tokens_per_minute,
                burst=burst,
                max_requests=max_requests,
                max_tokens=max_tokens,
            )
            self._budgets[name] = budget
            return budget

    def budget_for(self, name: str | None) -> TenantBudget | None:
        """The :class:`TenantBudget` of ``name``, or ``None``."""
        if name is None:
            return None
        with self._cond:
            return self._budgets.get(name)

    def acquire(self, priority: int = 0, tenant: str | None = None) -> None:
        """Wait for the gate in weighted-fair order across tenants.

        ``tenant`` defaults to the ambient :func:`admission_tenant`
        binding, which is how the scheduler's unchanged
        ``turnstile.acquire(priority)`` call sites become tenant-aware.
        """
        name = tenant if tenant is not None else current_admission_tenant()
        token = object()
        with self._cond:
            self._drr.enqueue(name, token, priority)
            while self._busy or self._drr.peek() is not token:
                self._cond.wait()
            popped = self._drr.pop()
            assert popped is token
            self._busy = True
            lane = name if name is not None else DeficitRoundRobin.DEFAULT_TENANT
            self.admitted[lane] = self.admitted.get(lane, 0) + 1

    # release() is inherited: open the gate, wake every waiter, and the
    # one DRR now favours proceeds.

    def reserve_budget(
        self, tenant: str | None, arrival: float, tokens: int = 0
    ) -> float:
        """Pacing wait ``tenant`` must charge before issuing (0.0 if none)."""
        budget = self.budget_for(tenant)
        if budget is None:
            return 0.0
        return budget.reserve(arrival, tokens)

    def charge_quota(self, tenant: str | None, tokens: int = 0) -> None:
        """Consume quota for one request, raising when exhausted."""
        budget = self.budget_for(tenant)
        if budget is not None:
            budget.charge_quota(tokens)

    def quota_snapshot(self) -> dict[str, dict[str, float | None]]:
        """Every configured tenant's quota usage, keyed by tenant name."""
        with self._cond:
            budgets = list(self._budgets.values())
        return {budget.tenant: budget.snapshot() for budget in budgets}


class BatchRequest:
    """How one request may join a batched wire call.

    Built by the client (see ``ChatClient._batch_request``) when the
    model's provider advertises ``supports_batch``.  ``group_key``
    captures wire compatibility -- same client, model, and decoding
    parameters -- so only interchangeable requests share a call.
    ``call`` issues the grouped transport call: it takes the group's
    message lists and returns one entry per item, in order (a
    :class:`~repro.llm.base.CompletionResult`, or the exception that
    item drew).  A refusal of the *whole* wire call raises instead.
    """

    __slots__ = ("group_key", "max_batch_size", "call")

    def __init__(
        self,
        group_key: object,
        max_batch_size: int,
        call: Callable[[list[Sequence[ChatMessage]]], list],
    ) -> None:
        self.group_key = group_key
        self.max_batch_size = max(1, int(max_batch_size))
        self.call = call


class _BatchTicket:
    """One request's seat in a forming batch group."""

    __slots__ = ("messages", "priority", "group", "index")

    def __init__(
        self,
        messages: Sequence[ChatMessage],
        priority: int,
        group: "_BatchGroup",
        index: int,
    ) -> None:
        self.messages = messages
        self.priority = priority
        self.group = group
        self.index = index


class _BatchGroup:
    """Requests that will share one batched wire call.

    Members park in :meth:`await_role`; when the window seals the
    group, the first member is elected dispatcher, performs admission
    and the grouped call, and publishes the outcome to everyone.
    """

    __slots__ = (
        "key",
        "capacity",
        "call",
        "first_arrival",
        "members",
        "sealed",
        "outcome",
        "_cond",
        "_dispatching",
    )

    def __init__(
        self,
        key: object,
        capacity: int,
        call: Callable[[list[Sequence[ChatMessage]]], list],
        first_arrival: float,
    ) -> None:
        self.key = key
        self.capacity = capacity
        self.call = call
        #: Virtual arrival time of the first member (bounds the window).
        self.first_arrival = first_arrival
        self.members: list[_BatchTicket] = []
        self.sealed = False
        #: ``("results", per_item, wait)`` | ``("refusal", error, wait)``
        #: | ``("error", error, wait)`` -- set exactly once by the
        #: dispatcher, after which every member proceeds independently.
        self.outcome: tuple[str, object, float] | None = None
        self._cond = threading.Condition()
        self._dispatching = False

    def seal(self) -> None:
        """Close the group to new members and wake one as dispatcher."""
        with self._cond:
            self.sealed = True
            self._cond.notify_all()

    def await_role(self, ticket: _BatchTicket) -> str | None:
        """Park until the group resolves; the dispatcher returns early.

        Exactly one member -- the first, once the group is sealed --
        gets ``"dispatch"`` back and must issue the wire call and
        :meth:`resolve`.  Everyone else returns ``None`` with
        :attr:`outcome` set.
        """
        with self._cond:
            while True:
                if self.outcome is not None:
                    return None
                if (
                    self.sealed
                    and not self._dispatching
                    and self.members[0] is ticket
                ):
                    self._dispatching = True
                    return "dispatch"
                self._cond.wait()

    def resolve(self, outcome: tuple[str, object, float]) -> None:
        with self._cond:
            self.outcome = outcome
            self._cond.notify_all()


class _BatchWindow:
    """The batching rendezvous for one declared fan-out (one ``map()``).

    Opened by :meth:`RequestScheduler.batch_window` around a batch
    executor's worker pool.  While open, scheduled cache-missing
    requests issued from the pool's (adopted) threads rendezvous into
    :class:`_BatchGroup` instances instead of going to the wire alone;
    foreign threads, retries, and deadline-bound requests go solo.

    The window cannot stall: a group seals as soon as it reaches
    capacity, its virtual-time span exceeds ``batch_window_s``, every
    expected item has arrived (or resigned), or every pool worker is
    accounted for as parked/blocked -- so at any moment at least one
    thread can make progress, whatever the pool interleaving.
    """

    def __init__(self, policy: SchedulerPolicy, expected: int, workers: int) -> None:
        self._policy = policy
        self._lock = threading.Lock()
        #: Work items that may still produce a first arrival.
        self._remaining = expected
        self._workers = max(1, workers)
        #: Idents of the pool threads this window batches for.
        self._threads: set[int] = set()
        #: Idents whose current work item already arrived or resigned.
        self._consumed: set[int] = set()
        #: Threads parked in open (unsealed) groups.
        self._parked = 0
        #: Threads blocked on a coalesced flight's leader.
        self._blocked = 0
        self._open: dict[object, _BatchGroup] = {}
        self._closed = False
        #: Grouped wire calls issued / requests they served.
        self.batches = 0
        self.batched = 0

    # -- bookkeeping (all under _lock) -------------------------------------

    def adopt(self) -> None:
        """Register the calling pool thread as belonging to this window."""
        with self._lock:
            self._threads.add(threading.get_ident())

    def _consume_locked(self, ident: int) -> bool:
        if ident in self._consumed:
            return False
        self._consumed.add(ident)
        if self._remaining > 0:
            self._remaining -= 1
        return True

    def _take_locked(self, group: _BatchGroup) -> _BatchGroup:
        self._open.pop(group.key, None)
        self._parked -= len(group.members)
        return group

    def _starved_locked(self) -> list[_BatchGroup]:
        """Groups to seal because no further arrival can reach them.

        True once every expected item is accounted for, or once every
        pool worker is parked in a group or blocked on a flight --
        waiting any longer could only deadlock, never grow a group.
        """
        if not self._open:
            return []
        if self._remaining > 0 and (self._parked + self._blocked) < self._workers:
            return []
        return [self._take_locked(group) for group in list(self._open.values())]

    # -- the rendezvous ----------------------------------------------------

    def arrive(
        self,
        batch: BatchRequest | None,
        messages: Sequence[ChatMessage],
        priority: int,
        arrival: float,
    ) -> _BatchTicket | None:
        """Account one scheduled request; a ticket when it should batch.

        Returns ``None`` when the request must go solo: the thread is
        not one of the window's pool workers, its work item already
        issued a request (retries never batch), or the request carries
        no batch capability.  Solo requests from pool threads still
        consume their item's slot so the window's arithmetic stays
        honest.
        """
        to_seal: list[_BatchGroup] = []
        ticket: _BatchTicket | None = None
        with self._lock:
            ident = threading.get_ident()
            if self._closed or ident not in self._threads:
                return None
            fresh = self._consume_locked(ident)
            if fresh and batch is not None:
                group = self._open.get(batch.group_key)
                if group is not None and (
                    arrival - group.first_arrival > self._policy.batch_window_s
                ):
                    # The bounded window: a late arrival on the virtual
                    # timeline sends the stale group out and starts anew.
                    to_seal.append(self._take_locked(group))
                    group = None
                if group is None:
                    capacity = min(self._policy.max_batch, batch.max_batch_size)
                    group = _BatchGroup(
                        batch.group_key, capacity, batch.call, arrival
                    )
                    self._open[batch.group_key] = group
                ticket = _BatchTicket(messages, priority, group, len(group.members))
                group.members.append(ticket)
                self._parked += 1
                if len(group.members) >= group.capacity:
                    to_seal.append(self._take_locked(group))
            to_seal.extend(self._starved_locked())
        for group in to_seal:
            group.seal()
        return ticket

    def resign(self) -> None:
        """Consume one expected slot without a wire request (cache hit)."""
        to_seal: list[_BatchGroup] = []
        with self._lock:
            ident = threading.get_ident()
            if self._closed or ident not in self._threads:
                return
            self._consume_locked(ident)
            to_seal = self._starved_locked()
        for group in to_seal:
            group.seal()

    @contextlib.contextmanager
    def follower_wait(self) -> Iterator[None]:
        """Wrap a coalesced follower's wait on another request's flight.

        The follower consumes its slot (it will never reach the
        scheduler) and counts as *blocked* while it waits, so a group
        waiting for this worker's arrival seals instead of deadlocking:
        the flight's leader may itself be parked in that group.
        """
        ident = threading.get_ident()
        to_seal: list[_BatchGroup] = []
        counted = False
        with self._lock:
            if not self._closed and ident in self._threads:
                self._consume_locked(ident)
                self._blocked += 1
                counted = True
                to_seal = self._starved_locked()
        for group in to_seal:
            group.seal()
        try:
            yield
        finally:
            if counted:
                with self._lock:
                    self._blocked -= 1

    def settle_thread(self) -> None:
        """Balance the books after one work item finishes.

        An item that issued a request (or resigned) cleared its slot
        already -- just reset the per-item marker.  One that failed
        before reaching the scheduler resigns on its behalf, so parked
        groups never wait for an arrival that can no longer happen.
        """
        ident = threading.get_ident()
        to_seal: list[_BatchGroup] = []
        with self._lock:
            if ident in self._consumed:
                self._consumed.discard(ident)
                return
            if self._closed or ident not in self._threads:
                return
            if self._remaining > 0:
                self._remaining -= 1
            to_seal = self._starved_locked()
        for group in to_seal:
            group.seal()

    def note_batch(self, size: int) -> None:
        """Record one grouped wire call serving ``size`` requests."""
        with self._lock:
            self.batches += 1
            self.batched += size

    def close(self) -> None:
        """Stop accepting work and seal any leftover group (defensive)."""
        with self._lock:
            self._closed = True
            leftovers = [
                self._take_locked(group) for group in list(self._open.values())
            ]
        for group in leftovers:
            group.seal()


class RequestScheduler:
    """Admission control between a :class:`ChatClient` and its providers.

    One scheduler guards one workload (a
    :class:`~repro.core.config.Config` memoizes one, a
    :class:`~repro.core.session.Session` exposes it); per-model pacing
    and AIMD state live on the instance.  The scheduler is stateless with
    respect to the client -- clock and stats are taken from the client
    passed to :meth:`run`, so a scheduler can be shared by sync and async
    paths alike.
    """

    def __init__(
        self,
        policy: SchedulerPolicy | None = None,
        turnstile: _PriorityTurnstile | None = None,
    ) -> None:
        self.policy = policy or SchedulerPolicy()
        self._turnstile = turnstile or _PriorityTurnstile()
        self._request_buckets: dict[str, PacingBucket] = {}
        self._token_buckets: dict[str, PacingBucket] = {}
        self._adaptive: dict[str, AdaptiveConcurrency] = {}
        self._adaptive_buckets: dict[str, PacingBucket] = {}
        self._lock = threading.Lock()
        self._window: _BatchWindow | None = None

    # -- state ---------------------------------------------------------------

    @property
    def window(self) -> "_BatchWindow | None":
        """The open batch window, or ``None`` (see :meth:`batch_window`)."""
        return self._window

    @property
    def turnstile(self) -> _PriorityTurnstile:
        """The admission turnstile ordering contending requests."""
        return self._turnstile

    def set_turnstile(self, turnstile: _PriorityTurnstile) -> None:
        """Swap the admission turnstile (before traffic flows).

        The serving gateway gives every tenant its own scheduler --
        per-model pacing and AIMD state stay isolated -- while all of
        them share one :class:`WeightedFairTurnstile`, so admission
        order is weighted-fair *across* tenants.
        """
        self._turnstile = turnstile

    @contextlib.contextmanager
    def batch_window(self, expected: int, workers: int) -> Iterator["_BatchWindow | None"]:
        """Open a batching rendezvous for one fan-out of ``expected`` items.

        Entered by :func:`repro.core.batch.run_batch` around its worker
        pool.  While open, scheduled cache-missing requests issued from
        the pool's threads coalesce into grouped wire calls of up to
        ``policy.max_batch`` requests each (capped further by the
        provider's ``max_batch_size``), paying the request-pacing bucket
        *once per group* instead of once per request.

        Yields ``None`` -- and everything schedules solo, exactly as
        without batching -- when the policy disables it
        (``max_batch <= 1``), the fan-out is trivial, or another window
        is already open on this scheduler (only one fan-out batches at
        a time; a nested ``map()``'s requests go solo rather than
        crossing into the outer window).
        """
        if self.policy.max_batch <= 1 or expected <= 1:
            yield None
            return
        window: _BatchWindow | None = _BatchWindow(self.policy, expected, workers)
        with self._lock:
            if self._window is not None:
                window = None
            else:
                self._window = window
        if window is None:
            yield None
            return
        try:
            yield window
        finally:
            with self._lock:
                self._window = None
            window.close()

    def adaptive_state(self, model: str) -> AdaptiveConcurrency:
        """The AIMD controller for ``model`` (created on first use)."""
        with self._lock:
            state = self._adaptive.get(model)
            if state is None:
                state = self._adaptive[model] = AdaptiveConcurrency(self.policy)
            return state

    def _request_bucket(self, model: str) -> PacingBucket | None:
        rpm = self.policy.requests_per_minute
        if rpm is None:
            return None
        with self._lock:
            bucket = self._request_buckets.get(model)
            if bucket is None:
                bucket = self._request_buckets[model] = PacingBucket(
                    rpm / 60.0, float(self.policy.burst)
                )
            return bucket

    def _token_bucket(self, model: str) -> PacingBucket | None:
        tpm = self.policy.tokens_per_minute
        if tpm is None:
            return None
        with self._lock:
            bucket = self._token_buckets.get(model)
            if bucket is None:
                # Burst depth in tokens: the same number of back-to-back
                # *requests* the request bucket tolerates.
                per_request = self.policy.expected_completion_tokens or 1
                bucket = self._token_buckets[model] = PacingBucket(
                    tpm / 60.0, float(self.policy.burst * per_request)
                )
            return bucket

    def estimate_cost_tokens(self, messages: Sequence[ChatMessage]) -> int:
        """Token cost charged against the tokens/min bucket at admission.

        The reply's true size is unknown until the provider answers, so
        pacing uses the rendered prompt plus a configured completion
        allowance -- the same estimate real clients budget with.
        """
        prompt = count_message_tokens([message.content for message in messages])
        return prompt + self.policy.expected_completion_tokens

    # -- the scheduled paths --------------------------------------------------

    def run(
        self,
        client: "ChatClient",
        model: str,
        messages: Sequence[ChatMessage],
        call: Callable[[], CompletionResult],
        priority: int = 0,
        deadline_s: float | None = None,
        batch: BatchRequest | None = None,
    ) -> CompletionResult:
        """Issue one provider call under admission control.

        Pacing waits (and any 429 penalties) are charged to the calling
        thread's lane on ``client.clock``; throttle, requeue, and
        deadline events are tallied on ``client.stats``.

        When ``batch`` is given and a batch window is open (see
        :meth:`batch_window`), the request rendezvouses with compatible
        concurrent requests and rides one grouped wire call instead of
        ``call``.  Deadline-bound requests always go solo -- grouped
        admission cannot fail one member fast without failing the whole
        batch -- and a request requeued after a refusal retries solo.
        """
        submitted = client.clock.now()
        deadline = self.policy.deadline_s if deadline_s is None else deadline_s
        requeues = 0
        ticket: _BatchTicket | None = None
        window = self._window
        if window is not None:
            ticket = window.arrive(
                batch if deadline is None else None, messages, priority, submitted
            )
        while True:
            if ticket is not None:
                disposition, payload, shrink = self._run_batched(
                    client, model, ticket, window
                )
                ticket = None
                if disposition == "ok":
                    result = payload
                    self.adaptive_state(model).on_success(result.latency_s)
                    return result
                if isinstance(payload, RateLimitError):
                    requeues = self._requeue(
                        client, model, payload, submitted, deadline, requeues,
                        shrink=shrink,
                    )
                else:
                    requeues = self._requeue_server(
                        client, model, payload, submitted, deadline, requeues,
                        shrink=shrink,
                    )
                continue
            self._turnstile.acquire(priority)
            held = True
            try:
                with client._span(
                    "askit.admission", model=model, priority=priority
                ) as admission:
                    wait = self._admit(client, model, messages, submitted, deadline)
                    if admission is not None:
                        admission.set_attribute("pacing_wait_s", wait)
                        admission.set_attribute("requeues", requeues)
                if not self.policy.serialize_issue:
                    self._turnstile.release()
                    held = False
                try:
                    result = call()
                except RateLimitError as refusal:
                    requeues = self._requeue(
                        client, model, refusal, submitted, deadline, requeues
                    )
                    continue
                except ServerError as failure:
                    requeues = self._requeue_server(
                        client, model, failure, submitted, deadline, requeues
                    )
                    continue
            finally:
                if held:
                    self._turnstile.release()
            self.adaptive_state(model).on_success(result.latency_s)
            return result

    async def arun(
        self,
        client: "ChatClient",
        model: str,
        messages: Sequence[ChatMessage],
        call: Callable[[], Awaitable[CompletionResult]],
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> CompletionResult:
        """Async :meth:`run`.

        The admission turnstile is a thread primitive, so it is entered
        via a worker thread and -- unlike the sync path -- never held
        across the awaited provider call: holding it would deadlock a
        single-threaded event loop running two scheduled requests.  The
        price is the same admission-order inversion window
        ``serialize_issue=False`` accepts; a resulting refusal requeues.
        """
        import asyncio

        submitted = client.clock.now()
        deadline = self.policy.deadline_s if deadline_s is None else deadline_s
        requeues = 0
        while True:
            await asyncio.to_thread(self._turnstile.acquire, priority)
            try:
                with client._span(
                    "askit.admission", model=model, priority=priority
                ) as admission:
                    wait = self._admit(client, model, messages, submitted, deadline)
                    if admission is not None:
                        admission.set_attribute("pacing_wait_s", wait)
                        admission.set_attribute("requeues", requeues)
            finally:
                self._turnstile.release()
            try:
                result = await call()
            except RateLimitError as refusal:
                requeues = self._requeue(
                    client, model, refusal, submitted, deadline, requeues
                )
                continue
            except ServerError as failure:
                requeues = self._requeue_server(
                    client, model, failure, submitted, deadline, requeues
                )
                continue
            self.adaptive_state(model).on_success(result.latency_s)
            return result

    # -- admission internals ---------------------------------------------------

    def _admit(
        self,
        client: "ChatClient",
        model: str,
        messages: Sequence[ChatMessage],
        submitted: float,
        deadline: float | None,
    ) -> float:
        """Reserve bucket capacity and charge the pacing wait.

        Returns the virtual wait charged (0.0 when admission was free).
        Raises :class:`DeadlineExceededError` -- before reserving or
        charging anything -- when the projected delay cannot meet the
        deadline, so hopeless requests spend no budget.
        """
        clock = client.clock
        arrival = clock.now()
        wait = 0.0
        request_bucket = self._request_bucket(model)
        token_bucket = self._token_bucket(model)
        adaptive_bucket = self._adaptive_bucket(model)
        cost = (
            self.estimate_cost_tokens(messages) if token_bucket is not None else 0
        )
        if deadline is not None:
            projected = (arrival - submitted) + self._peek_wait(
                model, arrival, cost, request_bucket, token_bucket, adaptive_bucket
            )
            if projected > deadline:
                client.stats.record_deadline(model)
                raise DeadlineExceededError(
                    f"request for {model!r} would wait {projected:.2f}s of "
                    f"virtual time, past its {deadline:.2f}s deadline",
                    deadline_s=deadline,
                    projected_s=projected,
                )
        if request_bucket is not None:
            wait = max(wait, request_bucket.reserve(arrival))
        if token_bucket is not None:
            wait = max(wait, token_bucket.reserve(arrival, float(cost)))
        if adaptive_bucket is not None:
            wait = max(wait, adaptive_bucket.reserve(arrival))
        if wait > 0.0:
            clock.charge(wait)
            client.stats.record_throttle(model, wait)
        return wait

    def _peek_wait(
        self,
        model: str,
        arrival: float,
        cost: int,
        request_bucket: PacingBucket | None,
        token_bucket: PacingBucket | None,
        adaptive_bucket: PacingBucket | None,
    ) -> float:
        wait = 0.0
        if request_bucket is not None:
            wait = max(wait, request_bucket.peek_wait(arrival))
        if token_bucket is not None:
            wait = max(wait, token_bucket.peek_wait(arrival, float(cost)))
        if adaptive_bucket is not None:
            wait = max(wait, adaptive_bucket.peek_wait(arrival))
        return wait

    def _adaptive_bucket(self, model: str) -> PacingBucket | None:
        """A pacing bucket expressing the current AIMD window, or None.

        Retargeted whenever the window/EWMA-implied rate drifts; the
        bucket keeps its pacing history across resizes.
        """
        rate = self.adaptive_state(model).rate_per_s()
        if rate is None:
            return None
        with self._lock:
            bucket = self._adaptive_buckets.get(model)
            if bucket is None:
                bucket = self._adaptive_buckets[model] = PacingBucket(
                    rate, float(self.policy.burst)
                )
            elif bucket.rate_per_s != rate:
                bucket.set_rate(rate)
            return bucket

    # -- batched issue ---------------------------------------------------------

    def _run_batched(
        self,
        client: "ChatClient",
        model: str,
        ticket: _BatchTicket,
        window: _BatchWindow,
    ) -> tuple[str, object, bool]:
        """Ride one grouped wire call; returns ``(disposition, payload, shrink)``.

        ``("ok", result, _)`` on success.  ``("refused", error, shrink)``
        sends the request to the requeue path -- ``shrink`` is False when
        the *whole* batch was refused, because the dispatcher already
        shrank the AIMD window once for the group and n members must not
        shrink it n more times.  Any other per-item failure raises here,
        isolating it to this request.
        """
        group = ticket.group
        if group.await_role(ticket) == "dispatch":
            self._dispatch_batch(client, model, group, window)
        assert group.outcome is not None
        disposition, payload, wait = group.outcome
        with client._span(
            "askit.admission", model=model, priority=ticket.priority
        ) as admission:
            if admission is not None:
                admission.set_attribute("pacing_wait_s", wait)
                admission.set_attribute("batch.size", len(group.members))
                admission.set_attribute("batch.index", ticket.index)
        if wait > 0.0:
            # Every member charges the group's admission wait to its own
            # clock lane: the lanes run in parallel, so the batch's
            # virtual wall-clock pays the wait once, like one request.
            client.clock.charge(wait)
            client.stats.record_throttle(model, wait)
        if disposition == "refusal":
            return ("refused", payload, False)
        if disposition == "error":
            raise payload  # type: ignore[misc]
        per_item = payload
        item = per_item[ticket.index]  # type: ignore[index]
        if isinstance(item, (RateLimitError, ServerError)):
            return ("refused", item, True)
        if isinstance(item, BaseException):
            raise item
        return ("ok", item, False)

    def _dispatch_batch(
        self,
        client: "ChatClient",
        model: str,
        group: _BatchGroup,
        window: _BatchWindow,
    ) -> None:
        """Admit and issue one wire call on behalf of a sealed group.

        Exactly one member runs this.  Admission goes through the same
        turnstile as solo traffic at the group's best member priority;
        the computed pacing wait is *not* charged here -- the dispatcher
        only publishes it, and each member charges its own lane.  The
        outcome is always resolved, whatever the wire call does, so no
        member can park forever.
        """
        wait = 0.0
        outcome: tuple[str, object, float]
        priority = min(ticket.priority for ticket in group.members)
        self._turnstile.acquire(priority)
        held = True
        try:
            wait = self._admit_batch(client, model, group)
            if not self.policy.serialize_issue:
                self._turnstile.release()
                held = False
            results = group.call([ticket.messages for ticket in group.members])
        except (RateLimitError, ServerError) as refusal:
            # One refusal for the whole wire call: shrink once here; the
            # members requeue (and retry solo) without shrinking again.
            self.adaptive_state(model).on_rate_limit()
            outcome = ("refusal", refusal, wait)
        except BaseException as failure:
            outcome = ("error", failure, wait)
        else:
            if len(results) != len(group.members):
                outcome = (
                    "error",
                    RuntimeError(
                        f"batched provider call returned {len(results)} results "
                        f"for {len(group.members)} requests"
                    ),
                    wait,
                )
            else:
                window.note_batch(len(group.members))
                outcome = ("results", results, wait)
        finally:
            if held:
                self._turnstile.release()
            group.resolve(outcome)

    def _admit_batch(
        self, client: "ChatClient", model: str, group: _BatchGroup
    ) -> float:
        """Reserve pacing capacity for one grouped wire call.

        Returns the wait each member must charge.  One request-bucket
        reservation covers all ``n`` members -- the batch is one request
        on the wire, which is the pacing multiplier batching exists for
        -- while the token bucket is reserved for the *sum* of the
        members' estimated costs (the provider still meters every
        token) and the adaptive bucket admits the call as one unit of
        in-flight work.
        """
        arrival = client.clock.now()
        wait = 0.0
        request_bucket = self._request_bucket(model)
        token_bucket = self._token_bucket(model)
        adaptive_bucket = self._adaptive_bucket(model)
        if request_bucket is not None:
            wait = max(wait, request_bucket.reserve(arrival))
        if token_bucket is not None:
            cost = sum(
                self.estimate_cost_tokens(ticket.messages)
                for ticket in group.members
            )
            wait = max(wait, token_bucket.reserve(arrival, float(cost)))
        if adaptive_bucket is not None:
            wait = max(wait, adaptive_bucket.reserve(arrival))
        return wait

    def _requeue(
        self,
        client: "ChatClient",
        model: str,
        refusal: RateLimitError,
        submitted: float,
        deadline: float | None,
        requeues: int,
        shrink: bool = True,
    ) -> int:
        """Handle one provider refusal; returns the new requeue count.

        Charges the provider's ``retry_after_s``, shrinks the AIMD
        window, and re-admits -- unless the requeue budget or the
        deadline is exhausted, in which case the refusal (or a
        :class:`DeadlineExceededError`) propagates.
        """
        stats = client.stats
        stats.record_rate_limited(model)
        if shrink:
            self.adaptive_state(model).on_rate_limit()
        if requeues >= self.policy.max_requeues:
            raise refusal
        penalty = refusal.retry_after_s
        if deadline is not None:
            projected = (client.clock.now() - submitted) + penalty
            if projected > deadline:
                stats.record_deadline(model)
                raise DeadlineExceededError(
                    f"rate-limited request for {model!r} cannot be requeued "
                    f"within its {deadline:.2f}s deadline "
                    f"(projected delay {projected:.2f}s)",
                    deadline_s=deadline,
                    projected_s=projected,
                ) from refusal
        client.clock.charge(penalty)
        stats.record_requeue(model, penalty)
        add_event(
            "scheduler.requeue",
            reason="rate_limited",
            retry_after_s=penalty,
            requeues=requeues + 1,
        )
        return requeues + 1

    def _requeue_server(
        self,
        client: "ChatClient",
        model: str,
        failure: ServerError,
        submitted: float,
        deadline: float | None,
        requeues: int,
        shrink: bool = True,
    ) -> int:
        """Handle one 5xx provider failure; returns the new requeue count.

        A 5xx that survives the transport's own retries is treated like
        a refusal: the AIMD window shrinks (an overloaded backend wants
        less pressure, not more), the failure's ``retry_after_s`` is
        charged, and the request requeues against the same budget and
        deadline as a 429.  Out of budget, the :class:`ServerError`
        propagates.
        """
        stats = client.stats
        stats.record_server_error(model)
        if shrink:
            self.adaptive_state(model).on_rate_limit()
        if requeues >= self.policy.max_requeues:
            raise failure
        penalty = failure.retry_after_s
        if deadline is not None:
            projected = (client.clock.now() - submitted) + penalty
            if projected > deadline:
                stats.record_deadline(model)
                raise DeadlineExceededError(
                    f"server-failing request for {model!r} cannot be requeued "
                    f"within its {deadline:.2f}s deadline "
                    f"(projected delay {projected:.2f}s)",
                    deadline_s=deadline,
                    projected_s=projected,
                ) from failure
        client.clock.charge(penalty)
        stats.record_requeue(model, penalty)
        add_event(
            "scheduler.requeue",
            reason="server_error",
            retry_after_s=penalty,
            requeues=requeues + 1,
        )
        return requeues + 1

    def __repr__(self) -> str:
        return f"RequestScheduler({self.policy!r})"
