"""The :class:`PromptTemplate` value object.

Wraps a parsed template and provides the three renderings AskIt needs:

* ``quoted()`` -- placeholders become ``'name'`` (Listing 2, line 11);
* ``where_clause(args)`` -- the ``where 'n' = 5, 'subject' = "..."`` line
  appended for direct-answer prompts (Listing 2, line 12);
* ``substituted(args)`` -- placeholders replaced by rendered values, used
  when asking the LLM to *code* a task whose prompt mentions the values.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from repro.errors import TemplateError
from repro.templates.parser import Segment, TextSegment, parameter_names, parse_template


class PromptTemplate:
    """An immutable, parsed ``{{var}}`` prompt template."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.segments: tuple[Segment, ...] = tuple(parse_template(text))
        self.parameters: tuple[str, ...] = tuple(parameter_names(list(self.segments)))

    # -- renderings ---------------------------------------------------

    def quoted(self) -> str:
        """Render with each placeholder replaced by its quoted name.

        ``"What is the sentiment of {{review}}?"`` becomes
        ``"What is the sentiment of 'review'?"``.
        """
        parts: list[str] = []
        for segment in self.segments:
            if isinstance(segment, TextSegment):
                parts.append(segment.text)
            else:
                parts.append(f"'{segment.name}'")
        return "".join(parts)

    def where_clause(self, args: Mapping[str, Any]) -> str:
        """The ``where 'a' = 1, 'b' = "x"`` binding line for a prompt.

        Returns an empty string for parameterless templates.  Values are
        rendered as JSON so the LLM sees unambiguous constants.
        """
        self.require_exact_args(args)
        if not self.parameters:
            return ""
        bindings = ", ".join(
            f"'{name}' = {json.dumps(args[name])}" for name in self.parameters
        )
        return f"where {bindings}"

    def substituted(self, args: Mapping[str, Any]) -> str:
        """Render with placeholders replaced by rendered argument values."""
        self.require_exact_args(args)
        parts: list[str] = []
        for segment in self.segments:
            if isinstance(segment, TextSegment):
                parts.append(segment.text)
            else:
                parts.append(json.dumps(args[segment.name]))
        return "".join(parts)

    # -- argument checking ---------------------------------------------

    def require_exact_args(self, args: Mapping[str, Any]) -> None:
        """Raise :class:`TemplateError` naming any unknown/missing parameters."""
        unknown = [name for name in args if name not in self.parameters]
        missing = [name for name in self.parameters if name not in args]
        if unknown or missing:
            problems = []
            if unknown:
                problems.append(f"unknown parameter(s) {unknown}")
            if missing:
                problems.append(f"missing parameter(s) {missing}")
            raise TemplateError(
                f"{' and '.join(problems)} for template {self.text!r} "
                f"(declared parameters: {list(self.parameters)})"
            )

    # Backwards-compatible alias (pre-Session internal name).
    _require_exact_args = require_exact_args

    def bind_positional(self, values: Sequence[Any]) -> dict[str, Any]:
        """Map positional values onto parameters in declaration order."""
        if len(values) != len(self.parameters):
            raise TemplateError(
                f"template {self.text!r} takes {len(self.parameters)} "
                f"argument(s), got {len(values)}"
            )
        return dict(zip(self.parameters, values))

    # -- value-object protocol ------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PromptTemplate) and other.text == self.text

    def __hash__(self) -> int:
        return hash(self.text)

    def __repr__(self) -> str:
        return f"PromptTemplate({self.text!r})"
