"""Prompt templates with ``{{var}}`` placeholders (Listing 1 of the paper)."""

from repro.templates.parser import (
    ParamSegment,
    Segment,
    TextSegment,
    parameter_names,
    parse_template,
)
from repro.templates.template import PromptTemplate

__all__ = [
    "PromptTemplate",
    "parse_template",
    "parameter_names",
    "Segment",
    "TextSegment",
    "ParamSegment",
]
