"""Parser for AskIt prompt templates.

A template is a string literal with ``{{identifier}}`` placeholders
(Listing 1 of the paper).  Parsing produces a sequence of segments --
literal text and parameter references -- from which we derive the
function's named parameters, render the runtime prompt (placeholders
become ``'identifier'``, the paper's Listing 2 treatment), and substitute
actual argument values for code-generation prompts.
"""

from __future__ import annotations

import re

from repro.errors import TemplateError

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_OPEN = "{{"
_CLOSE = "}}"


class TextSegment:
    """A literal run of template text."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text

    def __repr__(self) -> str:
        return f"TextSegment({self.text!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TextSegment) and other.text == self.text

    def __hash__(self) -> int:
        return hash(("text", self.text))


class ParamSegment:
    """A ``{{name}}`` placeholder."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"ParamSegment({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ParamSegment) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("param", self.name))


Segment = TextSegment | ParamSegment


def parse_template(text: str) -> list[Segment]:
    """Split template ``text`` into literal and placeholder segments.

    Raises :class:`TemplateError` for unterminated ``{{``, stray ``}}``,
    empty placeholders, and placeholder names that are not valid host
    language identifiers.
    """
    if not isinstance(text, str):
        raise TemplateError(f"template must be a string, got {type(text).__name__}")
    segments: list[Segment] = []
    index = 0
    length = len(text)
    while index < length:
        open_at = text.find(_OPEN, index)
        close_at = text.find(_CLOSE, index)
        if open_at == -1 and close_at == -1:
            segments.append(TextSegment(text[index:]))
            break
        if close_at != -1 and (open_at == -1 or close_at < open_at):
            raise TemplateError(
                f"unmatched '}}}}' at position {close_at} in template {text!r}"
            )
        if open_at > index:
            segments.append(TextSegment(text[index:open_at]))
        end = text.find(_CLOSE, open_at + len(_OPEN))
        if end == -1:
            raise TemplateError(
                f"unterminated '{{{{' at position {open_at} in template {text!r}"
            )
        name = text[open_at + len(_OPEN):end].strip()
        if not name:
            raise TemplateError(f"empty placeholder at position {open_at} in template {text!r}")
        if not _IDENTIFIER_RE.match(name):
            raise TemplateError(
                f"placeholder {name!r} is not a valid identifier in template {text!r}"
            )
        segments.append(ParamSegment(name))
        index = end + len(_CLOSE)
    return segments


def parameter_names(segments: list[Segment]) -> list[str]:
    """Placeholder names in first-occurrence order, deduplicated."""
    seen: list[str] = []
    for segment in segments:
        if isinstance(segment, ParamSegment) and segment.name not in seen:
            seen.append(segment.name)
    return seen
