"""An OpenAI-Evals-style benchmark corpus (Figures 6 and 7).

The paper took the first 50 benchmarks of the OpenAI Evals repository,
kept each benchmark's first test case, and rewrote the prompt for AskIt by
deleting the *format directives* -- the sentences telling the model how to
shape its reply ("respond with a single line in the format (x, y)", "answer
only YES or NO") -- because AskIt's typed prompt makes them redundant.
Figure 6 histograms the character-count reduction (16.14 % mean); Figure 7
counts the response types used.

That repository is not redistributable here, so this corpus reproduces the
*structure*: 50 benchmarks, each with a context-rich original prompt whose
format directive is explicit, the equivalent AskIt template (context and
task kept, directive dropped), and the AskIt response type.  Directive
shares follow the originals' spread: mostly modest, with a long tail of
benchmarks whose directives include worked format examples.

Like the originals, most tasks are beyond the model -- the experiment only
verifies that the typed response parses (Section IV-B).
"""

from __future__ import annotations

import repro.types as t
from repro.errors import DatasetError
from repro.types.base import Type


class EvalBenchmark:
    """One benchmark: original prompt, AskIt conversion, response type."""

    __slots__ = ("name", "original", "askit", "answer_type")

    def __init__(self, name: str, original: str, askit: str, answer_type: Type) -> None:
        self.name = name
        self.original = original
        self.askit = askit
        self.answer_type = answer_type

    @property
    def reduction_chars(self) -> int:
        return len(self.original) - len(self.askit)

    @property
    def reduction_percent(self) -> float:
        return 100.0 * self.reduction_chars / len(self.original)

    def __repr__(self) -> str:
        return f"EvalBenchmark({self.name!r}, -{self.reduction_chars} chars)"


_YN = t.union(t.literal("yes"), t.literal("no"))
_SENTIMENT = t.union(t.literal("positive"), t.literal("negative"), t.literal("neutral"))

#: The boilerplate system message the benchmarks share (OpenAI Evals chat
#: prompts carry one); it is task content, so both prompt versions keep it.
SYSTEM_PREAMBLE = (
    "You are a careful assistant taking a benchmark evaluation. Answer each "
    "task as accurately as you can, committing to your single best answer."
)


def _bench(name, context, body, directive, answer_type):
    askit = f"{SYSTEM_PREAMBLE}\n\n{context} {body}"
    original = f"{askit} {directive}"
    return EvalBenchmark(name, original, askit, answer_type)


BENCHMARKS: list[EvalBenchmark] = [
    _bench(
        "2d_movement",
        "You are an agent standing on an infinite two-dimensional grid. You begin "
        "every exercise at the origin (0, 0). Moving up increases y by one per cell, "
        "moving right increases x by one per cell, and the opposite directions "
        "decrease the respective coordinate. Each instruction is applied in order "
        "and no instruction is ever skipped or repeated.",
        "EXERCISE: you move up 3 cells, then right 2 cells, then down 1 cell. "
        "Where do you end up?",
        "Please note: In the following EXERCISE, it is essential that you only "
        "respond with a single line in the format (x, y). For example, if you end "
        "at x equal to 4 and y equal to -2 you must write (4, -2) and absolutely "
        "nothing else: no words, no units, no explanation of your path.",
        t.dict({"x": t.int, "y": t.int}),
    ),
    _bench(
        "born_first",
        "You are a careful history assistant. You will be given the names of two "
        "notable figures from the history of computing, both of whom made "
        "foundational contributions during the twentieth century. Consider the "
        "birth date of each person, not the date of their most famous work.",
        "Which person was born first: Alan Turing or Grace Hopper?",
        "Answer with just the person's full name and nothing else on the line.",
        t.str,
    ),
    _bench(
        "capital_flag",
        "You will answer a geography riddle. The riddle describes a national flag "
        "by its most recognizable feature, and your job is to reason from the flag "
        "to the country and from the country to its capital city. Assume present-day "
        "borders and present-day capitals, ignoring historical changes.",
        "What is the capital city of the country whose flag features a red maple "
        "leaf on a white square between two red bands?",
        "Respond with only the city name on a single line, with no punctuation.",
        t.str,
    ),
    _bench(
        "arithmetic_chain",
        "Perform the following chained mental arithmetic exactly as stated, applying "
        "each operation to the running result in the order given. Do not reorder the "
        "operations and do not round intermediate values at any step.",
        "Start with 17, multiply by 3, subtract 9, then divide by 6. What number "
        "results?",
        "Output only the final number with no explanation, no working, and no units. "
        "Write it in decimal notation, for example 7.5 rather than 15/2.",
        t.float,
    ),
    _bench(
        "is_anagram",
        "You are checking pairs of English words for the anagram relation: two words "
        "are anagrams when one can be formed by rearranging exactly the letters of "
        "the other, using every letter exactly once and ignoring letter case.",
        "Are the words 'listen' and 'silent' anagrams of each other?",
        "Reply strictly with YES or NO in capital letters and nothing more.",
        _YN,
    ),
    _bench(
        "review_sentiment",
        "You are a customer-feedback triage system for an electronics retailer. "
        "Each item you receive is one product review written by a customer after a "
        "purchase. Judge the overall sentiment the writer expresses about the "
        "product and their experience, not the politeness of their wording.",
        "Classify the sentiment of this review: 'The battery died after two days "
        "and support never replied to my emails.'",
        "Your answer must be exactly one of the words positive, negative, or "
        "neutral, written in lowercase, with no surrounding text of any kind.",
        _SENTIMENT,
    ),
    _bench(
        "next_in_sequence",
        "You will be shown a finite prefix of an integer sequence that follows one "
        "simple generating rule, such as a constant difference or a constant ratio "
        "between consecutive terms. Identify the rule from the prefix and apply it "
        "once more to produce the next term.",
        "What is the next number in the sequence 2, 6, 18, 54?",
        "Give only the number as digits with no commentary.",
        t.int,
    ),
    _bench(
        "roman_numeral",
        "You are converting modern Arabic numerals into classical Roman numerals "
        "using standard subtractive notation, where 4 is IV rather than IIII and "
        "900 is CM rather than DCCCC. The input is always a positive integer below "
        "four thousand, so the standard seven symbols suffice.",
        "Convert the number 1987 into Roman numerals.",
        "Write the Roman numeral alone on one line using capital letters only. Do "
        "not annotate it with the decimal value or any separators.",
        t.str,
    ),
    _bench(
        "odd_one_out",
        "You are given a short list of everyday words. Exactly one of them differs "
        "from the others in a basic category such as what kind of thing it names. "
        "Pick the word that does not belong with the rest of the list.",
        "Which word does not belong: apple, banana, carrot, cherry?",
        "Respond with the single odd word in lowercase and nothing else.",
        t.str,
    ),
    _bench(
        "true_false_physics",
        "You are answering elementary physics questions of the kind found in a "
        "secondary-school science quiz. Each statement is either true or false "
        "under everyday conditions on Earth at room temperature and one atmosphere "
        "of pressure, unless the statement itself says otherwise.",
        "True or false: sound travels faster in water than in air.",
        "Answer using exactly one word, either true or false, in lowercase.",
        t.bool,
    ),
    _bench(
        "count_vowels",
        "Count letters in a single English word. For this task the vowels are "
        "exactly the letters a, e, i, o, and u; the letter y never counts. Count "
        "every occurrence, including repeated letters.",
        "How many vowels are in the word 'onomatopoeia'?",
        "Provide just the count as an integer, without writing the word again.",
        t.int,
    ),
    _bench(
        "chess_castling",
        "You are a chess assistant. A position is described by listing where the "
        "relevant pieces stand; every piece not listed is absent. Assume neither "
        "side has moved the listed king or rook before, no square between them is "
        "attacked, and it is white's turn unless stated otherwise.",
        "White has a king on e1 and a rook on h1; black has only a king on e8. "
        "What castling move can white play?",
        "Reply in standard algebraic notation only, for example O-O or O-O-O, "
        "with no analysis, commentary, or move number.",
        t.str,
    ),
    _bench(
        "translate_greeting",
        "You are a translation assistant working between English and French. "
        "Translate idiomatically: choose the phrase a native speaker would "
        "actually say in the same situation, rather than a word-for-word gloss, "
        "and preserve the register of the original.",
        "Translate the everyday greeting 'good morning' into French.",
        "Give only the translated phrase with no quotation marks or comments.",
        t.str,
    ),
    _bench(
        "date_weekday",
        "You are computing weekdays from calendar dates in the proleptic Gregorian "
        "calendar. Dates are written in ISO 8601 year-month-day order. Take leap "
        "years into account exactly as the Gregorian rules prescribe.",
        "What day of the week was 2000-01-01?",
        "Answer with the weekday name only, capitalized, for example Monday.",
        t.str,
    ),
    _bench(
        "primes_above_100",
        "You are enumerating prime numbers in increasing order. Recall that a "
        "prime is an integer greater than one whose only positive divisors are "
        "one and itself; composite numbers and one itself are excluded.",
        "Name the first three prime numbers greater than 100.",
        "Format the response as a comma-separated list of the three numbers in "
        "increasing order with no prose before or after the list, like 2, 3, 5.",
        t.list(t.int),
    ),
    _bench(
        "json_extract_name",
        "You are reading a single JSON object that describes an employee record "
        "in a human-resources system. The object may contain several fields in "
        "any order; field names are case-sensitive and values are strings.",
        "From the record {\"name\": \"Ada\", \"role\": \"engineer\", \"team\": "
        "\"compilers\"}, what is the value of the name field?",
        "Output the bare value only, without quotes, labels, or explanation.",
        t.str,
    ),
    _bench(
        "rhyme_check",
        "You are judging whether two English words rhyme in standard American "
        "pronunciation. Two words rhyme when their sounds match from the vowel of "
        "the final stressed syllable to the end of the word; spelling alone does "
        "not decide the answer.",
        "Do the words 'cat' and 'hat' rhyme?",
        "You must reply with exactly yes or no, lowercase, nothing else.",
        _YN,
    ),
    _bench(
        "fahrenheit_to_celsius",
        "Convert temperatures between the Fahrenheit and Celsius scales using the "
        "exact affine relation between them; do not approximate the conversion "
        "factor. The input temperature is a physical reading, so treat it as exact.",
        "Convert 98.6 degrees Fahrenheit to Celsius.",
        "Respond with the numeric value only, rounded to one decimal place, with "
        "no units and no degree symbol.",
        t.float,
    ),
    _bench(
        "spelling_fix",
        "You are a spelling corrector for single English words. Each word you "
        "receive contains exactly one common misspelling, typically a transposed "
        "or substituted letter pair. Restore the conventional dictionary spelling "
        "without changing the intended word.",
        "Correct the spelling of the word 'recieve'.",
        "Return only the corrected word in lowercase with no commentary.",
        t.str,
    ),
    _bench(
        "logic_syllogism",
        "You are evaluating categorical syllogisms over made-up words, so that "
        "background knowledge cannot help. Treat each 'all X are Y' premise as "
        "strict set inclusion and decide whether the conclusion follows "
        "necessarily from the premises alone.",
        "All bloops are razzies. All razzies are lazzies. Are all bloops "
        "necessarily lazzies?",
        "Your entire response must be the single word yes or the single word no.",
        _YN,
    ),
    _bench(
        "sum_of_digits",
        "You are computing digit sums of integers written in base ten. The digit "
        "sum adds the face value of every digit once; it is not the repeated "
        "digital root, so do not iterate the process.",
        "What is the sum of the digits of 98765?",
        "Write just the sum as an integer and do not show your working.",
        t.int,
    ),
    _bench(
        "antonym",
        "You are building antonym pairs for a vocabulary exercise. Given one "
        "English word, produce a single word of the same part of speech with "
        "essentially the opposite meaning in its most common sense.",
        "Give an antonym of the verb 'expand'.",
        "Reply with one lowercase word only; do not offer several alternatives.",
        t.str,
    ),
    _bench(
        "haiku_syllables",
        "You are answering questions about the traditional Japanese haiku form as "
        "it is taught in English-language classrooms: three lines with a fixed "
        "syllable pattern that every schoolchild memorizes.",
        "How many syllables are in the first line of a traditional haiku?",
        "Answer with digits only on a single line.",
        t.int,
    ),
    _bench(
        "movie_year",
        "You are a film-history assistant. Questions concern widely documented "
        "milestones of cinema; answer from the standard historical record and, "
        "when releases span several countries, use the year of the original "
        "premiere in the production country.",
        "In what year was the first feature-length cel-animated film released?",
        "State the four-digit year alone with no sentence around it.",
        t.int,
    ),
    _bench(
        "email_valid",
        "You are validating strings against the everyday syntax of email "
        "addresses: a local part, a single at-sign, and a domain with at least "
        "one dot. You are not checking whether the mailbox exists, only whether "
        "the string is well-formed.",
        "Is 'user@@example.com' a syntactically valid email address?",
        "Respond exactly yes or no in lowercase; any other output is wrong.",
        _YN,
    ),
    _bench(
        "sort_words",
        "You are sorting short lists of English words using standard dictionary "
        "order, comparing letter by letter and ignoring case. No two words in a "
        "list are identical, so the order is always unique.",
        "Sort these words alphabetically: pear, apple, orange.",
        "Return them as a comma-separated list on one line with no numbering and "
        "no terminal period, exactly like: first, second, third.",
        t.list(t.str),
    ),
    _bench(
        "binary_of_13",
        "You are converting small non-negative integers from decimal to binary "
        "positional notation. Use the shortest representation, without leading "
        "zeros, and remember that the rightmost digit is the ones place.",
        "Write the number 13 in binary.",
        "Give only the binary digits with no 0b prefix and no explanation.",
        t.str,
    ),
    _bench(
        "country_of_city",
        "You are answering present-day political geography questions. For each "
        "named city, give the sovereign country that administers it today, using "
        "the country's common English short name rather than its formal title.",
        "Which country is the city of Kyoto in?",
        "Name the country only, with no preamble or punctuation.",
        t.str,
    ),
    _bench(
        "square_root",
        "You are extracting exact integer square roots. Each input is a perfect "
        "square, so the answer is always a whole number; negative roots are not "
        "considered in this exercise.",
        "What is the square root of 1764?",
        "Answer with the number alone; do not include the radical symbol.",
        t.int,
    ),
    _bench(
        "tip_calculation",
        "You are a restaurant-bill assistant for diners in the United States. "
        "The tip is computed on the pre-tax amount shown, and the total paid is "
        "the sum of the bill and the tip; no other fees apply.",
        "A meal costs 48 dollars and you tip 20 percent. What is the total paid?",
        "Provide the total as a plain number without a currency symbol.",
        t.float,
    ),
    _bench(
        "winograd_trophy",
        "You are resolving pronoun references in sentences crafted so that the "
        "referent depends on commonsense knowledge rather than grammar. Read the "
        "sentence and decide which noun the highlighted pronoun refers to.",
        "In 'The trophy would not fit in the suitcase because it was too big', "
        "what was too big?",
        "Reply with exactly one word, either trophy or suitcase, in lowercase.",
        t.union(t.literal("trophy"), t.literal("suitcase")),
    ),
    _bench(
        "dna_complement",
        "You are doing textbook molecular biology. DNA bases pair A with T and C "
        "with G. Given one strand written 5' to 3', the complementary strand is "
        "read back in its own 5' to 3' direction, which reverses the sequence.",
        "What is the complementary strand of the DNA sequence ATGC?",
        "Write only the four-letter strand in capital letters with no separators.",
        t.str,
    ),
    _bench(
        "leap_year_1900",
        "You are applying the Gregorian leap-year rules: years divisible by four "
        "are leap years, except century years, which must be divisible by four "
        "hundred. Apply the rules exactly; famous near-misses are the point of "
        "the exercise.",
        "Was the year 1900 a leap year?",
        "Answer strictly yes or no in lowercase with nothing appended.",
        _YN,
    ),
    _bench(
        "miles_to_km",
        "You are converting distances from miles to kilometers using the exact "
        "definition of the international mile as 1.609344 kilometers. Carry full "
        "precision through the computation and round only at the end.",
        "How many kilometers are in 26.2 miles?",
        "Respond with just the number rounded to two decimals, no units.",
        t.float,
    ),
    _bench(
        "word_count",
        "You are counting words in short English sentences. A word is a maximal "
        "run of characters separated by spaces; hyphenated compounds count as "
        "one word and punctuation attached to a word does not split it.",
        "How many words are in the sentence 'brevity is the soul of wit'?",
        "Give the count as digits only; do not repeat the sentence back.",
        t.int,
    ),
    _bench(
        "planet_order",
        "You are answering questions about the solar system as currently defined "
        "by the International Astronomical Union, under which there are eight "
        "planets ordered by their mean distance from the sun.",
        "Which planet is fourth from the sun?",
        "Name the planet only, capitalized, with no other words.",
        t.str,
    ),
    _bench(
        "acronym_expand",
        "You are expanding well-known technology acronyms into their full names. "
        "Give the expansion that the standards body or original authors use, not "
        "a folk etymology or a humorous variant.",
        "What does the acronym 'HTTP' stand for?",
        "Write the expansion only, in title case, without the acronym itself.",
        t.str,
    ),
    _bench(
        "die_probability",
        "You are computing elementary probabilities for a single fair six-sided "
        "die whose faces show one through six. Outcomes are equally likely, and "
        "probability is the count of favorable faces over six.",
        "What is the probability of rolling a number greater than 4?",
        "Express the answer as a decimal fraction only, for example 0.5, with "
        "no words, percentages, or fraction bars.",
        t.float,
    ),
    _bench(
        "greater_fraction",
        "You are comparing two positive fractions without a calculator. A robust "
        "method is to cross-multiply the numerators and denominators, which "
        "preserves the order of the fractions.",
        "Which fraction is larger: 3/7 or 2/5?",
        "Reply with the winning fraction exactly as written in the question, "
        "nothing else.",
        t.union(t.literal("3/7"), t.literal("2/5")),
    ),
    _bench(
        "iso_date",
        "You are normalizing human-written dates into machine-readable form. "
        "Interpret month names in English and assume the Gregorian calendar; "
        "two-digit day and month values must be zero-padded.",
        "Rewrite the date 'March 5, 2021' in ISO 8601 format.",
        "Output only the date in YYYY-MM-DD form on a single line.",
        t.str,
    ),
    _bench(
        "keyword_extract",
        "You are extracting named technologies from engineering status updates. "
        "The updates are informal English sentences; exactly one programming "
        "language is mentioned in each, possibly inflected or capitalized "
        "unusually.",
        "Extract the programming language mentioned in: 'We rewrote the service "
        "in Rust for performance.'",
        "Respond with the language name only; no quotes, no period.",
        t.str,
    ),
    _bench(
        "interrogative_check",
        "You are classifying English sentences by grammatical mood: declarative, "
        "interrogative, imperative, or exclamatory. Judge by the sentence's form "
        "and punctuation, not by the speaker's likely intention.",
        "Is 'Where are you going?' an interrogative sentence?",
        "Answer yes or no, lowercase, exactly one word.",
        _YN,
    ),
    _bench(
        "scrabble_score",
        "You are scoring words under standard English Scrabble letter values: "
        "one point for common letters like A and E, up to ten points for Q and "
        "Z. Score the bare word; board multipliers and bonuses do not apply.",
        "What is the score of the word 'quiz'?",
        "State the score as an integer only, with no per-letter breakdown.",
        t.int,
    ),
    _bench(
        "weekdays_with_t",
        "You are listing English weekday names that satisfy a spelling "
        "condition. Consider only the seven standard day names and compare "
        "against the condition case-insensitively.",
        "List the weekdays whose names start with the letter T.",
        "Format as a comma-separated list of capitalized day names and nothing "
        "more, for example: Monday, Friday.",
        t.list(t.str),
    ),
    _bench(
        "ice_melting_point",
        "You are stating standard physical constants as taught in introductory "
        "chemistry. Conditions are standard atmospheric pressure at sea level "
        "unless the question says otherwise.",
        "At what temperature in Celsius does ice melt?",
        "Reply with the number alone; degree symbols are not allowed.",
        t.int,
    ),
    _bench(
        "phrase_palindrome",
        "You are checking whether phrases read the same forwards and backwards "
        "once spaces and punctuation are removed and letter case is ignored. "
        "Apply exactly that normalization and no other.",
        "Is the phrase 'never odd or even' a palindrome?",
        "Your reply must be the single lowercase word yes or no.",
        _YN,
    ),
    _bench(
        "hex_to_decimal",
        "You are converting hexadecimal numerals to decimal. Digits above nine "
        "are written A through F in any letter case, and the input never has a "
        "0x prefix; treat it as an unsigned value.",
        "Convert the hexadecimal number FF to decimal.",
        "Write the decimal value only, with no prefix and no explanation.",
        t.int,
    ),
    _bench(
        "segment_midpoint",
        "You are doing coordinate geometry in the plane. The midpoint of a "
        "segment averages the x coordinates and the y coordinates of its "
        "endpoints; the inputs here are chosen so the result is exact.",
        "What is the midpoint of the segment from (2, 4) to (6, 10)?",
        "Respond with exactly two numbers in the format x, y and nothing else. "
        "For instance the midpoint of (0, 0) and (2, 2) must be written: 1, 1.",
        t.tuple_of(t.float, t.float),
    ),
    _bench(
        "book_author",
        "You are answering literary-history questions about canonical English-"
        "language novels. Attribute each work to its original author as "
        "published, ignoring later adaptations, abridgements, and film versions.",
        "Who wrote the novel 'Frankenstein'?",
        "Give the author's full name only, without dates or honorifics.",
        t.str,
    ),
    _bench(
        "currency_of_japan",
        "You are stating the official circulating currency of a named country "
        "as of the present day. Use the currency's common English name rather "
        "than its ISO code or symbol.",
        "What currency is used in Japan?",
        "Answer with the currency name alone, lowercase, no symbols.",
        t.str,
    ),
]


def all_benchmarks() -> list[EvalBenchmark]:
    """The 50 benchmarks in corpus order."""
    return list(BENCHMARKS)


def get_benchmark(name: str) -> EvalBenchmark:
    for benchmark in BENCHMARKS:
        if benchmark.name == name:
            return benchmark
    raise DatasetError(f"no benchmark named {name!r}")


def mean_reduction_percent() -> float:
    """Average prompt-length reduction across the corpus (Figure 6's stat)."""
    return sum(benchmark.reduction_percent for benchmark in BENCHMARKS) / len(BENCHMARKS)
