"""The 50 common coding tasks of Table II.

The paper asked ChatGPT for the fifty most commonly requested TypeScript
coding tasks and implemented each with a one-line AskIt ``define``.  The
paper prints the first ten plus notable rows (#11, #12, #14, #21, #24);
the remainder are reconstructed here in the same style.

Each task records the template prompt, the declared return type, the
TypeScript parameter types, and two validation examples.  Tasks #11 and
#21-#24 are the ones whose *Python* code generation failed in the paper
because pyaskit passes no parameter types to the LLM; the simulated model
reproduces that failure mode (see
``repro.llm.synthesis.catalog``).
"""

from __future__ import annotations

import repro.types as t
from repro.errors import DatasetError
from repro.ioexample import Example
from repro.types.base import Type


class CommonTask:
    """One Table II row: what the AskIt *user* writes."""

    __slots__ = ("number", "template", "return_type", "param_types", "examples")

    def __init__(
        self,
        number: int,
        template: str,
        return_type: Type,
        param_types: dict[str, Type],
        examples: list[Example],
    ) -> None:
        self.number = number
        self.template = template
        self.return_type = return_type
        self.param_types = param_types
        self.examples = examples

    def __repr__(self) -> str:
        return f"CommonTask(#{self.number}, {self.template!r})"


def _task(number, template, return_type, param_types, examples):
    return CommonTask(
        number,
        template,
        return_type,
        param_types,
        [Example(inputs, output) for inputs, output in examples],
    )


COMMON_TASKS: list[CommonTask] = [
    _task(1, "Reverse the string {{s}}.", t.str, {"s": t.str},
          [({"s": "hello"}, "olleh"), ({"s": "ab"}, "ba")]),
    _task(2, "Calculate the factorial of {{n}}.", t.int, {"n": t.int},
          [({"n": 5}, 120), ({"n": 0}, 1)]),
    _task(3, "Concatenate the strings {{ss}}.", t.str, {"ss": t.list(t.str)},
          [({"ss": ["a", "b", "c"]}, "abc"), ({"ss": []}, "")]),
    _task(4, "Sort the numbers {{ns}} in ascending order.", t.list(t.int), {"ns": t.list(t.int)},
          [({"ns": [3, 1, 2]}, [1, 2, 3]), ({"ns": [10, 9]}, [9, 10])]),
    _task(5, "Find the largest number in {{ns}}.", t.int, {"ns": t.list(t.int)},
          [({"ns": [3, 9, 4]}, 9), ({"ns": [-5, -2]}, -2)]),
    _task(6, "Check if {{n}} is a palindrome.", t.bool, {"n": t.int},
          [({"n": 12321}, True), ({"n": 123}, False)]),
    _task(7, "Calculate the sum of all numbers in {{ns}}.", t.int, {"ns": t.list(t.int)},
          [({"ns": [1, 2, 3]}, 6), ({"ns": []}, 0)]),
    _task(8, "Calculate the average of all numbers in {{ns}}.", t.float, {"ns": t.list(t.int)},
          [({"ns": [1, 2]}, 1.5), ({"ns": [4]}, 4.0)]),
    _task(9, "Count the number of occurrences of {{x}} in {{xs}}.", t.int,
          {"xs": t.list(t.int), "x": t.int},
          [({"xs": [1, 2, 1, 1], "x": 1}, 3), ({"xs": [2, 3], "x": 5}, 0)]),
    _task(10, "Remove all instances of {{x}} from {{xs}}.", t.list(t.int),
          {"xs": t.list(t.int), "x": t.int},
          [({"xs": [1, 2, 1, 3], "x": 1}, [2, 3]), ({"xs": [4], "x": 9}, [4])]),
    _task(11, "Return the unique elements in {{xs}}.", t.list(t.int), {"xs": t.list(t.int)},
          [({"xs": [1, 2, 2, 3, 1]}, [1, 2, 3]), ({"xs": []}, [])]),
    _task(12, "Find the factorial of {{n}}.", t.int, {"n": t.int},
          [({"n": 6}, 720), ({"n": 1}, 1)]),
    _task(13, "Check if the string {{s}} is a palindrome.", t.bool, {"s": t.str},
          [({"s": "racecar"}, True), ({"s": "abc"}, False)]),
    _task(14, "Generate the Fibonacci sequence up to {{n}}.", t.list(t.int), {"n": t.int},
          [({"n": 5}, [0, 1, 1, 2, 3]), ({"n": 1}, [0])]),
    _task(15, "Find the smallest number in {{ns}}.", t.int, {"ns": t.list(t.int)},
          [({"ns": [3, 9, 4]}, 3), ({"ns": [-5, -2]}, -5)]),
    _task(16, "Convert the string {{s}} to uppercase.", t.str, {"s": t.str},
          [({"s": "abC"}, "ABC"), ({"s": ""}, "")]),
    _task(17, "Convert the string {{s}} to lowercase.", t.str, {"s": t.str},
          [({"s": "AbC"}, "abc"), ({"s": "X"}, "x")]),
    _task(18, "Check if {{n}} is a prime number.", t.bool, {"n": t.int},
          [({"n": 13}, True), ({"n": 15}, False)]),
    _task(19, "Find all prime numbers up to {{n}}.", t.list(t.int), {"n": t.int},
          [({"n": 10}, [2, 3, 5, 7]), ({"n": 2}, [2])]),
    _task(20, "Compute the greatest common divisor of {{a}} and {{b}}.", t.int,
          {"a": t.int, "b": t.int},
          [({"a": 12, "b": 18}, 6), ({"a": 7, "b": 5}, 1)]),
    _task(21, "Convert the JSON object {{o}} into a string.", t.str, {"o": t.any},
          [({"o": {"a": 1}}, '{"a": 1}'), ({"o": [1, 2]}, "[1, 2]")]),
    _task(22, "Parse the JSON string {{s}} into an object.", t.any, {"s": t.str},
          [({"s": '{"a": 1}'}, {"a": 1}), ({"s": "[1, 2]"}, [1, 2])]),
    _task(23, "Merge the two objects {{o1}} and {{o2}}.", t.any,
          {"o1": t.any, "o2": t.any},
          [({"o1": {"a": 1}, "o2": {"b": 2}}, {"a": 1, "b": 2}),
           ({"o1": {"a": 1}, "o2": {"a": 3}}, {"a": 3})]),
    _task(24, "Find the difference between the dates {{d1}} and {{d2}} in days.", t.int,
          {"d1": t.str, "d2": t.str},
          [({"d1": "2024-01-01", "d2": "2024-01-11"}, 10),
           ({"d1": "2024-03-05", "d2": "2024-03-01"}, 4)]),
    _task(25, "Compute the least common multiple of {{a}} and {{b}}.", t.int,
          {"a": t.int, "b": t.int},
          [({"a": 4, "b": 6}, 12), ({"a": 3, "b": 5}, 15)]),
    _task(26, "Count the vowels in the string {{s}}.", t.int, {"s": t.str},
          [({"s": "banana"}, 3), ({"s": "xyz"}, 0)]),
    _task(27, "Check if the string {{s}} contains only digits.", t.bool, {"s": t.str},
          [({"s": "12345"}, True), ({"s": "12a45"}, False)]),
    _task(28, "Split the string {{s}} by the delimiter {{d}}.", t.list(t.str),
          {"s": t.str, "d": t.str},
          [({"s": "a,b,c", "d": ","}, ["a", "b", "c"]), ({"s": "xy", "d": "-"}, ["xy"])]),
    _task(29, "Join the strings {{ss}} with the separator {{sep}}.", t.str,
          {"ss": t.list(t.str), "sep": t.str},
          [({"ss": ["a", "b"], "sep": "-"}, "a-b"), ({"ss": [], "sep": ","}, "")]),
    _task(30, "Capitalize the first letter of each word in {{s}}.", t.str, {"s": t.str},
          [({"s": "hello world"}, "Hello World"), ({"s": "a"}, "A")]),
    _task(31, "Remove duplicate characters from the string {{s}}.", t.str, {"s": t.str},
          [({"s": "banana"}, "ban"), ({"s": "abc"}, "abc")]),
    _task(32, "Find the index of the first occurrence of {{x}} in {{xs}}.", t.int,
          {"xs": t.list(t.int), "x": t.int},
          [({"xs": [5, 3, 5], "x": 5}, 0), ({"xs": [1, 2], "x": 9}, -1)]),
    _task(33, "Check if the array {{xs}} is sorted in ascending order.", t.bool,
          {"xs": t.list(t.int)},
          [({"xs": [1, 2, 2, 3]}, True), ({"xs": [2, 1]}, False)]),
    _task(34, "Rotate the array {{xs}} to the left by {{k}} positions.", t.list(t.int),
          {"xs": t.list(t.int), "k": t.int},
          [({"xs": [1, 2, 3, 4], "k": 1}, [2, 3, 4, 1]),
           ({"xs": [1, 2, 3], "k": 5}, [3, 1, 2])]),
    _task(35, "Flatten the nested array {{xs}}.", t.list(t.int),
          {"xs": t.list(t.list(t.int))},
          [({"xs": [[1, 2], [3]]}, [1, 2, 3]), ({"xs": []}, [])]),
    _task(36, "Compute the dot product of the vectors {{v1}} and {{v2}}.", t.int,
          {"v1": t.list(t.int), "v2": t.list(t.int)},
          [({"v1": [1, 2], "v2": [3, 4]}, 11), ({"v1": [0], "v2": [9]}, 0)]),
    _task(37, "Transpose the matrix {{m}}.", t.list(t.list(t.int)),
          {"m": t.list(t.list(t.int))},
          [({"m": [[1, 2], [3, 4]]}, [[1, 3], [2, 4]]),
           ({"m": [[1, 2, 3]]}, [[1], [2], [3]])]),
    _task(38, "Find the second largest number in {{ns}}.", t.int, {"ns": t.list(t.int)},
          [({"ns": [4, 9, 7]}, 7), ({"ns": [1, 9, 9, 2]}, 9)]),
    _task(39, "Convert the number {{n}} to its binary representation.", t.str, {"n": t.int},
          [({"n": 10}, "1010"), ({"n": 0}, "0")]),
    _task(40, "Convert the binary string {{s}} to a number.", t.int, {"s": t.str},
          [({"s": "1010"}, 10), ({"s": "0"}, 0)]),
    _task(41, "Calculate {{n}} raised to the power {{p}}.", t.int,
          {"n": t.int, "p": t.int},
          [({"n": 2, "p": 10}, 1024), ({"n": 5, "p": 0}, 1)]),
    _task(42, "Compute the absolute difference between {{a}} and {{b}}.", t.int,
          {"a": t.int, "b": t.int},
          [({"a": 3, "b": 9}, 6), ({"a": 9, "b": 3}, 6)]),
    _task(43, "Check if the year {{y}} is a leap year.", t.bool, {"y": t.int},
          [({"y": 2024}, True), ({"y": 1900}, False)]),
    _task(44, "Convert the temperature {{c}} in Celsius to Fahrenheit.", t.float, {"c": t.float},
          [({"c": 100}, 212.0), ({"c": -40}, -40.0)]),
    _task(45, "Find the longest string in {{ss}}.", t.str, {"ss": t.list(t.str)},
          [({"ss": ["a", "abc", "ab"]}, "abc"), ({"ss": ["x"]}, "x")]),
    _task(46, "Count the words in the string {{s}}.", t.int, {"s": t.str},
          [({"s": "one two three"}, 3), ({"s": ""}, 0)]),
    _task(47, "Truncate the string {{s}} to {{n}} characters.", t.str,
          {"s": t.str, "n": t.int},
          [({"s": "hello", "n": 3}, "hel"), ({"s": "ab", "n": 5}, "ab")]),
    _task(48, "Pad the number {{n}} with zeros to width {{w}}.", t.str,
          {"n": t.int, "w": t.int},
          [({"n": 7, "w": 3}, "007"), ({"n": 1234, "w": 2}, "1234")]),
    _task(49, "Compute the running sum of {{ns}}.", t.list(t.int), {"ns": t.list(t.int)},
          [({"ns": [1, 2, 3]}, [1, 3, 6]), ({"ns": []}, [])]),
    _task(50, "Interleave the two arrays {{xs}} and {{ys}}.", t.list(t.int),
          {"xs": t.list(t.int), "ys": t.list(t.int)},
          [({"xs": [1, 3], "ys": [2, 4]}, [1, 2, 3, 4]),
           ({"xs": [1], "ys": [2, 4, 6]}, [1, 2, 4, 6])]),
]

#: Tasks whose Python code generation failed in the paper (Table II shows
#: LOC 0) because pyaskit's codegen prompt has no parameter types.
PYTHON_FAILING_TASKS = frozenset({11, 21, 22, 23, 24})


def get_task(number: int) -> CommonTask:
    """Look up a Table II task by its 1-based number."""
    if not 1 <= number <= len(COMMON_TASKS):
        raise DatasetError(f"common task #{number} does not exist")
    task = COMMON_TASKS[number - 1]
    assert task.number == number
    return task


def all_tasks() -> list[CommonTask]:
    """All fifty tasks, in Table II order."""
    return list(COMMON_TASKS)
