"""Synthetic GSM8K: grade-school math word problems.

The paper's Table III experiment runs the 1,319-problem GSM8K test set
through AskIt twice -- answering directly with GPT-4, then compiling each
problem into a function -- after converting the numbers in each problem
into variables.  The original corpus is not redistributable here, so this
module generates a parallel corpus: 36 problem *families* (each a
narrative template plus a ground-truth expression tree) instantiated with
seeded random values into 1,319 problems.

Because the substitution preserves exactly what the experiment needs --
problems with extractable numeric parameters and deterministic answers --
the direct-vs-compiled comparison and the numbers-to-variables
transformation behave as in the paper.  Families register themselves into
the simulated LLM's knowledge base: this is the stand-in for "GPT-4 has
seen grade-school math word problems".
"""

from __future__ import annotations

import random
import re
from typing import Callable

from repro.errors import DatasetError
from repro.llm.knowledge import KnowledgeBase, WordProblemFamily, global_knowledge, mask_numbers
from repro.mathexpr import Expr, Num, Var, add, div, mul, sub, var

DEFAULT_PROBLEM_COUNT = 1319
DEFAULT_SEED = 20240115

_SLOT_RE = re.compile(r"\{([a-z][a-z0-9_]*)\}")


class ProblemFamily:
    """A narrative template with typed slots and a ground-truth expression.

    ``expression`` is written over the slot *names*; registration rewrites
    it over positional ``n0, n1, ...`` (order of slot appearance in the
    text) because that is all the solver can recover from masked text.
    """

    def __init__(
        self,
        name: str,
        text: str,
        expression: Expr,
        sampler: Callable[[random.Random], dict[str, int]],
    ) -> None:
        self.name = name
        self.text = text
        self.expression = expression
        self.sampler = sampler
        self.slot_names = _SLOT_RE.findall(text)
        if not self.slot_names:
            raise DatasetError(f"family {name!r} has no slots")
        if len(set(self.slot_names)) != len(self.slot_names):
            raise DatasetError(f"family {name!r} repeats a slot in its text")

    def positional_expression(self) -> Expr:
        """The expression rewritten over ``n<i>`` by slot appearance order."""
        mapping = {slot: f"n{index}" for index, slot in enumerate(self.slot_names)}
        return _rename(self.expression, mapping)

    def askit_template(self) -> str:
        """The AskIt prompt template: slots as ``{{name}}`` placeholders."""
        return _SLOT_RE.sub(lambda match: "{{" + match.group(1) + "}}", self.text)

    def instantiate(self, values: dict[str, int]) -> tuple[str, float]:
        """Problem text with concrete values, plus the reference answer."""
        missing = [slot for slot in self.slot_names if slot not in values]
        if missing:
            raise DatasetError(f"family {self.name!r} missing values for {missing}")
        text = _SLOT_RE.sub(lambda match: str(values[match.group(1)]), self.text)
        answer = self.expression.evaluate({name: float(v) for name, v in values.items()})
        return text, answer

    def skeleton(self) -> str:
        sample_values = {slot: 1 for slot in self.slot_names}
        text, _ = self.instantiate(sample_values)
        return mask_numbers(text)[0]

    def __repr__(self) -> str:
        return f"ProblemFamily({self.name!r})"


def _rename(expression: Expr, mapping: dict[str, str]) -> Expr:
    from repro.mathexpr import BinOp

    if isinstance(expression, Var):
        return Var(mapping.get(expression.name, expression.name))
    if isinstance(expression, Num):
        return expression
    assert isinstance(expression, BinOp)
    return BinOp(
        expression.op,
        _rename(expression.left, mapping),
        _rename(expression.right, mapping),
    )


class GsmProblem:
    """One benchmark instance."""

    __slots__ = ("index", "family", "text", "template", "args", "answer")

    def __init__(
        self,
        index: int,
        family: ProblemFamily,
        text: str,
        template: str,
        args: dict[str, int],
        answer: float,
    ) -> None:
        self.index = index
        self.family = family
        self.text = text
        self.template = template
        self.args = args
        self.answer = answer

    def __repr__(self) -> str:
        return f"GsmProblem(#{self.index}, {self.family.name})"


# -- family definitions -------------------------------------------------------


def _ri(lo: int, hi: int) -> Callable[[random.Random], int]:
    return lambda rng: rng.randint(lo, hi)


def _families() -> list[ProblemFamily]:
    a, b, c, d = var("a"), var("b"), var("c"), var("d")

    def simple(**ranges):
        def sample(rng: random.Random) -> dict[str, int]:
            return {name: draw(rng) for name, draw in ranges.items()}

        return sample

    families = [
        ProblemFamily(
            "clips-altogether",
            "Natalia sold {a} clips in April and {b} clips in May. "
            "How many clips did Natalia sell altogether in April and May?",
            add(a, b),
            simple(a=_ri(12, 96), b=_ri(8, 80)),
        ),
        ProblemFamily(
            "babysitting-earnings",
            "Weng earns {a} dollars an hour for babysitting. Yesterday she "
            "worked for {b} hours. How much did she earn?",
            mul(a, b),
            simple(a=_ri(8, 25), b=_ri(2, 9)),
        ),
        ProblemFamily(
            "wallet-shortfall",
            "Betty has {a} dollars and needs {b} dollars for a new wallet. "
            "How much more money does Betty need?",
            sub(b, a),
            lambda rng: (lambda need: {"a": rng.randint(5, need - 1), "b": need})(
                rng.randint(40, 150)
            ),
        ),
        ProblemFamily(
            "muffins-next-day",
            "A baker made {a} muffins and sold {b} of them today. Each "
            "remaining muffin sells for {c} dollars tomorrow. How much money "
            "will the baker make tomorrow?",
            mul(sub(a, b), c),
            lambda rng: (lambda made: {"a": made, "b": rng.randint(1, made - 1), "c": rng.randint(2, 6)})(
                rng.randint(20, 60)
            ),
        ),
        ProblemFamily(
            "letter-pages-yearly",
            "James writes a {a} page letter to each of {b} friends twice a "
            "week. How many pages does he write in a year?",
            mul(mul(a, b), Num(104)),
            simple(a=_ri(2, 6), b=_ri(2, 4)),
        ),
        ProblemFamily(
            "robe-fiber",
            "A robe takes {a} bolts of blue fiber and half that much white "
            "fiber. How many bolts of fiber does it take in total?",
            add(a, div(a, Num(2))),
            lambda rng: {"a": 2 * rng.randint(1, 12)},
        ),
        ProblemFamily(
            "chicken-feed-week",
            "Every day Wendi gives each of her {a} chickens {b} cups of "
            "feed. How many cups of feed does she need for a full week?",
            mul(mul(a, b), Num(7)),
            simple(a=_ri(5, 40), b=_ri(2, 4)),
        ),
        ProblemFamily(
            "care-package-weight",
            "Ken poured jelly beans into a box until it weighed {a} pounds. "
            "Then he added brownies to triple the weight, and finally {b} "
            "more pounds of jelly beans. What was the final weight in pounds?",
            add(mul(a, Num(3)), b),
            simple(a=_ri(2, 10), b=_ri(2, 12)),
        ),
        ProblemFamily(
            "candles-used",
            "A candle lasts {c} hours. Zoe burns candles {a} hours a night "
            "for {b} nights. How many candles will she use?",
            div(mul(a, b), c),
            lambda rng: (lambda hours, per_candle: {
                "a": hours,
                "b": per_candle * rng.randint(2, 5),
                "c": hours * per_candle,
            })(rng.randint(2, 5), rng.randint(2, 4)),
        ),
        ProblemFamily(
            "hourly-pay-total",
            "Tina works {a} hours a day for {b} days and is paid {c} dollars "
            "per hour. How much does she earn in total?",
            mul(mul(a, b), c),
            simple(a=_ri(4, 10), b=_ri(3, 6), c=_ri(10, 30)),
        ),
        ProblemFamily(
            "bus-empty-seats",
            "A bus has {a} seats. {b} people board at the first stop and {c} "
            "more board at the second stop. How many empty seats are left?",
            sub(sub(a, b), c),
            lambda rng: (lambda seats: {
                "a": seats,
                "b": rng.randint(5, seats // 2),
                "c": rng.randint(1, seats // 3),
            })(rng.randint(40, 80)),
        ),
        ProblemFamily(
            "marbles-left",
            "Mark has {a} marbles. He gives {b} marbles to each of his {c} "
            "friends. How many marbles does Mark have left?",
            sub(a, mul(b, c)),
            lambda rng: (lambda per, friends: {
                "a": per * friends + rng.randint(1, 20),
                "b": per,
                "c": friends,
            })(rng.randint(2, 8), rng.randint(2, 6)),
        ),
        ProblemFamily(
            "corn-ears",
            "A farmer plants {a} rows of corn with {b} plants in each row. "
            "Each plant yields {c} ears of corn. How many ears of corn does "
            "the farmer harvest?",
            mul(mul(a, b), c),
            simple(a=_ri(3, 12), b=_ri(8, 30), c=_ri(1, 4)),
        ),
        ProblemFamily(
            "notebook-change",
            "Sara buys {a} notebooks at {b} dollars each and pays with a {c} "
            "dollar bill. How much change does she receive?",
            sub(c, mul(a, b)),
            lambda rng: (lambda count, price: {
                "a": count,
                "b": price,
                "c": count * price + rng.choice([1, 2, 5, 10]),
            })(rng.randint(2, 6), rng.randint(2, 8)),
        ),
        ProblemFamily(
            "students-present",
            "A school has {a} classes with {b} students in each class. If "
            "{c} students are absent today, how many students are present?",
            sub(mul(a, b), c),
            simple(a=_ri(4, 12), b=_ri(18, 32), c=_ri(3, 17)),
        ),
        ProblemFamily(
            "pages-left",
            "Tom reads {a} pages of his book every day. The book has {b} "
            "pages. After reading for {c} days, how many pages does Tom "
            "still have left to read?",
            sub(b, mul(a, c)),
            lambda rng: (lambda rate, days: {
                "a": rate,
                "b": rate * days + rng.randint(10, 80),
                "c": days,
            })(rng.randint(8, 25), rng.randint(2, 7)),
        ),
        ProblemFamily(
            "tank-fill-minutes",
            "A tank holds {a} liters of water. A pump fills it at {b} liters "
            "per minute. How many minutes does it take to fill the tank?",
            div(a, b),
            lambda rng: (lambda rate, minutes: {"a": rate * minutes, "b": rate})(
                rng.randint(3, 15), rng.randint(4, 30)
            ),
        ),
        ProblemFamily(
            "candies-per-bag",
            "Lisa splits {a} candies equally among {b} bags. How many "
            "candies go into each bag?",
            div(a, b),
            lambda rng: (lambda per, bags: {"a": per * bags, "b": bags})(
                rng.randint(3, 20), rng.randint(2, 9)
            ),
        ),
        ProblemFamily(
            "sale-shirts",
            "A shirt normally costs {a} dollars. During a sale the price is "
            "reduced by {b} dollars. Anna buys {c} shirts on sale. How much "
            "does she pay?",
            mul(sub(a, b), c),
            lambda rng: (lambda price: {
                "a": price,
                "b": rng.randint(2, price - 3),
                "c": rng.randint(2, 6),
            })(rng.randint(15, 50)),
        ),
        ProblemFamily(
            "daily-run-total",
            "Jake runs {a} miles every morning and {b} miles every evening. "
            "How many miles does he run in {c} days?",
            mul(add(a, b), c),
            simple(a=_ri(1, 6), b=_ri(1, 6), c=_ri(3, 14)),
        ),
        ProblemFamily(
            "pizza-slices-left",
            "Each pizza is cut into {a} slices. A group orders {b} pizzas "
            "and eats {c} slices. How many slices remain?",
            sub(mul(a, b), c),
            lambda rng: (lambda slices, pizzas: {
                "a": slices,
                "b": pizzas,
                "c": rng.randint(1, slices * pizzas - 1),
            })(rng.choice([6, 8, 10, 12]), rng.randint(2, 5)),
        ),
        ProblemFamily(
            "savings-after-gift",
            "Nina saves {a} dollars each week. After saving for {b} weeks "
            "she spends {c} dollars on a gift. How much money does she have "
            "left?",
            sub(mul(a, b), c),
            lambda rng: (lambda rate, weeks: {
                "a": rate,
                "b": weeks,
                "c": rng.randint(1, rate * weeks - 1),
            })(rng.randint(5, 25), rng.randint(4, 12)),
        ),
        ProblemFamily(
            "red-blue-balls",
            "There are {a} red balls in a box and twice as many blue balls. "
            "How many balls are in the box altogether?",
            add(a, mul(a, Num(2))),
            simple(a=_ri(4, 60)),
        ),
        ProblemFamily(
            "train-distance",
            "A train travels at {a} miles per hour for {b} hours, then at "
            "{c} miles per hour for {d} hours. How far does the train "
            "travel in total?",
            add(mul(a, b), mul(c, d)),
            simple(a=_ri(30, 80), b=_ri(1, 5), c=_ri(20, 70), d=_ri(1, 5)),
        ),
        ProblemFamily(
            "library-books",
            "A library has {a} shelves with {b} books on each shelf. The "
            "librarian removes {c} damaged books and adds {d} new books. "
            "How many books does the library have now?",
            add(sub(mul(a, b), c), d),
            lambda rng: (lambda shelves, per: {
                "a": shelves,
                "b": per,
                "c": rng.randint(1, shelves * per // 2),
                "d": rng.randint(5, 60),
            })(rng.randint(5, 20), rng.randint(10, 40)),
        ),
        ProblemFamily(
            "stationery-cents",
            "Leo buys {a} pencils for {b} cents each and {c} erasers for "
            "{d} cents each. How much does he spend in cents?",
            add(mul(a, b), mul(c, d)),
            simple(a=_ri(2, 12), b=_ri(5, 50), c=_ri(1, 8), d=_ri(10, 60)),
        ),
        ProblemFamily(
            "garden-area",
            "A garden is {a} feet long and {b} feet wide. What is the area "
            "of the garden in square feet?",
            mul(a, b),
            simple(a=_ri(6, 40), b=_ri(4, 30)),
        ),
        ProblemFamily(
            "rectangle-perimeter",
            "A rectangle is {a} meters long and {b} meters wide. What is "
            "its perimeter in meters?",
            mul(add(a, b), Num(2)),
            simple(a=_ri(3, 40), b=_ri(2, 30)),
        ),
        ProblemFamily(
            "sticker-count",
            "Amy had {a} stickers. She bought {b} more stickers and gave "
            "away {c} stickers. How many stickers does Amy have now?",
            sub(add(a, b), c),
            lambda rng: (lambda start, bought: {
                "a": start,
                "b": bought,
                "c": rng.randint(1, start + bought - 1),
            })(rng.randint(10, 80), rng.randint(5, 40)),
        ),
        ProblemFamily(
            "movie-minutes",
            "A movie lasts {a} minutes. The cinema shows it {b} times every "
            "day. How many minutes of playtime is that per day?",
            mul(a, b),
            simple(a=_ri(80, 180), b=_ri(2, 6)),
        ),
        ProblemFamily(
            "pencils-per-classroom",
            "A box contains {a} pencils. A school orders {b} boxes and "
            "shares the pencils equally among {c} classrooms. How many "
            "pencils does each classroom receive?",
            div(mul(a, b), c),
            lambda rng: (lambda rooms: {
                "a": rooms * rng.randint(2, 5),
                "b": rng.randint(2, 6),
                "c": rooms,
            })(rng.randint(2, 8)),
        ),
        ProblemFamily(
            "download-minutes",
            "Carla downloads a file of {a} gigabytes at a speed of {b} "
            "gigabytes per minute. How many minutes does the download take?",
            div(a, b),
            lambda rng: (lambda rate, minutes: {"a": rate * minutes, "b": rate})(
                rng.randint(2, 8), rng.randint(3, 25)
            ),
        ),
        ProblemFamily(
            "water-cups-weeks",
            "Max drinks {a} cups of water every day. How many cups of water "
            "does he drink in {b} weeks?",
            mul(mul(a, Num(7)), b),
            simple(a=_ri(4, 12), b=_ri(1, 6)),
        ),
        ProblemFamily(
            "crates-packed",
            "Each worker packs {a} crates per hour. How many crates do {b} "
            "workers pack in {c} hours?",
            mul(mul(a, b), c),
            simple(a=_ri(3, 15), b=_ri(2, 10), c=_ri(2, 8)),
        ),
        ProblemFamily(
            "apples-price-kilo",
            "Apples cost {a} dollars per kilogram. Hannah buys {b} "
            "kilograms and hands over {c} dollars. How much change does "
            "she get back?",
            sub(c, mul(a, b)),
            lambda rng: (lambda price, kilos: {
                "a": price,
                "b": kilos,
                "c": price * kilos + rng.choice([1, 2, 5, 10, 20]),
            })(rng.randint(2, 6), rng.randint(2, 8)),
        ),
        ProblemFamily(
            "fence-posts-cost",
            "A fence needs {a} posts. Each post costs {b} dollars and "
            "installation adds {c} dollars per post. What is the total "
            "cost of the fence?",
            mul(a, add(b, c)),
            simple(a=_ri(8, 40), b=_ri(5, 30), c=_ri(2, 15)),
        ),
    ]
    return families


_FAMILIES_CACHE: list[ProblemFamily] | None = None


def families() -> list[ProblemFamily]:
    """The 36 problem families, built once."""
    global _FAMILIES_CACHE
    if _FAMILIES_CACHE is None:
        _FAMILIES_CACHE = _families()
        skeletons = [family.skeleton() for family in _FAMILIES_CACHE]
        if len(set(skeletons)) != len(skeletons):
            raise DatasetError("two GSM8K families share a masked skeleton")
    return _FAMILIES_CACHE


def register_families(knowledge: KnowledgeBase | None = None) -> None:
    """Teach the simulated model every family (idempotent)."""
    knowledge = knowledge if knowledge is not None else global_knowledge()
    for family in families():
        knowledge.register_family(
            WordProblemFamily(family.skeleton(), family.positional_expression(), family.name)
        )


def generate_dataset(
    count: int = DEFAULT_PROBLEM_COUNT,
    seed: int = DEFAULT_SEED,
    knowledge: KnowledgeBase | None = None,
) -> list[GsmProblem]:
    """Generate the benchmark corpus and register families with the model.

    Instances cycle through families so every family contributes evenly;
    values are drawn from a single seeded RNG for reproducibility.
    """
    if count < 1:
        raise DatasetError("count must be positive")
    register_families(knowledge)
    rng = random.Random(seed)
    problems: list[GsmProblem] = []
    family_list = families()
    for index in range(count):
        family = family_list[index % len(family_list)]
        values = family.sampler(rng)
        text, answer = family.instantiate(values)
        problems.append(
            GsmProblem(index, family, text, family.askit_template(), values, answer)
        )
    return problems


def answers_match(expected: float, actual: float, tolerance: float = 1e-6) -> bool:
    """GSM8K scoring: numeric equality with tolerance."""
    try:
        return abs(float(expected) - float(actual)) <= tolerance
    except (TypeError, ValueError):
        return False
