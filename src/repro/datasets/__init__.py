"""Benchmark datasets: the paper's evaluation workloads, rebuilt."""

from repro.datasets import common_tasks, gsm8k, humaneval, openai_evals

__all__ = ["common_tasks", "gsm8k", "humaneval", "openai_evals"]
