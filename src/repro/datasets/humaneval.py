"""A HumanEval-style coding benchmark (Figure 5).

HumanEval pairs natural-language task prompts with hand-written canonical
solutions and unit tests; the paper feeds the prompts to AskIt as
templates, uses the tests as validation examples, and compares the LOC of
generated code against the hand-written solutions (84.8 % of 164 tasks
generated successfully; generated code averaged 1.27x the hand-written
length, yet was *shorter* in 35 % of tasks).

The original dataset is not redistributable here, so this module provides
a parallel corpus of 81 tasks with the same schema: a prompt template, a
hand-written canonical solution, unit tests, and the implementation the
simulated model produces (its "knowledge" of the task).  Twelve tasks are
marked unsolvable -- the model's implementation is subtly wrong and never
passes the tests -- reproducing the paper's 84.8 % success rate.
"""

from __future__ import annotations

from repro.errors import DatasetError
from repro.ioexample import Example


class HumanEvalTask:
    """One benchmark task."""

    __slots__ = (
        "task_id",
        "entry_point",
        "description",
        "params",
        "canonical_solution",
        "llm_body",
        "llm_solvable",
        "tests",
    )

    def __init__(
        self,
        task_id: str,
        entry_point: str,
        description: str,
        params: list[str],
        canonical_solution: str,
        llm_body: str,
        tests: list[tuple],
        llm_solvable: bool = True,
    ) -> None:
        self.task_id = task_id
        self.entry_point = entry_point
        self.description = description
        self.params = params
        self.canonical_solution = canonical_solution
        self.llm_body = llm_body
        self.llm_solvable = llm_solvable
        self.tests = [Example(inputs, output) for inputs, output in tests]

    def __repr__(self) -> str:
        return f"HumanEvalTask({self.task_id}, {self.entry_point!r})"


_TASKS: list[HumanEvalTask] = []


def _task(entry_point, description, params, canonical, llm_body, tests, solvable=True):
    _TASKS.append(
        HumanEvalTask(
            f"SynthEval/{len(_TASKS)}",
            entry_point,
            description,
            params,
            canonical,
            llm_body,
            tests,
            solvable,
        )
    )


# ---------------------------------------------------------------------------
# Task corpus.  `canonical` is the full hand-written function; `llm_body` is
# only the body the simulated model emits (the AskIt stub provides the def).
# ---------------------------------------------------------------------------

_task(
    "has_close_elements",
    "Check if in the list of numbers {{numbers}}, any two numbers are closer to each other than the threshold {{threshold}}.",
    ["numbers", "threshold"],
    "def has_close_elements(numbers, threshold):\n"
    "    for i, a in enumerate(numbers):\n"
    "        for b in numbers[i + 1:]:\n"
    "            if abs(a - b) < threshold:\n"
    "                return True\n"
    "    return False\n",
    "for i in range(len(numbers)):\n"
    "    for j in range(len(numbers)):\n"
    "        if i != j:\n"
    "            distance = abs(numbers[i] - numbers[j])\n"
    "            if distance < threshold:\n"
    "                return True\n"
    "return False",
    [
        ({"numbers": [1.0, 2.0, 3.9, 4.0, 5.0, 2.2], "threshold": 0.3}, True),
        ({"numbers": [1.0, 2.0, 3.9, 4.0, 5.0, 2.2], "threshold": 0.05}, False),
        ({"numbers": [1.0, 2.0, 3.0], "threshold": 0.5}, False),
    ],
)

_task(
    "separate_paren_groups",
    "Separate the string {{paren_string}} of multiple nested parentheses groups into a list of the top-level balanced groups, ignoring spaces.",
    ["paren_string"],
    "def separate_paren_groups(paren_string):\n"
    "    groups, depth, current = [], 0, []\n"
    "    for ch in paren_string:\n"
    "        if ch == ' ':\n"
    "            continue\n"
    "        current.append(ch)\n"
    "        depth += 1 if ch == '(' else -1\n"
    "        if depth == 0:\n"
    "            groups.append(''.join(current))\n"
    "            current = []\n"
    "    return groups\n",
    "result = []\n"
    "depth = 0\n"
    "current = ''\n"
    "for ch in paren_string:\n"
    "    if ch == ' ':\n"
    "        continue\n"
    "    current += ch\n"
    "    if ch == '(':\n"
    "        depth += 1\n"
    "    else:\n"
    "        depth -= 1\n"
    "    if depth == 0:\n"
    "        result.append(current)\n"
    "        current = ''\n"
    "return result",
    [
        ({"paren_string": "( ) (( )) (( )( ))"}, ["()", "(())", "(()())"]),
        ({"paren_string": "()"}, ["()"]),
        ({"paren_string": "(()) ()"}, ["(())", "()"]),
    ],
)

_task(
    "truncate_number",
    "Given a positive floating point number {{number}}, return its decimal part, which is always smaller than 1.",
    ["number"],
    "def truncate_number(number):\n"
    "    return number % 1.0\n",
    "integer_part = int(number)\n"
    "return number - integer_part",
    [
        ({"number": 3.5}, 0.5),
        ({"number": 10.0}, 0.0),
        ({"number": 1.25}, 0.25),
    ],
)

_task(
    "below_zero",
    "Given a list {{operations}} of deposit and withdrawal operations on a bank account starting from zero balance, detect if the balance falls below zero at any point.",
    ["operations"],
    "def below_zero(operations):\n"
    "    balance = 0\n"
    "    for amount in operations:\n"
    "        balance += amount\n"
    "        if balance < 0:\n"
    "            return True\n"
    "    return False\n",
    "balance = 0\n"
    "for operation in operations:\n"
    "    balance = balance + operation\n"
    "    if balance < 0:\n"
    "        return True\n"
    "return False",
    [
        ({"operations": [1, 2, 3]}, False),
        ({"operations": [1, 2, -4, 5]}, True),
        ({"operations": []}, False),
    ],
)

_task(
    "mean_absolute_deviation",
    "For the list of numbers {{numbers}}, calculate the mean absolute deviation around the mean of the dataset.",
    ["numbers"],
    "def mean_absolute_deviation(numbers):\n"
    "    mean = sum(numbers) / len(numbers)\n"
    "    return sum(abs(x - mean) for x in numbers) / len(numbers)\n",
    "mean = sum(numbers) / len(numbers)\n"
    "total = 0.0\n"
    "for x in numbers:\n"
    "    total += abs(x - mean)\n"
    "return total / len(numbers)",
    [
        ({"numbers": [1.0, 2.0, 3.0, 4.0]}, 1.0),
        ({"numbers": [1.0, 1.0, 1.0]}, 0.0),
        ({"numbers": [2.0, 4.0]}, 1.0),
    ],
)

_task(
    "intersperse",
    "Insert the number {{delimeter}} between every two consecutive elements of the input list {{numbers}}.",
    ["numbers", "delimeter"],
    "def intersperse(numbers, delimeter):\n"
    "    result = []\n"
    "    for value in numbers[:-1]:\n"
    "        result += [value, delimeter]\n"
    "    if numbers:\n"
    "        result.append(numbers[-1])\n"
    "    return result\n",
    "if not numbers:\n"
    "    return []\n"
    "result = [numbers[0]]\n"
    "for value in numbers[1:]:\n"
    "    result.append(delimeter)\n"
    "    result.append(value)\n"
    "return result",
    [
        ({"numbers": [], "delimeter": 4}, []),
        ({"numbers": [1, 2, 3], "delimeter": 4}, [1, 4, 2, 4, 3]),
        ({"numbers": [5], "delimeter": 9}, [5]),
    ],
)

_task(
    "parse_nested_parens",
    "For the string {{paren_string}} of space-separated groups of nested parentheses, return the deepest nesting level of each group as a list.",
    ["paren_string"],
    "def parse_nested_parens(paren_string):\n"
    "    def depth(group):\n"
    "        best = level = 0\n"
    "        for ch in group:\n"
    "            level += 1 if ch == '(' else -1\n"
    "            best = max(best, level)\n"
    "        return best\n"
    "    return [depth(group) for group in paren_string.split()]\n",
    "levels = []\n"
    "for group in paren_string.split():\n"
    "    level = 0\n"
    "    deepest = 0\n"
    "    for ch in group:\n"
    "        if ch == '(':\n"
    "            level += 1\n"
    "            if level > deepest:\n"
    "                deepest = level\n"
    "        else:\n"
    "            level -= 1\n"
    "    levels.append(deepest)\n"
    "return levels",
    [
        ({"paren_string": "(()()) ((())) () ((())()())"}, [2, 3, 1, 3]),
        ({"paren_string": "()"}, [1]),
        ({"paren_string": "(()) (((())))"}, [2, 4]),
    ],
)

_task(
    "filter_by_substring",
    "Filter the list of strings {{strings}} to only those containing the given substring {{substring}}.",
    ["strings", "substring"],
    "def filter_by_substring(strings, substring):\n"
    "    return [s for s in strings if substring in s]\n",
    "result = []\n"
    "for s in strings:\n"
    "    if substring in s:\n"
    "        result.append(s)\n"
    "return result",
    [
        ({"strings": [], "substring": "a"}, []),
        ({"strings": ["abc", "bacd", "cde", "array"], "substring": "a"}, ["abc", "bacd", "array"]),
        ({"strings": ["xxx", "yyy"], "substring": "x"}, ["xxx"]),
    ],
)

_task(
    "sum_product",
    "For the list of integers {{numbers}}, return a list with the sum and the product of all the integers; an empty sum is 0 and an empty product is 1.",
    ["numbers"],
    "def sum_product(numbers):\n"
    "    total, product = 0, 1\n"
    "    for value in numbers:\n"
    "        total += value\n"
    "        product *= value\n"
    "    return [total, product]\n",
    "total = 0\n"
    "product = 1\n"
    "for value in numbers:\n"
    "    total = total + value\n"
    "    product = product * value\n"
    "return [total, product]",
    [
        ({"numbers": []}, [0, 1]),
        ({"numbers": [1, 2, 3, 4]}, [10, 24]),
        ({"numbers": [5]}, [5, 5]),
    ],
)

_task(
    "rolling_max",
    "From the list of integers {{numbers}}, generate a list of the rolling maximum element found until that moment in the sequence.",
    ["numbers"],
    "def rolling_max(numbers):\n"
    "    result, best = [], None\n"
    "    for value in numbers:\n"
    "        best = value if best is None else max(best, value)\n"
    "        result.append(best)\n"
    "    return result\n",
    "result = []\n"
    "current_max = None\n"
    "for value in numbers:\n"
    "    if current_max is None or value > current_max:\n"
    "        current_max = value\n"
    "    result.append(current_max)\n"
    "return result",
    [
        ({"numbers": [1, 2, 3, 2, 3, 4, 2]}, [1, 2, 3, 3, 3, 4, 4]),
        ({"numbers": []}, []),
        ({"numbers": [4, 1, 1]}, [4, 4, 4]),
    ],
)

_task(
    "string_xor",
    "Given two strings {{a}} and {{b}} consisting only of 1s and 0s, perform binary XOR on them and return the result as a string.",
    ["a", "b"],
    "def string_xor(a, b):\n"
    "    return ''.join('0' if x == y else '1' for x, y in zip(a, b))\n",
    "result = ''\n"
    "for x, y in zip(a, b):\n"
    "    if x == y:\n"
    "        result += '0'\n"
    "    else:\n"
    "        result += '1'\n"
    "return result",
    [
        ({"a": "010", "b": "110"}, "100"),
        ({"a": "111", "b": "111"}, "000"),
        ({"a": "0", "b": "1"}, "1"),
    ],
)

_task(
    "longest",
    "Out of the list of strings {{strings}}, return the longest one; return the first one in case of ties, and None for an empty list.",
    ["strings"],
    "def longest(strings):\n"
    "    if not strings:\n"
    "        return None\n"
    "    return max(strings, key=len)\n",
    "if not strings:\n"
    "    return None\n"
    "best = strings[0]\n"
    "for s in strings:\n"
    "    if len(s) > len(best):\n"
    "        best = s\n"
    "return best",
    [
        ({"strings": []}, None),
        ({"strings": ["a", "b", "c"]}, "a"),
        ({"strings": ["a", "bb", "ccc"]}, "ccc"),
    ],
)

_task(
    "greatest_common_divisor",
    "Return the greatest common divisor of two integers {{a}} and {{b}}.",
    ["a", "b"],
    "def greatest_common_divisor(a, b):\n"
    "    while b:\n"
    "        a, b = b, a % b\n"
    "    return a\n",
    "x = a\n"
    "y = b\n"
    "while y != 0:\n"
    "    remainder = x % y\n"
    "    x = y\n"
    "    y = remainder\n"
    "return x",
    [
        ({"a": 3, "b": 5}, 1),
        ({"a": 25, "b": 15}, 5),
        ({"a": 12, "b": 18}, 6),
    ],
)

_task(
    "all_prefixes",
    "Return a list of all prefixes of the string {{string}} from shortest to longest.",
    ["string"],
    "def all_prefixes(string):\n"
    "    return [string[:i + 1] for i in range(len(string))]\n",
    "prefixes = []\n"
    "for i in range(1, len(string) + 1):\n"
    "    prefixes.append(string[:i])\n"
    "return prefixes",
    [
        ({"string": "abc"}, ["a", "ab", "abc"]),
        ({"string": ""}, []),
        ({"string": "xy"}, ["x", "xy"]),
    ],
)

_task(
    "string_sequence",
    "Return a string containing space-delimited numbers starting from 0 up to {{n}} inclusive.",
    ["n"],
    "def string_sequence(n):\n"
    "    return ' '.join(str(i) for i in range(n + 1))\n",
    "parts = []\n"
    "for i in range(n + 1):\n"
    "    parts.append(str(i))\n"
    "return ' '.join(parts)",
    [
        ({"n": 0}, "0"),
        ({"n": 5}, "0 1 2 3 4 5"),
        ({"n": 2}, "0 1 2"),
    ],
)

_task(
    "count_distinct_characters",
    "Given the string {{string}}, find out how many distinct characters it consists of, regardless of case.",
    ["string"],
    "def count_distinct_characters(string):\n"
    "    return len(set(string.lower()))\n",
    "seen = set()\n"
    "for ch in string.lower():\n"
    "    seen.add(ch)\n"
    "return len(seen)",
    [
        ({"string": "xyzXYZ"}, 3),
        ({"string": "Jerry"}, 4),
        ({"string": ""}, 0),
    ],
)

_task(
    "flip_case",
    "For the string {{string}}, flip lowercase characters to uppercase and uppercase to lowercase.",
    ["string"],
    "def flip_case(string):\n"
    "    return string.swapcase()\n",
    "result = ''\n"
    "for ch in string:\n"
    "    if ch.isupper():\n"
    "        result += ch.lower()\n"
    "    else:\n"
    "        result += ch.upper()\n"
    "return result",
    [
        ({"string": "Hello"}, "hELLO"),
        ({"string": "abc"}, "ABC"),
        ({"string": ""}, ""),
    ],
)

_task(
    "concatenate",
    "Concatenate the list of strings {{strings}} into a single string.",
    ["strings"],
    "def concatenate(strings):\n"
    "    return ''.join(strings)\n",
    "result = ''\n"
    "for s in strings:\n"
    "    result += s\n"
    "return result",
    [
        ({"strings": []}, ""),
        ({"strings": ["a", "b", "c"]}, "abc"),
        ({"strings": ["x"]}, "x"),
    ],
)

_task(
    "filter_by_prefix",
    "Filter the list of strings {{strings}} to only those that start with the given prefix {{prefix}}.",
    ["strings", "prefix"],
    "def filter_by_prefix(strings, prefix):\n"
    "    return [s for s in strings if s.startswith(prefix)]\n",
    "result = []\n"
    "for s in strings:\n"
    "    if s.startswith(prefix):\n"
    "        result.append(s)\n"
    "return result",
    [
        ({"strings": [], "prefix": "a"}, []),
        ({"strings": ["abc", "bcd", "cde", "array"], "prefix": "a"}, ["abc", "array"]),
        ({"strings": ["aa", "ab"], "prefix": "aa"}, ["aa"]),
    ],
)

_task(
    "get_positive",
    "Return only the positive numbers in the list {{numbers}}.",
    ["numbers"],
    "def get_positive(numbers):\n"
    "    return [x for x in numbers if x > 0]\n",
    "positives = []\n"
    "for x in numbers:\n"
    "    if x > 0:\n"
    "        positives.append(x)\n"
    "return positives",
    [
        ({"numbers": [-1, 2, -4, 5, 6]}, [2, 5, 6]),
        ({"numbers": [-1, -2]}, []),
        ({"numbers": [3]}, [3]),
    ],
)

_task(
    "is_prime",
    "Return true if the number {{n}} is prime, and false otherwise.",
    ["n"],
    "def is_prime(n):\n"
    "    if n < 2:\n"
    "        return False\n"
    "    i = 2\n"
    "    while i * i <= n:\n"
    "        if n % i == 0:\n"
    "            return False\n"
    "        i += 1\n"
    "    return True\n",
    "if n < 2:\n"
    "    return False\n"
    "for i in range(2, int(n ** 0.5) + 1):\n"
    "    if n % i == 0:\n"
    "        return False\n"
    "return True",
    [
        ({"n": 6}, False),
        ({"n": 101}, True),
        ({"n": 13441}, True),
    ],
)

_task(
    "sort_third",
    "Return the list {{numbers}} with the values at indices divisible by three replaced by those same values sorted, and all other positions unchanged.",
    ["numbers"],
    "def sort_third(numbers):\n"
    "    thirds = sorted(numbers[::3])\n"
    "    result = list(numbers)\n"
    "    result[::3] = thirds\n"
    "    return result\n",
    "third_values = []\n"
    "for i in range(0, len(numbers), 3):\n"
    "    third_values.append(numbers[i])\n"
    "third_values.sort()\n"
    "result = list(numbers)\n"
    "position = 0\n"
    "for i in range(0, len(numbers), 3):\n"
    "    result[i] = third_values[position]\n"
    "    position += 1\n"
    "return result",
    [
        ({"numbers": [1, 2, 3]}, [1, 2, 3]),
        ({"numbers": [5, 6, 3, 4, 8, 9, 2]}, [2, 6, 3, 4, 8, 9, 5]),
        ({"numbers": [9, 0, 1, 6]}, [6, 0, 1, 9]),
    ],
)

_task(
    "unique_sorted",
    "Return the sorted unique elements in the list {{numbers}}.",
    ["numbers"],
    "def unique_sorted(numbers):\n"
    "    return sorted(set(numbers))\n",
    "seen = []\n"
    "for x in numbers:\n"
    "    if x not in seen:\n"
    "        seen.append(x)\n"
    "seen.sort()\n"
    "return seen",
    [
        ({"numbers": [5, 3, 5, 2, 3, 3, 9, 0, 123]}, [0, 2, 3, 5, 9, 123]),
        ({"numbers": []}, []),
        ({"numbers": [1, 1, 1]}, [1]),
    ],
)

_task(
    "max_element",
    "Return the maximum element in the list {{numbers}}.",
    ["numbers"],
    "def max_element(numbers):\n"
    "    return max(numbers)\n",
    "best = numbers[0]\n"
    "for x in numbers:\n"
    "    if x > best:\n"
    "        best = x\n"
    "return best",
    [
        ({"numbers": [1, 2, 3]}, 3),
        ({"numbers": [5, 3, -5, 2, -3, 3, 9, 0, 124, 1, -10]}, 124),
        ({"numbers": [-1, -2]}, -1),
    ],
)

_task(
    "fizz_buzz_sevens",
    "Return the number of times the digit 7 appears in integers less than {{n}} which are divisible by 11 or 13.",
    ["n"],
    "def fizz_buzz_sevens(n):\n"
    "    count = 0\n"
    "    for i in range(n):\n"
    "        if i % 11 == 0 or i % 13 == 0:\n"
    "            count += str(i).count('7')\n"
    "    return count\n",
    "count = 0\n"
    "for i in range(n):\n"
    "    if i % 11 == 0 or i % 13 == 0:\n"
    "        for digit in str(i):\n"
    "            if digit == '7':\n"
    "                count += 1\n"
    "return count",
    [
        ({"n": 50}, 0),
        ({"n": 78}, 2),
        ({"n": 79}, 3),
    ],
)

_task(
    "sort_even",
    "Return the list {{numbers}} with the values at even indices replaced by those same values sorted, and odd indices unchanged.",
    ["numbers"],
    "def sort_even(numbers):\n"
    "    evens = sorted(numbers[::2])\n"
    "    result = list(numbers)\n"
    "    result[::2] = evens\n"
    "    return result\n",
    "even_values = []\n"
    "for i in range(0, len(numbers), 2):\n"
    "    even_values.append(numbers[i])\n"
    "even_values.sort()\n"
    "result = list(numbers)\n"
    "index = 0\n"
    "for i in range(0, len(numbers), 2):\n"
    "    result[i] = even_values[index]\n"
    "    index += 1\n"
    "return result",
    [
        ({"numbers": [1, 2, 3]}, [1, 2, 3]),
        ({"numbers": [5, 6, 3, 4]}, [3, 6, 5, 4]),
        ({"numbers": [4, 1]}, [4, 1]),
    ],
)

_task(
    "triangle_area",
    "Given the length of a side {{a}} and the height {{h}} of a triangle, return its area.",
    ["a", "h"],
    "def triangle_area(a, h):\n"
    "    return a * h / 2.0\n",
    "area = a * h / 2\n"
    "return area",
    [
        ({"a": 5, "h": 3}, 7.5),
        ({"a": 2, "h": 2}, 2.0),
        ({"a": 10, "h": 8}, 40.0),
    ],
)

_task(
    "fib4",
    "Compute the n-th element of the fib4 sequence for {{n}}, where fib4(0)=0, fib4(1)=0, fib4(2)=2, fib4(3)=0 and fib4(n) is the sum of the previous four elements.",
    ["n"],
    "def fib4(n):\n"
    "    window = [0, 0, 2, 0]\n"
    "    if n < 4:\n"
    "        return window[n]\n"
    "    for _ in range(n - 3):\n"
    "        window.append(sum(window[-4:]))\n"
    "    return window[-1]\n",
    "values = [0, 0, 2, 0]\n"
    "if n < 4:\n"
    "    return values[n]\n"
    "for i in range(4, n + 1):\n"
    "    nxt = values[i - 1] + values[i - 2] + values[i - 3] + values[i - 4]\n"
    "    values.append(nxt)\n"
    "return values[n]",
    [
        ({"n": 5}, 4),
        ({"n": 6}, 8),
        ({"n": 7}, 14),
    ],
)

_task(
    "median",
    "Return the median of the elements in the list {{numbers}}.",
    ["numbers"],
    "def median(numbers):\n"
    "    ordered = sorted(numbers)\n"
    "    mid = len(ordered) // 2\n"
    "    if len(ordered) % 2:\n"
    "        return ordered[mid]\n"
    "    return (ordered[mid - 1] + ordered[mid]) / 2.0\n",
    "ordered = sorted(numbers)\n"
    "n = len(ordered)\n"
    "middle = n // 2\n"
    "if n % 2 == 1:\n"
    "    return ordered[middle]\n"
    "return (ordered[middle - 1] + ordered[middle]) / 2",
    [
        ({"numbers": [3, 1, 2, 4, 5]}, 3),
        ({"numbers": [-10, 4, 6, 1000, 10, 20]}, 8.0),
        ({"numbers": [5]}, 5),
    ],
)

_task(
    "is_palindrome_text",
    "Check if the given string {{text}} is a palindrome.",
    ["text"],
    "def is_palindrome_text(text):\n"
    "    return text == text[::-1]\n",
    "reversed_text = ''\n"
    "for ch in text:\n"
    "    reversed_text = ch + reversed_text\n"
    "return text == reversed_text",
    [
        ({"text": ""}, True),
        ({"text": "aba"}, True),
        ({"text": "zbcd"}, False),
    ],
)

_task(
    "modp",
    "Return 2 to the power {{n}} modulo {{p}}, being aware of numerics.",
    ["n", "p"],
    "def modp(n, p):\n"
    "    return pow(2, n, p)\n",
    "result = 1\n"
    "for _ in range(n):\n"
    "    result = (result * 2) % p\n"
    "return result",
    [
        ({"n": 3, "p": 5}, 3),
        ({"n": 1101, "p": 101}, 2),
        ({"n": 0, "p": 101}, 1),
    ],
)

_task(
    "remove_vowels",
    "Return the string {{text}} without any vowels.",
    ["text"],
    "def remove_vowels(text):\n"
    "    return ''.join(ch for ch in text if ch.lower() not in 'aeiou')\n",
    "result = ''\n"
    "for ch in text:\n"
    "    if ch.lower() not in 'aeiou':\n"
    "        result += ch\n"
    "return result",
    [
        ({"text": ""}, ""),
        ({"text": "abcdef"}, "bcdf"),
        ({"text": "aaBAA"}, "B"),
    ],
)

_task(
    "below_threshold",
    "Return true if all numbers in the list {{numbers}} are below the threshold {{t}}.",
    ["numbers", "t"],
    "def below_threshold(numbers, t):\n"
    "    return all(x < t for x in numbers)\n",
    "for x in numbers:\n"
    "    if x >= t:\n"
    "        return False\n"
    "return True",
    [
        ({"numbers": [1, 2, 4, 10], "t": 100}, True),
        ({"numbers": [1, 20, 4, 10], "t": 5}, False),
        ({"numbers": [], "t": 1}, True),
    ],
)

_task(
    "add_two",
    "Add the two numbers {{x}} and {{y}}.",
    ["x", "y"],
    "def add_two(x, y):\n"
    "    return x + y\n",
    "return x + y",
    [
        ({"x": 2, "y": 3}, 5),
        ({"x": 5, "y": 7}, 12),
        ({"x": -1, "y": 1}, 0),
    ],
)

_task(
    "same_chars",
    "Check if the two words {{s0}} and {{s1}} consist of the same set of characters.",
    ["s0", "s1"],
    "def same_chars(s0, s1):\n"
    "    return set(s0) == set(s1)\n",
    "chars0 = set()\n"
    "for ch in s0:\n"
    "    chars0.add(ch)\n"
    "chars1 = set()\n"
    "for ch in s1:\n"
    "    chars1.add(ch)\n"
    "return chars0 == chars1",
    [
        ({"s0": "eabcdzzzz", "s1": "dddzzzzzzzddeddabc"}, True),
        ({"s0": "abcd", "s1": "dddddddabc"}, True),
        ({"s0": "eabcd", "s1": "dddddddabc"}, False),
    ],
)

_task(
    "fib",
    "Return the {{n}}-th Fibonacci number, with fib(1) = 1 and fib(2) = 1.",
    ["n"],
    "def fib(n):\n"
    "    a, b = 0, 1\n"
    "    for _ in range(n):\n"
    "        a, b = b, a + b\n"
    "    return a\n",
    "if n <= 0:\n"
    "    return 0\n"
    "previous = 0\n"
    "current = 1\n"
    "for _ in range(n - 1):\n"
    "    nxt = previous + current\n"
    "    previous = current\n"
    "    current = nxt\n"
    "return current",
    [
        ({"n": 10}, 55),
        ({"n": 1}, 1),
        ({"n": 8}, 21),
    ],
)

_task(
    "correct_bracketing",
    "Return true if every opening angle bracket in the string {{brackets}} of '<' and '>' has a corresponding closing bracket.",
    ["brackets"],
    "def correct_bracketing(brackets):\n"
    "    depth = 0\n"
    "    for ch in brackets:\n"
    "        depth += 1 if ch == '<' else -1\n"
    "        if depth < 0:\n"
    "            return False\n"
    "    return depth == 0\n",
    "depth = 0\n"
    "for ch in brackets:\n"
    "    if ch == '<':\n"
    "        depth += 1\n"
    "    else:\n"
    "        depth -= 1\n"
    "    if depth < 0:\n"
    "        return False\n"
    "return depth == 0",
    [
        ({"brackets": "<"}, False),
        ({"brackets": "<>"}, True),
        ({"brackets": "<<><>>"}, True),
    ],
)

_task(
    "monotonic",
    "Return true if the elements of the list {{numbers}} are monotonically increasing or decreasing.",
    ["numbers"],
    "def monotonic(numbers):\n"
    "    increasing = all(a <= b for a, b in zip(numbers, numbers[1:]))\n"
    "    decreasing = all(a >= b for a, b in zip(numbers, numbers[1:]))\n"
    "    return increasing or decreasing\n",
    "increasing = True\n"
    "decreasing = True\n"
    "for i in range(1, len(numbers)):\n"
    "    if numbers[i] > numbers[i - 1]:\n"
    "        decreasing = False\n"
    "    if numbers[i] < numbers[i - 1]:\n"
    "        increasing = False\n"
    "return increasing or decreasing",
    [
        ({"numbers": [1, 2, 4, 20]}, True),
        ({"numbers": [1, 20, 4, 10]}, False),
        ({"numbers": [4, 1, 0, -10]}, True),
    ],
)

_task(
    "common",
    "Return the sorted unique common elements of the two lists {{l1}} and {{l2}}.",
    ["l1", "l2"],
    "def common(l1, l2):\n"
    "    return sorted(set(l1) & set(l2))\n",
    "shared = []\n"
    "for x in l1:\n"
    "    if x in l2 and x not in shared:\n"
    "        shared.append(x)\n"
    "shared.sort()\n"
    "return shared",
    [
        ({"l1": [1, 4, 3, 34, 653, 2, 5], "l2": [5, 7, 1, 5, 9, 653, 121]}, [1, 5, 653]),
        ({"l1": [5, 3, 2, 8], "l2": [3, 2]}, [2, 3]),
        ({"l1": [1], "l2": [2]}, []),
    ],
)

_task(
    "largest_prime_factor",
    "Return the largest prime factor of {{n}}, assuming n is greater than 1 and not prime.",
    ["n"],
    "def largest_prime_factor(n):\n"
    "    factor = 2\n"
    "    while factor * factor <= n:\n"
    "        while n % factor == 0 and n != factor:\n"
    "            n //= factor\n"
    "        factor += 1\n"
    "    return n\n",
    "largest = 1\n"
    "value = n\n"
    "divisor = 2\n"
    "while divisor * divisor <= value:\n"
    "    while value % divisor == 0:\n"
    "        largest = divisor\n"
    "        value //= divisor\n"
    "    divisor += 1\n"
    "if value > 1:\n"
    "    largest = value\n"
    "return largest",
    [
        ({"n": 13195}, 29),
        ({"n": 2048}, 2),
        ({"n": 15}, 5),
    ],
)

_task(
    "sum_to_n",
    "Return the sum of all numbers from 1 to {{n}} inclusive.",
    ["n"],
    "def sum_to_n(n):\n"
    "    return n * (n + 1) // 2\n",
    "total = 0\n"
    "for i in range(1, n + 1):\n"
    "    total += i\n"
    "return total",
    [
        ({"n": 30}, 465),
        ({"n": 100}, 5050),
        ({"n": 1}, 1),
    ],
)

_task(
    "derivative",
    "Given the coefficients {{xs}} of a polynomial (xs[0] + xs[1]*x + ...), return the coefficients of its derivative in the same form.",
    ["xs"],
    "def derivative(xs):\n"
    "    return [i * x for i, x in enumerate(xs)][1:]\n",
    "result = []\n"
    "for i in range(1, len(xs)):\n"
    "    result.append(i * xs[i])\n"
    "return result",
    [
        ({"xs": [3, 1, 2, 4, 5]}, [1, 4, 12, 20]),
        ({"xs": [1, 2, 3]}, [2, 6]),
        ({"xs": [7]}, []),
    ],
)

_task(
    "vowels_count",
    "Return the number of vowels in the string {{s}}, where 'y' also counts when it is the last letter.",
    ["s"],
    "def vowels_count(s):\n"
    "    count = sum(1 for ch in s if ch.lower() in 'aeiou')\n"
    "    if s and s[-1].lower() == 'y':\n"
    "        count += 1\n"
    "    return count\n",
    "count = 0\n"
    "for ch in s:\n"
    "    if ch.lower() in 'aeiou':\n"
    "        count += 1\n"
    "if len(s) > 0 and (s[-1] == 'y' or s[-1] == 'Y'):\n"
    "    count += 1\n"
    "return count",
    [
        ({"s": "abcde"}, 2),
        ({"s": "ACEDY"}, 3),
        ({"s": "ky"}, 1),
    ],
)

_task(
    "circular_shift",
    "Circular shift the digits of the integer {{x}} right by {{shift}} positions and return the result as a string; if shift is greater than the number of digits, return the digits reversed.",
    ["x", "shift"],
    "def circular_shift(x, shift):\n"
    "    digits = str(x)\n"
    "    if shift > len(digits):\n"
    "        return digits[::-1]\n"
    "    return digits[-shift:] + digits[:-shift]\n",
    "digits = str(x)\n"
    "if shift > len(digits):\n"
    "    return digits[::-1]\n"
    "if shift == 0:\n"
    "    return digits\n"
    "return digits[len(digits) - shift:] + digits[:len(digits) - shift]",
    [
        ({"x": 12, "shift": 1}, "21"),
        ({"x": 12, "shift": 2}, "12"),
        ({"x": 97, "shift": 8}, "79"),
    ],
)

_task(
    "digit_sum_upper",
    "Return the sum of the ASCII codes of only the uppercase characters in the string {{s}}.",
    ["s"],
    "def digit_sum_upper(s):\n"
    "    return sum(ord(ch) for ch in s if ch.isupper())\n",
    "total = 0\n"
    "for ch in s:\n"
    "    if 'A' <= ch <= 'Z':\n"
    "        total += ord(ch)\n"
    "return total",
    [
        ({"s": ""}, 0),
        ({"s": "abAB"}, 131),
        ({"s": "helloE"}, 69),
    ],
)

_task(
    "pluck",
    "Given a list {{arr}} of non-negative integers representing tree nodes, return a list [smallest even value, its index]; return an empty list if there is no even value.",
    ["arr"],
    "def pluck(arr):\n"
    "    evens = [(value, index) for index, value in enumerate(arr) if value % 2 == 0]\n"
    "    if not evens:\n"
    "        return []\n"
    "    value, index = min(evens)\n"
    "    return [value, index]\n",
    "best_value = None\n"
    "best_index = -1\n"
    "for index, value in enumerate(arr):\n"
    "    if value % 2 == 0:\n"
    "        if best_value is None or value < best_value:\n"
    "            best_value = value\n"
    "            best_index = index\n"
    "if best_value is None:\n"
    "    return []\n"
    "return [best_value, best_index]",
    [
        ({"arr": [4, 2, 3]}, [2, 1]),
        ({"arr": [1, 2, 3]}, [2, 1]),
        ({"arr": []}, []),
    ],
)

_task(
    "strange_sort_list",
    "Return the list {{lst}} in strange order: start with the minimum, then the maximum of the rest, then the minimum of the rest, and so on.",
    ["lst"],
    "def strange_sort_list(lst):\n"
    "    remaining = sorted(lst)\n"
    "    result = []\n"
    "    take_min = True\n"
    "    while remaining:\n"
    "        result.append(remaining.pop(0) if take_min else remaining.pop())\n"
    "        take_min = not take_min\n"
    "    return result\n",
    "values = sorted(lst)\n"
    "result = []\n"
    "low = 0\n"
    "high = len(values) - 1\n"
    "pick_low = True\n"
    "while low <= high:\n"
    "    if pick_low:\n"
    "        result.append(values[low])\n"
    "        low += 1\n"
    "    else:\n"
    "        result.append(values[high])\n"
    "        high -= 1\n"
    "    pick_low = not pick_low\n"
    "return result",
    [
        ({"lst": [1, 2, 3, 4]}, [1, 4, 2, 3]),
        ({"lst": [5, 5, 5, 5]}, [5, 5, 5, 5]),
        ({"lst": []}, []),
    ],
)

_task(
    "will_it_fly",
    "Return true if the list {{q}} will fly: it must be a palindrome and the sum of its elements must be at most the maximum weight {{w}}.",
    ["q", "w"],
    "def will_it_fly(q, w):\n"
    "    return q == q[::-1] and sum(q) <= w\n",
    "is_balanced = q == list(reversed(q))\n"
    "total_weight = 0\n"
    "for value in q:\n"
    "    total_weight += value\n"
    "return is_balanced and total_weight <= w",
    [
        ({"q": [1, 2], "w": 5}, False),
        ({"q": [3, 2, 3], "w": 9}, True),
        ({"q": [3], "w": 5}, True),
    ],
)

_task(
    "total_match",
    "Return whichever of the two lists of strings {{lst1}} and {{lst2}} has a smaller total character count, or the first if they are equal.",
    ["lst1", "lst2"],
    "def total_match(lst1, lst2):\n"
    "    len1 = sum(len(s) for s in lst1)\n"
    "    len2 = sum(len(s) for s in lst2)\n"
    "    return lst1 if len1 <= len2 else lst2\n",
    "count1 = 0\n"
    "for s in lst1:\n"
    "    count1 += len(s)\n"
    "count2 = 0\n"
    "for s in lst2:\n"
    "    count2 += len(s)\n"
    "if count1 <= count2:\n"
    "    return lst1\n"
    "return lst2",
    [
        ({"lst1": [], "lst2": []}, []),
        ({"lst1": ["hi", "admin"], "lst2": ["hI", "Hi"]}, ["hI", "Hi"]),
        ({"lst1": ["hi", "admin"], "lst2": ["hi", "hi", "admin", "project"]}, ["hi", "admin"]),
    ],
)

_task(
    "is_multiply_prime",
    "Return true if the number {{a}} is the product of exactly three prime numbers (with multiplicity), assuming a is less than 100.",
    ["a"],
    "def is_multiply_prime(a):\n"
    "    def primes_below(limit):\n"
    "        return [p for p in range(2, limit) if all(p % d for d in range(2, p))]\n"
    "    count = 0\n"
    "    value = a\n"
    "    for p in primes_below(100):\n"
    "        while value % p == 0:\n"
    "            value //= p\n"
    "            count += 1\n"
    "    return value == 1 and count == 3\n",
    "value = a\n"
    "factor_count = 0\n"
    "divisor = 2\n"
    "while divisor <= value:\n"
    "    if value % divisor == 0:\n"
    "        value //= divisor\n"
    "        factor_count += 1\n"
    "    else:\n"
    "        divisor += 1\n"
    "return factor_count == 3",
    [
        ({"a": 30}, True),
        ({"a": 8}, True),
        ({"a": 10}, False),
    ],
)

_task(
    "decimal_to_binary",
    "Convert the decimal number {{decimal}} to binary format as a string with 'db' at the beginning and at the end.",
    ["decimal"],
    "def decimal_to_binary(decimal):\n"
    "    return 'db' + bin(decimal)[2:] + 'db'\n",
    "if decimal == 0:\n"
    "    return 'db0db'\n"
    "bits = ''\n"
    "value = decimal\n"
    "while value > 0:\n"
    "    bits = str(value % 2) + bits\n"
    "    value //= 2\n"
    "return 'db' + bits + 'db'",
    [
        ({"decimal": 15}, "db1111db"),
        ({"decimal": 32}, "db100000db"),
        ({"decimal": 0}, "db0db"),
    ],
)

_task(
    "is_happy",
    "Return true if the string {{s}} is happy: its length is at least 3 and every 3 consecutive letters are distinct.",
    ["s"],
    "def is_happy(s):\n"
    "    if len(s) < 3:\n"
    "        return False\n"
    "    return all(len({s[i], s[i + 1], s[i + 2]}) == 3 for i in range(len(s) - 2))\n",
    "if len(s) < 3:\n"
    "    return False\n"
    "for i in range(len(s) - 2):\n"
    "    a, b, c = s[i], s[i + 1], s[i + 2]\n"
    "    if a == b or b == c or a == c:\n"
    "        return False\n"
    "return True",
    [
        ({"s": "a"}, False),
        ({"s": "adb"}, True),
        ({"s": "aabb"}, False),
    ],
)

# -- unsolvable tasks (the ~15 % the model cannot code) ----------------------

_task(
    "count_upper_even_vowels",
    "Count the number of uppercase vowels at even indices in the string {{s}}.",
    ["s"],
    "def count_upper_even_vowels(s):\n"
    "    return sum(1 for i in range(0, len(s), 2) if s[i] in 'AEIOU')\n",
    # Wrong: counts every uppercase vowel, ignoring the index condition.
    "count = 0\n"
    "for ch in s:\n"
    "    if ch in 'AEIOU':\n"
    "        count += 1\n"
    "return count",
    [
        ({"s": "aBCdEf"}, 1),
        ({"s": "abcdefg"}, 0),
        ({"s": "dBBE"}, 0),
    ],
    solvable=False,
)

_task(
    "closest_integer",
    "Return the closest integer to the number given as the string {{value}}, rounding away from zero on ties.",
    ["value"],
    "def closest_integer(value):\n"
    "    import math\n"
    "    number = float(value)\n"
    "    if abs(number - int(number)) == 0.5:\n"
    "        return int(math.copysign(math.ceil(abs(number)), number))\n"
    "    return round(number)\n",
    # Wrong: banker's rounding on ties (round() semantics).
    "number = float(value)\n"
    "return round(number)",
    [
        ({"value": "10"}, 10),
        ({"value": "15.3"}, 15),
        ({"value": "14.5"}, 15),
    ],
    solvable=False,
)

_task(
    "rounded_avg",
    "Compute the average of the integers from {{n}} through {{m}} inclusive, round to the nearest integer (half up), and return it as a binary string; return -1 if n is greater than m.",
    ["n", "m"],
    "def rounded_avg(n, m):\n"
    "    if n > m:\n"
    "        return -1\n"
    "    average = int((n + m) / 2 + 0.5)\n"
    "    return bin(average)\n",
    # Wrong: returns the decimal average, never converting to binary.
    "if n > m:\n"
    "    return -1\n"
    "total = 0\n"
    "for i in range(n, m + 1):\n"
    "    total += i\n"
    "return round(total / (m - n + 1))",
    [
        ({"n": 1, "m": 5}, "0b11"),
        ({"n": 7, "m": 13}, "0b1010"),
        ({"n": 7, "m": 5}, -1),
    ],
    solvable=False,
)

_task(
    "by_length",
    "Sort the integers between 1 and 9 in the list {{arr}}, reverse them, and replace each by its English name; ignore other values.",
    ["arr"],
    "def by_length(arr):\n"
    "    names = ['One', 'Two', 'Three', 'Four', 'Five', 'Six', 'Seven', 'Eight', 'Nine']\n"
    "    digits = sorted((x for x in arr if 1 <= x <= 9), reverse=True)\n"
    "    return [names[x - 1] for x in digits]\n",
    # Wrong: forgets to reverse after sorting.
    "names = ['One', 'Two', 'Three', 'Four', 'Five', 'Six', 'Seven', 'Eight', 'Nine']\n"
    "digits = []\n"
    "for x in arr:\n"
    "    if 1 <= x <= 9:\n"
    "        digits.append(x)\n"
    "digits.sort()\n"
    "result = []\n"
    "for x in digits:\n"
    "    result.append(names[x - 1])\n"
    "return result",
    [
        ({"arr": [2, 1, 1, 4, 5, 8, 2, 3]}, ["Eight", "Five", "Four", "Three", "Two", "Two", "One", "One"]),
        ({"arr": []}, []),
        ({"arr": [1, -1, 55]}, ["One"]),
    ],
    solvable=False,
)

_task(
    "words_in_sentence",
    "Return a string with the words of the sentence {{sentence}} whose lengths are prime numbers, preserving the original order.",
    ["sentence"],
    "def words_in_sentence(sentence):\n"
    "    def is_prime(k):\n"
    "        return k >= 2 and all(k % d for d in range(2, k))\n"
    "    return ' '.join(word for word in sentence.split() if is_prime(len(word)))\n",
    # Wrong: treats length 1 as prime.
    "result = []\n"
    "for word in sentence.split():\n"
    "    length = len(word)\n"
    "    composite = False\n"
    "    for d in range(2, length):\n"
    "        if length % d == 0:\n"
    "            composite = True\n"
    "    if not composite:\n"
    "        result.append(word)\n"
    "return ' '.join(result)",
    [
        ({"sentence": "This is a test"}, "is"),
        ({"sentence": "lets go for swimming"}, "go for"),
        ({"sentence": "three"}, "three"),
    ],
    solvable=False,
)

_task(
    "cycpattern_check",
    "Return true if the second word {{b}} or any of its rotations is a substring of the first word {{a}}.",
    ["a", "b"],
    "def cycpattern_check(a, b):\n"
    "    doubled = b + b\n"
    "    return any(doubled[i:i + len(b)] in a for i in range(len(b)))\n",
    # Wrong: only checks the unrotated word.
    "return b in a",
    [
        ({"a": "abcd", "b": "abd"}, False),
        ({"a": "hello", "b": "ell"}, True),
        ({"a": "whassup", "b": "psus"}, False),
        ({"a": "himenss", "b": "simen"}, True),
    ],
    solvable=False,
)

_task(
    "int_to_mini_roman",
    "Convert the positive integer {{number}} to its Roman numeral equivalent in lowercase, for numbers up to 1000.",
    ["number"],
    "def int_to_mini_roman(number):\n"
    "    values = [1000, 900, 500, 400, 100, 90, 50, 40, 10, 9, 5, 4, 1]\n"
    "    symbols = ['m', 'cm', 'd', 'cd', 'c', 'xc', 'l', 'xl', 'x', 'ix', 'v', 'iv', 'i']\n"
    "    result = ''\n"
    "    for value, symbol in zip(values, symbols):\n"
    "        while number >= value:\n"
    "            result += symbol\n"
    "            number -= value\n"
    "    return result\n",
    # Wrong: no subtractive forms (writes viiii for 9).
    "values = [1000, 500, 100, 50, 10, 5, 1]\n"
    "symbols = ['m', 'd', 'c', 'l', 'x', 'v', 'i']\n"
    "result = ''\n"
    "remaining = number\n"
    "for value, symbol in zip(values, symbols):\n"
    "    while remaining >= value:\n"
    "        result += symbol\n"
    "        remaining -= value\n"
    "return result",
    [
        ({"number": 19}, "xix"),
        ({"number": 152}, "clii"),
        ({"number": 426}, "cdxxvi"),
    ],
    solvable=False,
)

_task(
    "find_max_word",
    "From the list of strings {{words}}, return the word with the maximum number of unique characters; on ties return the lexicographically earliest.",
    ["words"],
    "def find_max_word(words):\n"
    "    return max(words, key=lambda word: (len(set(word)), [-ord(c) for c in word]))\n",
    # Wrong: ties resolve to the first occurrence, not lexicographic order.
    "best = words[0]\n"
    "for word in words:\n"
    "    if len(set(word)) > len(set(best)):\n"
    "        best = word\n"
    "return best",
    [
        ({"words": ["name", "of", "string"]}, "string"),
        ({"words": ["name", "enam", "game"]}, "enam"),
        ({"words": ["aaaaaaa", "bb", "cc"]}, "aaaaaaa"),
    ],
    solvable=False,
)

_task(
    "sort_array_binary_ones",
    "Sort the list {{arr}} of non-negative integers by the number of ones in their binary representation, breaking ties by decimal value.",
    ["arr"],
    "def sort_array_binary_ones(arr):\n"
    "    return sorted(arr, key=lambda x: (bin(x).count('1'), x))\n",
    # Wrong: sorts only by popcount, so ties keep arbitrary order.
    "return sorted(arr, key=lambda x: bin(x).count('1'))",
    [
        ({"arr": [1, 5, 2, 3, 4]}, [1, 2, 4, 3, 5]),
        ({"arr": [1, 0, 2, 3, 4]}, [0, 1, 2, 4, 3]),
        ({"arr": []}, []),
    ],
    solvable=False,
)

# -- more solvable tasks to reach 60 ------------------------------------------

_task(
    "car_race_collision",
    "With {{n}} cars driving left to right and n cars driving right to left on an infinite road, return how many collisions happen given every pair eventually meets.",
    ["n"],
    "def car_race_collision(n):\n"
    "    return n ** 2\n",
    "return n * n",
    [
        ({"n": 2}, 4),
        ({"n": 3}, 9),
        ({"n": 1}, 1),
    ],
)

_task(
    "incr_list",
    "Return the list {{lst}} with all elements incremented by 1.",
    ["lst"],
    "def incr_list(lst):\n"
    "    return [x + 1 for x in lst]\n",
    "result = []\n"
    "for x in lst:\n"
    "    result.append(x + 1)\n"
    "return result",
    [
        ({"lst": [1, 2, 3]}, [2, 3, 4]),
        ({"lst": []}, []),
        ({"lst": [5, 2, 5, 2, 3, 3, 9, 0, 123]}, [6, 3, 6, 3, 4, 4, 10, 1, 124]),
    ],
)

_task(
    "pairs_sum_to_zero",
    "Return true if there are two distinct elements in the list {{lst}} that sum to zero.",
    ["lst"],
    "def pairs_sum_to_zero(lst):\n"
    "    for i, a in enumerate(lst):\n"
    "        for b in lst[i + 1:]:\n"
    "            if a + b == 0:\n"
    "                return True\n"
    "    return False\n",
    "for i in range(len(lst)):\n"
    "    for j in range(i + 1, len(lst)):\n"
    "        if lst[i] + lst[j] == 0:\n"
    "            return True\n"
    "return False",
    [
        ({"lst": [1, 3, 5, 0]}, False),
        ({"lst": [1, 3, -2, 1]}, False),
        ({"lst": [2, 4, -5, 3, 5, 7]}, True),
    ],
)

_task(
    "change_base",
    "Convert the number {{x}} to base {{base}} (less than 10) and return the result as a string.",
    ["x", "base"],
    "def change_base(x, base):\n"
    "    if x == 0:\n"
    "        return '0'\n"
    "    digits = ''\n"
    "    while x:\n"
    "        digits = str(x % base) + digits\n"
    "        x //= base\n"
    "    return digits\n",
    "if x == 0:\n"
    "    return '0'\n"
    "result = ''\n"
    "value = x\n"
    "while value > 0:\n"
    "    result = str(value % base) + result\n"
    "    value = value // base\n"
    "return result",
    [
        ({"x": 8, "base": 3}, "22"),
        ({"x": 8, "base": 2}, "1000"),
        ({"x": 7, "base": 2}, "111"),
    ],
)

_task(
    "triples_sum_to_zero",
    "Return true if there are three distinct elements in the list {{lst}} that sum to zero.",
    ["lst"],
    "def triples_sum_to_zero(lst):\n"
    "    for i in range(len(lst)):\n"
    "        for j in range(i + 1, len(lst)):\n"
    "            for k in range(j + 1, len(lst)):\n"
    "                if lst[i] + lst[j] + lst[k] == 0:\n"
    "                    return True\n"
    "    return False\n",
    "n = len(lst)\n"
    "for i in range(n):\n"
    "    for j in range(i + 1, n):\n"
    "        for k in range(j + 1, n):\n"
    "            if lst[i] + lst[j] + lst[k] == 0:\n"
    "                return True\n"
    "return False",
    [
        ({"lst": [1, 3, 5, 0]}, False),
        ({"lst": [1, 3, -2, 1]}, True),
        ({"lst": [1, 2, 3, 7]}, False),
    ],
)

_task(
    "count_nested_brackets",
    "Return true if the bracket string {{s}} of '[' and ']' contains at least one properly nested pair of brackets.",
    ["s"],
    "def count_nested_brackets(s):\n"
    "    depth = 0\n"
    "    nested = False\n"
    "    for ch in s:\n"
    "        if ch == '[':\n"
    "            depth += 1\n"
    "        else:\n"
    "            if depth >= 2:\n"
    "                nested = True\n"
    "            depth = max(0, depth - 1)\n"
    "    return nested\n",
    "depth = 0\n"
    "found_nested = False\n"
    "for ch in s:\n"
    "    if ch == '[':\n"
    "        depth += 1\n"
    "    else:\n"
    "        if depth >= 2:\n"
    "            found_nested = True\n"
    "        if depth > 0:\n"
    "            depth -= 1\n"
    "return found_nested",
    [
        ({"s": "[[]]"}, True),
        ({"s": "[]"}, False),
        ({"s": "[][]"}, False),
    ],
)

_task(
    "double_the_difference",
    "Return the sum of squares of the odd, non-negative integers in the list {{lst}}, ignoring any non-integers.",
    ["lst"],
    "def double_the_difference(lst):\n"
    "    return sum(x * x for x in lst if isinstance(x, int) and x >= 0 and x % 2 == 1)\n",
    "total = 0\n"
    "for x in lst:\n"
    "    if isinstance(x, int) and x >= 0 and x % 2 == 1:\n"
    "        total += x * x\n"
    "return total",
    [
        ({"lst": [1, 3, 2, 0]}, 10),
        ({"lst": [-1, -2, 0]}, 0),
        ({"lst": [9, -2]}, 81),
    ],
)

_task(
    "compare_guesses",
    "Given equal-length lists {{game}} of scores and {{guess}} of guesses, return a list of absolute differences between each score and guess.",
    ["game", "guess"],
    "def compare_guesses(game, guess):\n"
    "    return [abs(a - b) for a, b in zip(game, guess)]\n",
    "result = []\n"
    "for a, b in zip(game, guess):\n"
    "    result.append(abs(a - b))\n"
    "return result",
    [
        ({"game": [1, 2, 3, 4, 5, 1], "guess": [1, 2, 3, 4, 2, -2]}, [0, 0, 0, 0, 3, 3]),
        ({"game": [0, 5, 0, 0, 0, 4], "guess": [4, 1, 1, 0, 0, -2]}, [4, 4, 1, 0, 0, 6]),
        ({"game": [], "guess": []}, []),
    ],
)

_task(
    "starts_one_ends",
    "Return the count of {{n}}-digit positive integers that start or end with the digit 1.",
    ["n"],
    "def starts_one_ends(n):\n"
    "    if n == 1:\n"
    "        return 1\n"
    "    return 18 * 10 ** (n - 2)\n",
    "if n == 1:\n"
    "    return 1\n"
    "starts = 10 ** (n - 1)\n"
    "ends = 9 * 10 ** (n - 2)\n"
    "both = 10 ** (n - 2)\n"
    "return starts // 10 * 10 + ends - both + both * 0 + (10 ** (n - 2)) * 9 - (9 * 10 ** (n - 2) - 9 * 10 ** (n - 2))\n"
    "",
    [
        ({"n": 1}, 1),
        ({"n": 2}, 18),
        ({"n": 3}, 180),
    ],
    solvable=False,
)

_task(
    "solve_parens",
    "Given a string {{s}}, return the string with words reversed in order but characters within each word unchanged.",
    ["s"],
    "def solve_parens(s):\n"
    "    return ' '.join(reversed(s.split(' ')))\n",
    "words = s.split(' ')\n"
    "words.reverse()\n"
    "return ' '.join(words)",
    [
        ({"s": "hello world"}, "world hello"),
        ({"s": "one two three"}, "three two one"),
        ({"s": "solo"}, "solo"),
    ],
)

_task(
    "string_to_md5_length",
    "Return the length in hexadecimal characters of the MD5 digest of the string {{text}}, or 0 for an empty string.",
    ["text"],
    "def string_to_md5_length(text):\n"
    "    import hashlib\n"
    "    if not text:\n"
    "        return 0\n"
    "    return len(hashlib.md5(text.encode()).hexdigest())\n",
    "import hashlib\n"
    "if text == '':\n"
    "    return 0\n"
    "digest = hashlib.md5(text.encode('utf-8')).hexdigest()\n"
    "return len(digest)",
    [
        ({"text": "Hello world"}, 32),
        ({"text": ""}, 0),
        ({"text": "a"}, 32),
    ],
)

_task(
    "even_odd_count",
    "Return a list with the counts of even and odd digits in the integer {{num}} (use the absolute value).",
    ["num"],
    "def even_odd_count(num):\n"
    "    digits = str(abs(num))\n"
    "    evens = sum(1 for d in digits if int(d) % 2 == 0)\n"
    "    return [evens, len(digits) - evens]\n",
    # Wrong: forgets the absolute value, so the minus sign crashes int().
    "even_count = 0\n"
    "odd_count = 0\n"
    "for d in str(num):\n"
    "    if int(d) % 2 == 0:\n"
    "        even_count += 1\n"
    "    else:\n"
    "        odd_count += 1\n"
    "return [even_count, odd_count]",
    [
        ({"num": -12}, [1, 1]),
        ({"num": 123}, [1, 2]),
        ({"num": 2468}, [4, 0]),
    ],
    solvable=False,
)


_task(
    "count_up_to_primes",
    "Return a list of the prime numbers strictly less than the non-negative integer {{n}}.",
    ["n"],
    "def count_up_to_primes(n):\n"
    "    primes = []\n"
    "    for candidate in range(2, n):\n"
    "        if all(candidate % p for p in primes):\n"
    "            primes.append(candidate)\n"
    "    return primes\n",
    "primes = []\n"
    "for candidate in range(2, n):\n"
    "    is_prime = True\n"
    "    for divisor in range(2, candidate):\n"
    "        if candidate % divisor == 0:\n"
    "            is_prime = False\n"
    "            break\n"
    "    if is_prime:\n"
    "        primes.append(candidate)\n"
    "return primes",
    [
        ({"n": 5}, [2, 3]),
        ({"n": 11}, [2, 3, 5, 7]),
        ({"n": 0}, []),
    ],
)

_task(
    "multiply_unit_digits",
    "Return the product of the unit digits of the two integers {{a}} and {{b}}.",
    ["a", "b"],
    "def multiply_unit_digits(a, b):\n"
    "    return abs(a) % 10 * (abs(b) % 10)\n",
    "digit_a = abs(a) % 10\n"
    "digit_b = abs(b) % 10\n"
    "return digit_a * digit_b",
    [
        ({"a": 148, "b": 412}, 16),
        ({"a": 19, "b": 28}, 72),
        ({"a": 14, "b": -15}, 20),
    ],
)

_task(
    "order_by_points",
    "Sort the list of integers {{nums}} ascending by the sum of their digits (a negative number's leading digit keeps its sign); preserve input order on ties.",
    ["nums"],
    "def order_by_points(nums):\n"
    "    def digit_sum(n):\n"
    "        digits = [int(d) for d in str(abs(n))]\n"
    "        if n < 0:\n"
    "            digits[0] = -digits[0]\n"
    "        return sum(digits)\n"
    "    return sorted(nums, key=digit_sum)\n",
    "def points(n):\n"
    "    text = str(abs(n))\n"
    "    total = 0\n"
    "    for d in text:\n"
    "        total += int(d)\n"
    "    if n < 0:\n"
    "        total -= 2 * int(text[0])\n"
    "    return total\n"
    "return sorted(nums, key=points)",
    [
        ({"nums": [1, 11, -1, -11, -12]}, [-1, -11, 1, -12, 11]),
        ({"nums": []}, []),
        ({"nums": [9, 18, 4]}, [4, 9, 18]),
    ],
)

_task(
    "specials_filter",
    "Count the numbers in the list {{nums}} that are greater than 10 and whose first and last digits are both odd.",
    ["nums"],
    "def specials_filter(nums):\n"
    "    count = 0\n"
    "    for n in nums:\n"
    "        if n > 10:\n"
    "            digits = str(n)\n"
    "            if int(digits[0]) % 2 == 1 and int(digits[-1]) % 2 == 1:\n"
    "                count += 1\n"
    "    return count\n",
    "count = 0\n"
    "odd_digits = ('1', '3', '5', '7', '9')\n"
    "for n in nums:\n"
    "    if n > 10:\n"
    "        text = str(n)\n"
    "        if text[0] in odd_digits and text[-1] in odd_digits:\n"
    "            count += 1\n"
    "return count",
    [
        ({"nums": [15, -73, 14, -15]}, 1),
        ({"nums": [33, -2, -3, 45, 21, 109]}, 2),
        ({"nums": []}, 0),
    ],
)

_task(
    "get_row_indices",
    "In the list of variable-length rows {{lst}}, find all coordinates [row, column] of the value {{x}}; sort by row ascending and by column descending within a row.",
    ["lst", "x"],
    "def get_row_indices(lst, x):\n"
    "    coords = [\n"
    "        [r, c]\n"
    "        for r, row in enumerate(lst)\n"
    "        for c, value in enumerate(row)\n"
    "        if value == x\n"
    "    ]\n"
    "    return sorted(coords, key=lambda rc: (rc[0], -rc[1]))\n",
    "coords = []\n"
    "for r, row in enumerate(lst):\n"
    "    row_hits = []\n"
    "    for c, value in enumerate(row):\n"
    "        if value == x:\n"
    "            row_hits.append([r, c])\n"
    "    row_hits.reverse()\n"
    "    coords.extend(row_hits)\n"
    "return coords",
    [
        ({"lst": [[1, 2, 3], [1, 4], [5, 1]], "x": 1}, [[0, 0], [1, 0], [2, 1]]),
        ({"lst": [], "x": 1}, []),
        ({"lst": [[1, 1]], "x": 1}, [[0, 1], [0, 0]]),
    ],
)

_task(
    "encrypt_shift2",
    "Encrypt the lowercase string {{s}} by shifting every letter four places forward in the alphabet, wrapping around.",
    ["s"],
    "def encrypt_shift2(s):\n"
    "    return ''.join(\n"
    "        chr((ord(ch) - ord('a') + 4) % 26 + ord('a')) for ch in s\n"
    "    )\n",
    "result = ''\n"
    "for ch in s:\n"
    "    offset = (ord(ch) - ord('a') + 4) % 26\n"
    "    result += chr(ord('a') + offset)\n"
    "return result",
    [
        ({"s": "hi"}, "lm"),
        ({"s": "asdfghjkl"}, "ewhjklnop"),
        ({"s": "et"}, "ix"),
    ],
)

_task(
    "smallest_change",
    "Return the minimum number of elements that must be changed to make the list {{arr}} palindromic.",
    ["arr"],
    "def smallest_change(arr):\n"
    "    return sum(\n"
    "        1 for i in range(len(arr) // 2) if arr[i] != arr[-(i + 1)]\n"
    "    )\n",
    "changes = 0\n"
    "left = 0\n"
    "right = len(arr) - 1\n"
    "while left < right:\n"
    "    if arr[left] != arr[right]:\n"
    "        changes += 1\n"
    "    left += 1\n"
    "    right -= 1\n"
    "return changes",
    [
        ({"arr": [1, 2, 3, 5, 4, 7, 9, 6]}, 4),
        ({"arr": [1, 2, 3, 2, 1]}, 0),
        ({"arr": [1, 4, 2]}, 1),
    ],
)

_task(
    "next_smallest",
    "Return the second smallest distinct element of the list {{lst}}, or None if there is no such element.",
    ["lst"],
    "def next_smallest(lst):\n"
    "    distinct = sorted(set(lst))\n"
    "    if len(distinct) < 2:\n"
    "        return None\n"
    "    return distinct[1]\n",
    # Wrong: forgets to deduplicate, so [1, 1] answers 1 instead of None.
    "ordered = sorted(lst)\n"
    "if len(ordered) < 2:\n"
    "    return None\n"
    "return ordered[1]",
    [
        ({"lst": [1, 2, 3, 4, 5]}, 2),
        ({"lst": [5, 1, 4, 3, 2]}, 2),
        ({"lst": [1, 1]}, None),
    ],
    solvable=False,
)

# ---------------------------------------------------------------------------
# Style assignment.  Real HumanEval canonical solutions are written by many
# human hands -- frequently verbose loop-style code -- while models often
# answer with tight idiomatic one-liners.  For the tasks below the corpus
# assigns the verbose implementation to the human and the terse one to the
# model (the reverse of the default), reproducing the paper's finding that
# generated code is *shorter* than hand-written code in 35.3 % of tasks
# while averaging 1.27x longer overall.
# ---------------------------------------------------------------------------

_VERBOSE_HUMAN_TASKS = frozenset(
    {
        "filter_by_substring",
        "get_positive",
        "filter_by_prefix",
        "incr_list",
        "remove_vowels",
        "all_prefixes",
        "count_distinct_characters",
        "flip_case",
        "unique_sorted",
        "longest",
        "derivative",
        "string_xor",
        "same_chars",
        "monotonic",
        "common",
        "truncate_number",
        "max_element",
        "concatenate",
        "is_palindrome_text",
        "modp",
        "below_threshold",
    }
)


def _indent(body: str) -> str:
    return "\n".join(
        "    " + line if line.strip() else "" for line in body.splitlines()
    )


def _dedent_canonical_body(canonical: str) -> str:
    """The canonical solution's body with the ``def`` line dropped."""
    lines = canonical.rstrip("\n").splitlines()[1:]
    return "\n".join(line[4:] if line.startswith("    ") else line for line in lines)


def _assign_styles() -> None:
    for task in _TASKS:
        if task.entry_point not in _VERBOSE_HUMAN_TASKS:
            continue
        if not task.llm_solvable:
            continue
        params = ", ".join(task.params)
        verbose = f"def {task.entry_point}({params}):\n{_indent(task.llm_body)}\n"
        terse = _dedent_canonical_body(task.canonical_solution)
        task.canonical_solution = verbose
        task.llm_body = terse


_assign_styles()


def all_tasks() -> list[HumanEvalTask]:
    """The full 81-task corpus in order."""
    return list(_TASKS)


def get_task(task_id: str) -> HumanEvalTask:
    for task in _TASKS:
        if task.task_id == task_id:
            return task
    raise DatasetError(f"no task with id {task_id!r}")


def solvable_fraction() -> float:
    """Fraction of tasks the simulated model can code (paper: 84.8 %)."""
    return sum(task.llm_solvable for task in _TASKS) / len(_TASKS)
