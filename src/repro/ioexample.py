"""Input/output examples (Listing 1: ``{input: {...}, output: ...}``).

Examples serve two purposes in AskIt: the first example set of a
``define`` call drives few-shot prompting; the second validates generated
code (the DSL compiler runs the function on each input and compares).
This module is dependency-free so datasets, the core API, and the LLM
substrate can all share it.
"""

from __future__ import annotations

from typing import Any, Mapping


class Example:
    """One input/output pair for a task."""

    __slots__ = ("inputs", "output")

    def __init__(self, inputs: Mapping[str, Any], output: Any) -> None:
        self.inputs = dict(inputs)
        self.output = output

    def __repr__(self) -> str:
        return f"Example({self.inputs!r} -> {self.output!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Example):
            return NotImplemented
        return self.inputs == other.inputs and self.output == other.output

    def __hash__(self) -> int:
        return hash((tuple(sorted(self.inputs.items(), key=lambda kv: kv[0])), repr(self.output)))


def outputs_equal(left: Any, right: Any, tolerance: float = 1e-9) -> bool:
    """Lax structural equality for comparing task outputs.

    Numbers compare with tolerance and across int/float (generated
    TypeScript returns floats where Python returns ints); containers
    compare recursively; booleans never equal numbers.
    """
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return abs(float(left) - float(right)) <= tolerance
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    if isinstance(left, list) and isinstance(right, list):
        return len(left) == len(right) and all(
            outputs_equal(a, b, tolerance) for a, b in zip(left, right)
        )
    if isinstance(left, dict) and isinstance(right, dict):
        return set(left) == set(right) and all(
            outputs_equal(left[key], right[key], tolerance) for key in left
        )
    return left == right
