"""Code synthesis: the simulated model's ability to write programs."""

from repro.llm.synthesis.emitters import (
    complete_python_stub,
    complete_typescript_stub,
    indent_body,
    wrap_code_response,
)
from repro.llm.synthesis.wordmath import (
    emit_python_body,
    emit_typescript_body,
    match_family,
    rebind_expression,
)

__all__ = [
    "complete_python_stub",
    "complete_typescript_stub",
    "indent_body",
    "wrap_code_response",
    "match_family",
    "rebind_expression",
    "emit_python_body",
    "emit_typescript_body",
]
