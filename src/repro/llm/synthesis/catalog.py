"""Built-in task implementations: the simulated LLM's coding knowledge.

A real LLM knows how to implement "reverse a string" from its weights; the
simulated model knows it from this catalog.  Every entry carries

* ``answer_fn`` -- a real Python callable used when the task is answered
  *directly* (the model "does the task in its head");
* ``python_body`` / ``ts_body`` -- the source the model emits when asked
  to *code* the task (Figure 4 prompts);
* optional buggy variants emitted under noise, so example-based
  validation and regeneration genuinely matter (the paper's task #14
  Fibonacci needed seven retries for exactly this reason);
* ``python_signature_mismatch`` for the paper's pyaskit failures
  (tasks #11, #21-#24): with no parameter types in the Python prompt, the
  model assumes a wrong argument representation and its code never
  passes validation.
"""

from __future__ import annotations

import json as _json
from typing import Any

from repro.datasets.common_tasks import all_tasks
from repro.llm.knowledge import KnowledgeBase, TaskImplementation
from repro.templates import PromptTemplate


def _quoted(template_text: str) -> str:
    """The task description as it appears in prompts (params quoted)."""
    return PromptTemplate(template_text).quoted()


# -- answer functions (direct-mode semantics) --------------------------------


def _average(ns: list) -> float:
    return sum(ns) / len(ns)


def _fibonacci(n: int) -> list:
    sequence: list[int] = []
    a, b = 0, 1
    while len(sequence) < n:
        sequence.append(a)
        a, b = b, a + b
    return sequence

def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    i = 2
    while i * i <= n:
        if n % i == 0:
            return False
        i += 1
    return True


def _primes_up_to(n: int) -> list:
    return [candidate for candidate in range(2, n + 1) if _is_prime(candidate)]


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return abs(a)


def _days_between(d1: str, d2: str) -> int:
    import datetime

    first = datetime.date.fromisoformat(d1)
    second = datetime.date.fromisoformat(d2)
    return abs((second - first).days)


def _unique(xs: list) -> list:
    seen: list = []
    for x in xs:
        if x not in seen:
            seen.append(x)
    return seen


def _rotate(xs: list, k: int) -> list:
    if not xs:
        return []
    k = k % len(xs)
    return xs[k:] + xs[:k]


def _second_largest(ns: list) -> int:
    ordered = sorted(ns, reverse=True)
    return ordered[1]


def _interleave(xs: list, ys: list) -> list:
    result: list = []
    for a, b in zip(xs, ys):
        result.extend([a, b])
    shorter = min(len(xs), len(ys))
    longer = xs if len(xs) > len(ys) else ys
    result.extend(longer[shorter:])
    return result


def _running_sum(ns: list) -> list:
    result: list = []
    total = 0
    for x in ns:
        total += x
        result.append(total)
    return result


def _capitalize_words(s: str) -> str:
    return " ".join(word[:1].upper() + word[1:] for word in s.split(" "))


def _dedupe_chars(s: str) -> str:
    seen: list[str] = []
    for char in s:
        if char not in seen:
            seen.append(char)
    return "".join(seen)


_ANSWER_FNS: dict[int, Any] = {
    1: lambda s: s[::-1],
    2: lambda n: 1 if n <= 1 else n * _ANSWER_FNS[2](n - 1),
    3: lambda ss: "".join(ss),
    4: lambda ns: sorted(ns),
    5: lambda ns: max(ns),
    6: lambda n: str(n) == str(n)[::-1],
    7: lambda ns: sum(ns),
    8: _average,
    9: lambda xs, x: xs.count(x),
    10: lambda xs, x: [item for item in xs if item != x],
    11: _unique,
    12: lambda n: 1 if n <= 1 else n * _ANSWER_FNS[12](n - 1),
    13: lambda s: s == s[::-1],
    14: _fibonacci,
    15: lambda ns: min(ns),
    16: lambda s: s.upper(),
    17: lambda s: s.lower(),
    18: _is_prime,
    19: _primes_up_to,
    20: _gcd,
    21: lambda o: _json.dumps(o),
    22: lambda s: _json.loads(s),
    23: lambda o1, o2: {**o1, **o2},
    24: _days_between,
    25: lambda a, b: a * b // _gcd(a, b),
    26: lambda s: sum(1 for char in s if char.lower() in "aeiou"),
    27: lambda s: s.isdigit(),
    28: lambda s, d: s.split(d),
    29: lambda ss, sep: sep.join(ss),
    30: _capitalize_words,
    31: _dedupe_chars,
    32: lambda xs, x: xs.index(x) if x in xs else -1,
    33: lambda xs: all(a <= b for a, b in zip(xs, xs[1:])),
    34: _rotate,
    35: lambda xs: [item for row in xs for item in row],
    36: lambda v1, v2: sum(a * b for a, b in zip(v1, v2)),
    37: lambda m: [list(row) for row in zip(*m)],
    38: _second_largest,
    39: lambda n: bin(n)[2:],
    40: lambda s: int(s, 2),
    41: lambda n, p: n**p,
    42: lambda a, b: abs(a - b),
    43: lambda y: (y % 4 == 0 and y % 100 != 0) or y % 400 == 0,
    44: lambda c: c * 9 / 5 + 32,
    45: lambda ss: max(ss, key=len),
    46: lambda s: len(s.split()),
    47: lambda s, n: s[:n],
    48: lambda n, w: str(n).zfill(w),
    49: _running_sum,
    50: _interleave,
}


# -- emitted code bodies ----------------------------------------------------

_PY = {
    1: "reversed_string = s[::-1]\nreturn reversed_string",
    2: "result = 1\nfor i in range(2, n + 1):\n    result *= i\nreturn result",
    3: "result = ''\nfor item in ss:\n    result += item\nreturn result",
    4: "sorted_numbers = sorted(ns)\nreturn sorted_numbers",
    5: "largest = ns[0]\nfor value in ns:\n    if value > largest:\n        largest = value\nreturn largest",
    6: "text = str(n)\nreturn text == text[::-1]",
    7: "total = 0\nfor value in ns:\n    total += value\nreturn total",
    8: "total = sum(ns)\ncount = len(ns)\nreturn total / count",
    9: "count = 0\nfor item in xs:\n    if item == x:\n        count += 1\nreturn count",
    10: "result = []\nfor item in xs:\n    if item != x:\n        result.append(item)\nreturn result",
    # pyaskit failure: with no parameter types, the model assumed `xs` was
    # a set and calls a set method that lists do not have.
    11: "return sorted(xs.union(set()))",
    12: "result = 1\nfor i in range(2, n + 1):\n    result *= i\nreturn result",
    13: "reversed_s = s[::-1]\nreturn s == reversed_s",
    14: (
        "sequence = []\na, b = 0, 1\nwhile len(sequence) < n:\n"
        "    sequence.append(a)\n    a, b = b, a + b\nreturn sequence"
    ),
    15: "smallest = ns[0]\nfor value in ns:\n    if value < smallest:\n        smallest = value\nreturn smallest",
    16: "result = s.upper()\nreturn result",
    17: "result = s.lower()\nreturn result",
    18: (
        "if n < 2:\n    return False\ni = 2\nwhile i * i <= n:\n"
        "    if n % i == 0:\n        return False\n    i += 1\nreturn True"
    ),
    19: (
        "primes = []\nfor candidate in range(2, n + 1):\n"
        "    is_prime = True\n    for p in primes:\n"
        "        if p * p > candidate:\n            break\n"
        "        if candidate % p == 0:\n            is_prime = False\n            break\n"
        "    if is_prime:\n        primes.append(candidate)\nreturn primes"
    ),
    20: "a, b = abs(a), abs(b)\nwhile b:\n    a, b = b, a % b\nreturn a",
    # pyaskit failures: the model assumed the argument was already a string
    # (21), produced a string (22), or were lists (23) / datetimes (24).
    21: "return o.strip()",
    22: "import json\nreturn json.dumps(s)",
    23: "return o1 + o2",
    24: "return abs((d2 - d1).days)",
    25: (
        "def gcd(x, y):\n    while y:\n        x, y = y, x % y\n    return x\n"
        "return a * b // gcd(a, b)"
    ),
    26: "count = 0\nfor ch in s:\n    if ch.lower() in 'aeiou':\n        count += 1\nreturn count",
    27: "if not s:\n    return False\nreturn s.isdigit()",
    28: "parts = s.split(d)\nreturn parts",
    29: "result = sep.join(ss)\nreturn result",
    30: "words = s.split(' ')\ncapitalized = []\nfor word in words:\n    capitalized.append(word[:1].upper() + word[1:])\nreturn ' '.join(capitalized)",
    31: (
        "seen = []\nfor ch in s:\n    if ch not in seen:\n        seen.append(ch)\n"
        "return ''.join(seen)"
    ),
    32: "for i, item in enumerate(xs):\n    if item == x:\n        return i\nreturn -1",
    33: "for i in range(1, len(xs)):\n    if xs[i - 1] > xs[i]:\n        return False\nreturn True",
    34: "if not xs:\n    return []\nshift = k % len(xs)\nreturn xs[shift:] + xs[:shift]",
    35: "flattened = []\nfor row in xs:\n    for item in row:\n        flattened.append(item)\nreturn flattened",
    36: "total = 0\nfor a, b in zip(v1, v2):\n    total += a * b\nreturn total",
    37: "rows = len(m)\ncols = len(m[0])\nresult = []\nfor j in range(cols):\n    result.append([m[i][j] for i in range(rows)])\nreturn result",
    38: "ordered = sorted(ns, reverse=True)\nreturn ordered[1]",
    39: "binary = bin(n)[2:]\nreturn binary",
    40: "value = int(s, 2)\nreturn value",
    41: "result = n ** p\nreturn result",
    42: "difference = a - b\nreturn abs(difference)",
    43: "if y % 400 == 0:\n    return True\nif y % 100 == 0:\n    return False\nreturn y % 4 == 0",
    44: "fahrenheit = c * 9 / 5 + 32\nreturn fahrenheit",
    45: "longest = ss[0]\nfor item in ss:\n    if len(item) > len(longest):\n        longest = item\nreturn longest",
    46: "words = s.split()\nreturn len(words)",
    47: "truncated = s[:n]\nreturn truncated",
    48: "text = str(n)\nreturn text.zfill(w)",
    49: (
        "result = []\ntotal = 0\nfor x in ns:\n    total += x\n"
        "    result.append(total)\nreturn result"
    ),
    50: (
        "result = []\nfor a, b in zip(xs, ys):\n    result.extend([a, b])\n"
        "shorter = min(len(xs), len(ys))\nlonger = xs if len(xs) > len(ys) else ys\n"
        "result.extend(longer[shorter:])\nreturn result"
    ),
}

_TS = {
    1: "const reversed = s.split('').reverse().join('');\nreturn reversed;",
    2: "let result = 1;\nfor (let i = 2; i <= n; i++) {\n    result *= i;\n}\nreturn result;",
    3: "let result = '';\nfor (const item of ss) {\n    result += item;\n}\nreturn result;",
    4: "const sorted = ns.slice();\nsorted.sort((a, b) => a - b);\nreturn sorted;",
    5: "let largest = ns[0];\nfor (const value of ns) {\n    if (value > largest) {\n        largest = value;\n    }\n}\nreturn largest;",
    6: "const text = String(n);\nconst reversed = text.split('').reverse().join('');\nreturn text === reversed;",
    7: "let total = 0;\nfor (const value of ns) {\n    total += value;\n}\nreturn total;",
    8: "const total = ns.reduce((acc, x) => acc + x, 0);\nreturn total / ns.length;",
    9: "let count = 0;\nfor (const item of xs) {\n    if (item === x) {\n        count++;\n    }\n}\nreturn count;",
    10: "const result = [];\nfor (const item of xs) {\n    if (item !== x) {\n        result.push(item);\n    }\n}\nreturn result;",
    11: "return xs.filter((item, index) => xs.indexOf(item) === index);",
    12: "let result = 1;\nfor (let i = 2; i <= n; i++) {\n    result *= i;\n}\nreturn result;",
    13: "const reversed = s.split('').reverse().join('');\nreturn s === reversed;",
    14: (
        "const sequence = [];\nlet a = 0;\nlet b = 1;\n"
        "while (sequence.length < n) {\n    sequence.push(a);\n"
        "    const next = a + b;\n    a = b;\n    b = next;\n}\nreturn sequence;"
    ),
    15: "let smallest = ns[0];\nfor (const value of ns) {\n    if (value < smallest) {\n        smallest = value;\n    }\n}\nreturn smallest;",
    16: "const result = s.toUpperCase();\nreturn result;",
    17: "const result = s.toLowerCase();\nreturn result;",
    18: (
        "if (n < 2) {\n    return false;\n}\n"
        "for (let i = 2; i * i <= n; i++) {\n    if (n % i === 0) {\n"
        "        return false;\n    }\n}\nreturn true;"
    ),
    19: (
        "const primes = [];\nfor (let candidate = 2; candidate <= n; candidate++) {\n"
        "    let isPrime = true;\n    for (let i = 2; i * i <= candidate; i++) {\n"
        "        if (candidate % i === 0) {\n            isPrime = false;\n            break;\n        }\n"
        "    }\n    if (isPrime) {\n        primes.push(candidate);\n    }\n}\nreturn primes;"
    ),
    20: (
        "let x = Math.abs(a);\nlet y = Math.abs(b);\n"
        "while (y !== 0) {\n    const temp = y;\n    y = x % y;\n    x = temp;\n}\nreturn x;"
    ),
    21: "return JSON.stringify(o);",
    22: "return JSON.parse(s);",
    23: "return Object.assign({}, o1, o2);",
    24: (
        "const first = new Date(d1).getTime();\nconst second = new Date(d2).getTime();\n"
        "return Math.abs(second - first) / 86400000;"
    ),
    25: (
        "let x = a;\nlet y = b;\nwhile (y !== 0) {\n    const t = y;\n"
        "    y = x % y;\n    x = t;\n}\nreturn (a * b) / x;"
    ),
    26: "let count = 0;\nfor (const ch of s) {\n    if ('aeiou'.includes(ch.toLowerCase())) {\n        count++;\n    }\n}\nreturn count;",
    27: (
        "if (s.length === 0) {\n    return false;\n}\n"
        "for (const ch of s) {\n    if (ch < '0' || ch > '9') {\n"
        "        return false;\n    }\n}\nreturn true;"
    ),
    28: "const parts = s.split(d);\nreturn parts;",
    29: "const result = ss.join(sep);\nreturn result;",
    30: "const words = s.split(' ');\nconst capitalized = words.map(w => w.charAt(0).toUpperCase() + w.slice(1));\nreturn capitalized.join(' ');",
    31: (
        "let result = '';\nfor (const ch of s) {\n"
        "    if (!result.includes(ch)) {\n        result += ch;\n    }\n}\nreturn result;"
    ),
    32: "const index = xs.indexOf(x);\nreturn index;",
    33: "for (let i = 1; i < xs.length; i++) {\n    if (xs[i - 1] > xs[i]) {\n        return false;\n    }\n}\nreturn true;",
    34: (
        "if (xs.length === 0) {\n    return [];\n}\nconst shift = k % xs.length;\n"
        "return xs.slice(shift).concat(xs.slice(0, shift));"
    ),
    35: "const flattened = [];\nfor (const row of xs) {\n    for (const item of row) {\n        flattened.push(item);\n    }\n}\nreturn flattened;",
    36: "let total = 0;\nfor (let i = 0; i < v1.length; i++) {\n    total += v1[i] * v2[i];\n}\nreturn total;",
    37: (
        "const result = [];\nfor (let j = 0; j < m[0].length; j++) {\n"
        "    const row = [];\n    for (let i = 0; i < m.length; i++) {\n"
        "        row.push(m[i][j]);\n    }\n    result.push(row);\n}\nreturn result;"
    ),
    38: "const ordered = ns.slice().sort((a, b) => b - a);\nreturn ordered[1];",
    39: (
        "if (n === 0) {\n    return '0';\n}\nlet result = '';\nlet value = n;\n"
        "while (value > 0) {\n    result = String(value % 2) + result;\n"
        "    value = Math.floor(value / 2);\n}\nreturn result;"
    ),
    40: "const value = parseInt(s, 2);\nreturn value;",
    41: "const result = Math.pow(n, p);\nreturn result;",
    42: "const difference = a - b;\nreturn Math.abs(difference);",
    43: "if (y % 400 === 0) {\n    return true;\n}\nif (y % 100 === 0) {\n    return false;\n}\nreturn y % 4 === 0;",
    44: "const fahrenheit = c * 9 / 5 + 32;\nreturn fahrenheit;",
    45: (
        "let longest = ss[0];\nfor (const item of ss) {\n"
        "    if (item.length > longest.length) {\n        longest = item;\n    }\n}\nreturn longest;"
    ),
    46: "const words = s.split(' ').filter(word => word !== '');\nreturn words.length;",
    47: "const truncated = s.slice(0, n);\nreturn truncated;",
    48: "const text = String(n);\nreturn text.padStart(w, '0');",
    49: (
        "const result = [];\nlet total = 0;\nfor (const x of ns) {\n"
        "    total += x;\n    result.push(total);\n}\nreturn result;"
    ),
    50: (
        "const result = [];\nconst shorter = Math.min(xs.length, ys.length);\n"
        "for (let i = 0; i < shorter; i++) {\n    result.push(xs[i]);\n    result.push(ys[i]);\n}\n"
        "const longer = xs.length > ys.length ? xs : ys;\nreturn result.concat(longer.slice(shorter));"
    ),
}

# First-try bugs (emitted under noise; validation catches them and the
# feedback retry converges).  #14 is the paper's own anecdote: the model
# produced the sequence up to n + 1 instead of n.
_BUGGY_PY = {
    5: "return max(ns[1:]) if len(ns) > 1 else ns[0]",
    14: (
        "sequence = []\na, b = 0, 1\nwhile len(sequence) <= n:\n"
        "    sequence.append(a)\n    a, b = b, a + b\nreturn sequence"
    ),
    18: "if n < 2:\n    return False\nreturn n % 2 != 0",
    31: "return ''.join(sorted(set(s)))",
    34: "k = k % len(xs) if xs else 0\nreturn xs[-k:] + xs[:-k]",
    38: "return max(ns)",
    47: "return s[:n + 1]",
    49: "result = []\ntotal = 0\nfor x in ns:\n    result.append(total)\n    total += x\nreturn result",
}

_BUGGY_TS = {
    5: "return ns[0];",
    14: (
        "const sequence = [];\nlet a = 0;\nlet b = 1;\n"
        "while (sequence.length <= n) {\n    sequence.push(a);\n"
        "    const next = a + b;\n    a = b;\n    b = next;\n}\nreturn sequence;"
    ),
    18: "if (n < 2) {\n    return false;\n}\nreturn n % 2 !== 0;",
    31: "return s.split('').sort().join('');",
    34: "const shift = k % xs.length;\nreturn xs.slice(-shift).concat(xs.slice(0, -shift));",
    38: "return Math.max(...ns);",
    47: "return s.slice(0, n + 1);",
    49: (
        "const result = [];\nlet total = 0;\nfor (const x of ns) {\n"
        "    result.push(total);\n    total += x;\n}\nreturn result;"
    ),
}

_MISMATCH_TASKS = frozenset({11, 21, 22, 23, 24})


def register_builtin_tasks(knowledge: KnowledgeBase) -> None:
    """Install the built-in coding knowledge: the fifty Table II task
    implementations, the HumanEval-style corpus, and a few standalone
    tasks used by the motivating examples."""
    _register_common_tasks(knowledge)
    _register_humaneval_tasks(knowledge)
    _register_example_tasks(knowledge)


def _register_example_tasks(knowledge: KnowledgeBase) -> None:
    """Tasks from the paper's motivating examples (Section II)."""
    knowledge.register_task(
        TaskImplementation(
            key="Append 'review' and 'sentiment' as a new row in the CSV file named 'filename'",
            parameters=["review", "sentiment", "filename"],
            python_fn=_append_review_to_csv,
            python_body=(
                "import csv\n"
                "with open(filename, 'a', newline='') as handle:\n"
                "    writer = csv.writer(handle)\n"
                "    writer.writerow([review, sentiment])"
            ),
            ts_body="throw new Error('file access is not available in the TS sandbox');",
            description="motivating example: append review to CSV",
        )
    )


def _append_review_to_csv(review: str, sentiment: str, filename: str) -> None:
    import csv

    with open(filename, "a", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([review, sentiment])


def _register_common_tasks(knowledge: KnowledgeBase) -> None:
    for task in all_tasks():
        number = task.number
        implementation = TaskImplementation(
            key=_quoted(task.template),
            parameters=list(PromptTemplate(task.template).parameters),
            python_fn=_wrap_answer(number),
            python_body=_PY[number],
            ts_body=_TS[number],
            buggy_python_body=_BUGGY_PY.get(number),
            buggy_ts_body=_BUGGY_TS.get(number),
            python_signature_mismatch=number in _MISMATCH_TASKS,
            description=f"common task #{number}",
        )
        knowledge.register_task(implementation)


def _wrap_answer(number: int):
    fn = _ANSWER_FNS[number]

    def answer(**kwargs: Any) -> Any:
        return fn(**kwargs)

    return answer


def _register_humaneval_tasks(knowledge: KnowledgeBase) -> None:
    """The simulated model's knowledge of the HumanEval-style tasks.

    The bodies come from the dataset module (including the subtly wrong
    bodies of the unsolvable ~15 %); the experiment is Python-only, so a
    TypeScript request gets an honest failure body.
    """
    from repro.datasets.humaneval import all_tasks as humaneval_tasks

    for task in humaneval_tasks():
        knowledge.register_task(
            TaskImplementation(
                key=_quoted(task.description),
                parameters=list(task.params),
                python_fn=_canonical_answer(task.canonical_solution, task.entry_point),
                python_body=task.llm_body,
                ts_body="throw new Error('task not supported in TypeScript');",
                description=task.task_id,
            )
        )


def _canonical_answer(solution_source: str, entry_point: str):
    """Direct-answer callable built from a canonical solution (lazy exec)."""
    state: dict[str, Any] = {}

    def answer(**kwargs: Any) -> Any:
        if "fn" not in state:
            namespace: dict[str, Any] = {}
            exec(solution_source, namespace)  # noqa: S102 - dataset-authored code
            state["fn"] = namespace[entry_point]
        return state["fn"](**kwargs)

    return answer
