"""Code synthesis for word problems (the GSM8K path).

When a codegen prompt's task comment matches a registered word-problem
family, the simulated model "writes" a function computing the family's
expression tree over the function's parameters.  The emitted code carries
one intermediate ``result`` variable and a short comment, matching the
style real models produce for these prompts.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.llm.knowledge import KnowledgeBase, WordProblemFamily, mask_quantities
from repro.mathexpr import Expr, Num, Var, perturb


def match_family(
    knowledge: KnowledgeBase, task_comment: str
) -> tuple[WordProblemFamily, list[str]] | None:
    """Match a codegen task comment against word-problem families.

    Returns the family plus the parameter name occupying each numeric
    slot (``n0`` -> first quoted identifier, ...).  Slots that contain a
    literal number in the comment are bound to that constant.
    """
    masked, slots = mask_quantities(task_comment)
    family = knowledge.families.get(masked)
    if family is None:
        return None
    slot_names: list[str] = []
    for index, slot in enumerate(slots):
        if isinstance(slot, str):
            slot_names.append(slot)
        else:
            slot_names.append(_render_number(slot))
    return family, slot_names


def _render_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(value)


def rebind_expression(expression: Expr, slot_names: list[str]) -> Expr:
    """Rewrite ``n<i>`` variables to the actual parameter names/constants."""
    if isinstance(expression, Var):
        name = expression.name
        if name.startswith("n") and name[1:].isdigit():
            index = int(name[1:])
            if index >= len(slot_names):
                raise SolverError(
                    f"expression references slot {name} but the task has "
                    f"only {len(slot_names)} quantities"
                )
            replacement = slot_names[index]
            if replacement[0].isdigit() or replacement[0] == "-":
                return Num(float(replacement))
            return Var(replacement)
        return expression
    if isinstance(expression, Num):
        return expression
    # BinOp
    from repro.mathexpr import BinOp

    assert isinstance(expression, BinOp)
    return BinOp(
        expression.op,
        rebind_expression(expression.left, slot_names),
        rebind_expression(expression.right, slot_names),
    )


def emit_python_body(expression: Expr, slot_names: list[str], wrong: bool = False) -> str:
    """Python function body computing the (possibly perturbed) expression."""
    bound = rebind_expression(expression, slot_names)
    if wrong:
        bound = perturb(bound)
    return f"result = {bound.emit()}\nreturn result"


def emit_typescript_body(expression: Expr, slot_names: list[str], wrong: bool = False) -> str:
    """TypeScript function body computing the (possibly perturbed) expression."""
    bound = rebind_expression(expression, slot_names)
    if wrong:
        bound = perturb(bound)
    return f"const result = {bound.emit()};\nreturn result;"
