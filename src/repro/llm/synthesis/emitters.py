"""Assembling complete generated functions from stubs and bodies.

The Figure-4 prompt hands the model an *empty* function with the task as a
body comment; the model's reply is the same function completed.  These
helpers perform that completion for the simulated model: the Python stub's
trailing ``...`` is replaced by the body, the TypeScript stub's body is
inserted before the closing brace.
"""

from __future__ import annotations

from repro.errors import SolverError

_INDENT = "    "


def indent_body(body: str, levels: int = 1) -> str:
    """Indent every non-empty line of ``body`` by ``levels`` 4-space units."""
    pad = _INDENT * levels
    lines = [f"{pad}{line}" if line.strip() else "" for line in body.splitlines()]
    return "\n".join(lines)


def complete_python_stub(stub: str, body: str) -> str:
    """Replace the Python stub's ``...`` placeholder with ``body``."""
    lines = stub.rstrip().splitlines()
    if not lines or not lines[-1].strip() == "...":
        raise SolverError("python stub does not end with a '...' placeholder")
    return "\n".join(lines[:-1]) + "\n" + indent_body(body) + "\n"


def complete_typescript_stub(stub: str, body: str) -> str:
    """Insert ``body`` before the TypeScript stub's closing brace."""
    text = stub.rstrip()
    if not text.endswith("}"):
        raise SolverError("typescript stub does not end with '}'")
    head = text[:-1].rstrip()
    return head + "\n" + indent_body(body) + "\n}\n"


def wrap_code_response(language: str, code: str, preface: str = "") -> str:
    """Format a code reply the way chat models do: prose + fenced block."""
    preface = preface or "Here is the implementation:"
    return f"{preface}\n```{language}\n{code.rstrip()}\n```\n"
