"""The simulated LLM's knowledge base.

A real LLM carries its task competence in its weights.  The simulated
model carries it in an explicit registry: implementations of coding tasks
(how to *code* a task, and how to *answer* it directly) and word-problem
families (how to solve GSM8K-style questions).  Datasets and the built-in
catalog register entries at import time; the model consults the registry
with nothing but the prompt text it received.

Keys are the task descriptions exactly as they appear in prompts -- the
template with placeholders quoted (``Reverse the string 's'.``) -- after
light normalization.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Callable

from repro.mathexpr import Expr

_WHITESPACE_RE = re.compile(r"\s+")
_NUMBER_RE = re.compile(r"(?<![\w.])-?\d+(?:\.\d+)?(?![\w.])")
_QUANTITY_RE = re.compile(
    r"(?<![\w.])-?\d+(?:\.\d+)?(?![\w.])|'([A-Za-z_][A-Za-z0-9_]*)'"
)


def normalize_task(text: str) -> str:
    """Canonical form of a task description for registry lookup."""
    text = _WHITESPACE_RE.sub(" ", text.strip())
    return text.rstrip(".?! ").lower()


def mask_numbers(text: str) -> tuple[str, list[float]]:
    """Replace numeric literals with ``<N>`` and return them in order.

    This is how the word-problem solver recognizes a problem family
    independent of its concrete quantities.
    """
    numbers: list[float] = []

    def replace(match: re.Match) -> str:
        numbers.append(float(match.group(0)))
        return "<N>"

    masked = _NUMBER_RE.sub(replace, text)
    return _WHITESPACE_RE.sub(" ", masked.strip()), numbers


def mask_quantities(text: str) -> tuple[str, list[float | str]]:
    """Mask numbers *and* quoted parameter names as ``<N>``.

    A codegen task comment spells quantities as quoted parameter names
    (``Natalia sold 'a' clips``) where the direct prompt has numbers; both
    forms mask to the same skeleton.  Returns the masked text plus the
    slot values: floats for numbers, parameter-name strings for quoted
    identifiers.
    """
    slots: list[float | str] = []

    def replace(match: re.Match) -> str:
        if match.group(1) is not None:
            slots.append(match.group(1))
        else:
            slots.append(float(match.group(0)))
        return "<N>"

    masked = _QUANTITY_RE.sub(replace, text)
    return _WHITESPACE_RE.sub(" ", masked.strip()), slots


class TaskImplementation:
    """Everything the simulated LLM knows about one coding task."""

    def __init__(
        self,
        key: str,
        parameters: list[str],
        python_fn: Callable[..., Any],
        python_body: str,
        ts_body: str,
        buggy_python_body: str | None = None,
        buggy_ts_body: str | None = None,
        python_signature_mismatch: bool = False,
        description: str = "",
    ) -> None:
        self.key = normalize_task(key)
        self.parameters = list(parameters)
        self.python_fn = python_fn
        self.python_body = python_body.rstrip("\n")
        self.ts_body = ts_body.rstrip("\n")
        self.buggy_python_body = buggy_python_body
        self.buggy_ts_body = buggy_ts_body
        # Reproduces the paper's pyaskit failures (tasks #11, #21-24): the
        # Python codegen prompt carries no parameter types, so the model
        # "misassumes" the argument representation and emits code that does
        # not work for the actual argument type.
        self.python_signature_mismatch = python_signature_mismatch
        self.description = description

    def __repr__(self) -> str:
        return f"TaskImplementation({self.key!r})"


class WordProblemFamily:
    """One GSM8K-style problem family the model can solve.

    ``skeleton`` is the problem text with numbers masked via
    :func:`mask_numbers`; ``expression`` computes the answer from the
    masked numbers bound as ``n0, n1, ...`` in order of appearance.
    """

    def __init__(self, skeleton: str, expression: Expr, name: str = "") -> None:
        self.skeleton = skeleton
        self.expression = expression
        self.name = name or skeleton[:40]

    def solve(self, numbers: list[float]) -> float:
        env = {f"n{index}": value for index, value in enumerate(numbers)}
        return self.expression.evaluate(env)

    def __repr__(self) -> str:
        return f"WordProblemFamily({self.name!r})"


class KnowledgeBase:
    """Registry of task implementations and word-problem families."""

    def __init__(self) -> None:
        self.tasks: dict[str, TaskImplementation] = {}
        self.families: dict[str, WordProblemFamily] = {}

    # -- coding tasks -----------------------------------------------------

    def register_task(self, implementation: TaskImplementation) -> TaskImplementation:
        self.tasks[implementation.key] = implementation
        return implementation

    def find_task(self, description: str) -> TaskImplementation | None:
        return self.tasks.get(normalize_task(description))

    # -- word problems -------------------------------------------------------

    def register_family(self, family: WordProblemFamily) -> WordProblemFamily:
        self.families[family.skeleton] = family
        return family

    def find_family(self, problem_text: str) -> tuple[WordProblemFamily, list[float]] | None:
        masked, numbers = mask_numbers(problem_text)
        family = self.families.get(masked)
        if family is None:
            return None
        return family, numbers

    # -- lifecycle ------------------------------------------------------------

    def clear(self) -> None:
        self.tasks.clear()
        self.families.clear()


#: The global knowledge base consulted by :class:`repro.llm.SimulatedLLM`.
GLOBAL_KNOWLEDGE = KnowledgeBase()


def global_knowledge() -> KnowledgeBase:
    """The process-wide knowledge base (datasets register into this)."""
    _ensure_builtin_catalog()
    return GLOBAL_KNOWLEDGE


_catalog_loaded = False
_catalog_lock = threading.Lock()


def _ensure_builtin_catalog() -> None:
    """Load the built-in task catalog exactly once (lazily, to avoid import
    cycles between the LLM substrate and the datasets).

    Thread-safe: the flag flips only after registration completes, so a
    concurrent first access never observes a partially filled catalog.
    """
    global _catalog_loaded
    if _catalog_loaded:
        return
    with _catalog_lock:
        if _catalog_loaded:
            return
        from repro.llm.synthesis import catalog

        catalog.register_builtin_tasks(GLOBAL_KNOWLEDGE)
        _catalog_loaded = True
