"""Re-parsers that recover structured requests from raw prompt text.

The simulated LLM receives nothing but the prompt string -- the same
contract a hosted model has.  These parsers classify a prompt as a
direct-answer request (Listing 2 shape) or a code-generation request
(Figure 4 shape) and pull out the pieces the model needs: the expected
answer type, the task line, the parameter bindings, the function
signature.
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.errors import SolverError, TsSyntaxError
from repro.prompts.codegen import PYTHON, TYPESCRIPT
from repro.prompts.direct import PREAMBLE
from repro.prompts.feedback import CODEGEN_FEEDBACK_MARKER, FEEDBACK_MARKER
from repro.types import Type, parse_type
from repro.types.composites import RecordType

_TS_FENCE_RE = re.compile(r"```ts\n(.*?)\n```", re.DOTALL)
_CODE_FENCE_RE = re.compile(r"```(typescript|python)\n(.*?)```", re.DOTALL)
_WHERE_BINDING_RE = re.compile(r"'([A-Za-z_][A-Za-z0-9_]*)'\s*=\s*")
_PY_SIGNATURE_RE = re.compile(r"^def\s+([A-Za-z_][A-Za-z0-9_]*)\s*\(([^)]*)\)\s*:", re.MULTILINE)
_COMMENT_RE = {"python": re.compile(r"#\s?(.*)"), "typescript": re.compile(r"//\s?(.*)")}

CODEGEN_PREFIX = "Q: Implement the following function:"


class DirectRequest:
    """A parsed Listing-2 prompt."""

    __slots__ = ("answer_type", "task", "bindings", "is_feedback", "failed_criterion")

    def __init__(
        self,
        answer_type: Type,
        task: str,
        bindings: dict[str, Any],
        is_feedback: bool,
        failed_criterion: int | None = None,
    ) -> None:
        self.answer_type = answer_type
        self.task = task
        self.bindings = bindings
        self.is_feedback = is_feedback
        self.failed_criterion = failed_criterion

    def task_with_values(self) -> str:
        """The task line with quoted parameter names replaced by values."""
        text = self.task
        for name, value in self.bindings.items():
            rendered = json.dumps(value)
            text = text.replace(f"'{name}'", rendered)
        return text

    def __repr__(self) -> str:
        return f"DirectRequest({self.task!r}, type={self.answer_type.typescript()})"


class CodegenRequest:
    """A parsed Figure-4 prompt (the final Q segment)."""

    __slots__ = (
        "language",
        "name",
        "parameters",
        "return_annotation",
        "task",
        "is_feedback",
        "previous_code",
        "stub",
    )

    def __init__(
        self,
        language: str,
        name: str,
        parameters: list[str],
        return_annotation: str | None,
        task: str,
        is_feedback: bool,
        previous_code: str = "",
        stub: str = "",
    ) -> None:
        self.language = language
        self.name = name
        self.parameters = parameters
        self.return_annotation = return_annotation
        self.task = task
        self.is_feedback = is_feedback
        self.previous_code = previous_code
        self.stub = stub

    def __repr__(self) -> str:
        return f"CodegenRequest({self.language}, {self.name!r}, {self.task!r})"


def is_direct_prompt(prompt: str) -> bool:
    return prompt.startswith(PREAMBLE[:60])


def is_codegen_prompt(prompt: str) -> bool:
    return prompt.startswith(CODEGEN_PREFIX)


def parse_direct_request(prompt: str) -> DirectRequest:
    """Recover the task, bindings, and expected type from a direct prompt."""
    is_feedback = FEEDBACK_MARKER in prompt
    original = prompt.split(FEEDBACK_MARKER, 1)[0] if is_feedback else prompt

    fence = _TS_FENCE_RE.search(original)
    if fence is None:
        raise SolverError("direct prompt is missing its ```ts type fence")
    response_type = parse_type(fence.group(1).strip())
    if not isinstance(response_type, RecordType) or "answer" not in response_type.fields:
        raise SolverError("direct prompt type fence lacks an 'answer' field")
    answer_type = response_type.fields["answer"]

    task, bindings = _parse_task_section(original)
    return DirectRequest(answer_type, task, bindings, is_feedback)


def _parse_task_section(prompt: str) -> tuple[str, dict[str, Any]]:
    """The task line and its ``where`` bindings from a direct prompt.

    The task section is everything after the reason-field instruction (and
    optional few-shot examples): a task line, optionally followed by a
    ``where`` bindings line.
    """
    lines = [line for line in prompt.splitlines() if line.strip()]
    if not lines:
        raise SolverError("empty prompt")
    if lines[-1].startswith("where "):
        if len(lines) < 2:
            raise SolverError("direct prompt has bindings but no task line")
        return lines[-2].strip(), _parse_bindings(lines[-1])
    return lines[-1].strip(), {}


def _parse_bindings(line: str) -> dict[str, Any]:
    """Parse ``where 'n' = 5, 'subject' = "computer science"``.

    Values are JSON; ``raw_decode`` consumes each value so that commas
    inside strings/arrays do not confuse the split.
    """
    body = line[len("where "):]
    decoder = json.JSONDecoder()
    bindings: dict[str, Any] = {}
    position = 0
    while position < len(body):
        match = _WHERE_BINDING_RE.match(body, position)
        if match is None:
            break
        name = match.group(1)
        value, end = decoder.raw_decode(body, match.end())
        bindings[name] = value
        bindings_sep = re.compile(r"\s*,\s*")
        sep = bindings_sep.match(body, end)
        position = sep.end() if sep else end
    return bindings


def parse_codegen_request(prompt: str) -> CodegenRequest:
    """Recover the signature and task from a Figure-4 prompt."""
    is_feedback = CODEGEN_FEEDBACK_MARKER in prompt
    previous_code = ""
    original = prompt
    if is_feedback:
        original, rest = prompt.split(CODEGEN_FEEDBACK_MARKER, 1)
        previous_code = rest.strip()

    blocks = _CODE_FENCE_RE.findall(original)
    if not blocks:
        raise SolverError("codegen prompt contains no code fence")
    language, stub = blocks[-1]
    stub = stub.strip("\n")

    comment_match = _COMMENT_RE[language].search(stub)
    task = comment_match.group(1).strip() if comment_match else ""

    if language == PYTHON:
        signature = _PY_SIGNATURE_RE.search(stub)
        if signature is None:
            raise SolverError("python codegen stub has no def signature")
        name = signature.group(1)
        parameters = [
            part.strip().split(":")[0].strip()
            for part in signature.group(2).split(",")
            if part.strip()
        ]
        return CodegenRequest(PYTHON, name, parameters, None, task, is_feedback, previous_code, stub)

    # TypeScript: parse the stub with the tslang front end.
    from repro.tslang.parser import parse_program

    try:
        program = parse_program(stub)
    except TsSyntaxError as error:
        raise SolverError(f"cannot parse TypeScript stub: {error}") from error
    functions = program.functions()
    if not functions:
        raise SolverError("TypeScript stub declares no function")
    name, declaration = next(iter(functions.items()))
    parameters: list[str] = []
    for param in declaration.params:
        parameters.extend(param.names)
    return CodegenRequest(
        TYPESCRIPT,
        name,
        parameters,
        declaration.return_annotation,
        task,
        is_feedback,
        previous_code,
        stub,
    )


def classify_prompt(prompt: str) -> str:
    """``"direct"``, ``"codegen"``, or ``"chat"``."""
    if is_codegen_prompt(prompt):
        return "codegen"
    if is_direct_prompt(prompt):
        return "direct"
    return "chat"
