"""The LLM substrate: chat interface, providers, simulated model, noise, latency."""

from repro.llm.base import ChatMessage, CompletionResult, LanguageModel, Usage, user_message
from repro.llm.client import (
    ChatClient,
    ClientStats,
    ModelStats,
    default_client,
    reset_default_client,
)
from repro.llm.cassette import CassetteTransport, cassette_key
from repro.llm.http import HTTPClient, HTTPRequest, HTTPResponse, UrllibTransport
from repro.llm.providers import (
    AnthropicProvider,
    GeminiProvider,
    OpenAIProvider,
    Provider,
    ProviderBase,
    WirePolicy,
    WireProvider,
    register_provider,
    registered_prefixes,
    unregister_provider,
)
from repro.llm.knowledge import (
    KnowledgeBase,
    TaskImplementation,
    WordProblemFamily,
    global_knowledge,
    mask_numbers,
    mask_quantities,
    normalize_task,
)
from repro.llm.latency import PROFILES, LatencyProfile, VirtualClock, profile_for
from repro.llm.noise import QUIET, NoisePolicy, stable_fraction
from repro.llm.ratelimit import SimulatedRateLimit
from repro.llm.simulated import SimulatedLLM
from repro.llm.tokenizer import count_tokens
from repro.llm.transcript import Exchange, TranscriptRecorder

__all__ = [
    "ChatMessage",
    "CompletionResult",
    "LanguageModel",
    "Usage",
    "user_message",
    "ChatClient",
    "ClientStats",
    "ModelStats",
    "default_client",
    "reset_default_client",
    "Provider",
    "ProviderBase",
    "register_provider",
    "unregister_provider",
    "registered_prefixes",
    "OpenAIProvider",
    "AnthropicProvider",
    "GeminiProvider",
    "WireProvider",
    "WirePolicy",
    "HTTPClient",
    "HTTPRequest",
    "HTTPResponse",
    "UrllibTransport",
    "CassetteTransport",
    "cassette_key",
    "SimulatedLLM",
    "KnowledgeBase",
    "TaskImplementation",
    "WordProblemFamily",
    "global_knowledge",
    "normalize_task",
    "mask_numbers",
    "mask_quantities",
    "NoisePolicy",
    "QUIET",
    "stable_fraction",
    "SimulatedRateLimit",
    "LatencyProfile",
    "VirtualClock",
    "PROFILES",
    "profile_for",
    "count_tokens",
    "TranscriptRecorder",
    "Exchange",
]
